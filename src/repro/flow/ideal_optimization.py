"""Optimizing a sum of local variables over all consistent cuts.

The consistent cuts of a computation are exactly the downward-closed sets
(order ideals) of its event poset that contain every initial event.  For a
sum ``x_1 + ... + x_n`` of integer local variables, each non-initial event
``e`` carries a *delta* — the change it applies to its process's variable —
so the sum at a cut C equals ``sum at the initial cut + sum of deltas of the
non-initial events in C``.

Maximizing a weighted ideal is the classic *maximum-weight closure*
(project-selection) problem, solved exactly by one min-cut:

* source ``s`` connects to every event with positive delta (capacity = delta),
* every event with negative delta connects to sink ``t`` (capacity = -delta),
* every direct dependency ``u -> v`` (u must be in the cut if v is) becomes
  an infinite-capacity edge ``v -> u``.

``max over cuts of sum = initial sum + (sum of positive deltas) - mincut``.
Minimizing is the same computation with negated deltas.  Both run in
polynomial time regardless of the magnitude of the deltas — the paper's
NP-completeness for ``sum = k`` with arbitrary increments (Theorem 2) is
therefore genuinely about hitting a value *exactly*, not about the extremes.

The witness cut (the ideal attaining the optimum) is recovered from the
min-cut's source side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.computation import Computation, Cut, initial_cut
from repro.events import EventId
from repro.flow.maxflow import MaxFlow

__all__ = [
    "event_deltas",
    "maximize_ideal_weight",
    "max_sum_cut",
    "min_sum_cut",
    "sum_range",
]


def event_deltas(computation: Computation, variable: str) -> Dict[EventId, int]:
    """Per-event change of ``variable`` on the event's own process.

    The delta of event ``(p, i)`` (i >= 1) is ``value after (p, i)`` minus
    ``value after (p, i-1)``; missing values default to 0.
    """
    deltas: Dict[EventId, int] = {}
    for p in range(computation.num_processes):
        events = computation.events_of(p)
        previous = int(events[0].value(variable, 0))
        for ev in events[1:]:
            current = int(ev.value(variable, 0))
            deltas[ev.event_id] = current - previous
            previous = current
    return deltas


def maximize_ideal_weight(
    computation: Computation, weights: Dict[EventId, int]
) -> Tuple[int, Cut]:
    """Maximum total weight of a consistent cut's non-initial events.

    ``weights`` maps every non-initial event id to an integer weight
    (missing events weigh 0).  Returns ``(best weight, witness cut)``.
    """
    # Enumerate non-initial events and their direct dependencies.
    ids: List[EventId] = [ev.event_id for ev in computation.all_events()]
    index = {eid: i for i, eid in enumerate(ids)}
    n = len(ids)
    source, sink = n, n + 1
    positive_total = sum(w for w in weights.values() if w > 0)
    infinite = positive_total + sum(-w for w in weights.values() if w < 0) + 1

    mf = MaxFlow(n + 2)
    for eid in ids:
        w = weights.get(eid, 0)
        if w > 0:
            mf.add_edge(source, index[eid], w)
        elif w < 0:
            mf.add_edge(index[eid], sink, -w)
        # Dependency edges: if eid is selected, its direct causal
        # predecessors must be selected too.
        pred = computation.predecessor(eid)
        if pred is not None and pred[1] >= 1:
            mf.add_edge(index[eid], index[pred], infinite)
        for src in computation.message_sources(eid):
            if src[1] >= 1:
                mf.add_edge(index[eid], index[src], infinite)

    cut_value = mf.solve(source, sink)
    best = positive_total - cut_value
    side = mf.min_cut_source_side(source)
    chosen = {ids[i] for i in side if i < n}

    # Convert the closure into a frontier vector.  A closure is downward
    # closed, so per process the chosen events form a prefix.
    frontier = [1] * computation.num_processes
    for p, i in chosen:
        frontier[p] = max(frontier[p], i + 1)
    witness = Cut(computation, frontier)
    assert witness.is_consistent(), "min-cut produced a non-closed ideal"
    return best, witness


def max_sum_cut(computation: Computation, variable: str) -> Tuple[int, Cut]:
    """``(max over consistent cuts of sum_i variable_i, witness cut)``."""
    deltas = event_deltas(computation, variable)
    base = initial_cut(computation).variable_sum(variable)
    gain, witness = maximize_ideal_weight(computation, deltas)
    return base + gain, witness


def min_sum_cut(computation: Computation, variable: str) -> Tuple[int, Cut]:
    """``(min over consistent cuts of sum_i variable_i, witness cut)``."""
    deltas = {eid: -w for eid, w in event_deltas(computation, variable).items()}
    base = initial_cut(computation).variable_sum(variable)
    gain, witness = maximize_ideal_weight(computation, deltas)
    return base - gain, witness


def sum_range(computation: Computation, variable: str) -> Tuple[int, int]:
    """``(min, max)`` of the variable sum over all consistent cuts."""
    lo, _ = min_sum_cut(computation, variable)
    hi, _ = max_sum_cut(computation, variable)
    return lo, hi
