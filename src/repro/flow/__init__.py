"""Max-flow / min-cut machinery (substrate S5)."""

from repro.flow.ideal_optimization import (
    event_deltas,
    max_sum_cut,
    maximize_ideal_weight,
    min_sum_cut,
    sum_range,
)
from repro.flow.maxflow import MaxFlow

__all__ = [
    "MaxFlow",
    "event_deltas",
    "max_sum_cut",
    "maximize_ideal_weight",
    "min_sum_cut",
    "sum_range",
]
