"""Maximum flow via Dinic's algorithm (substrate S5).

Implemented from scratch: adjacency-list residual graph, BFS level graph,
DFS blocking flows.  Integer capacities only — every use in this library has
integral weights, and integrality keeps min-cut extraction exact.

This powers :mod:`repro.flow.ideal_optimization`, which computes the
min/max of a sum of local variables over all consistent cuts — the engine
behind the paper's polynomial cells for relational predicates.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

__all__ = ["MaxFlow"]


class _Edge:
    __slots__ = ("to", "capacity", "flow", "rev")

    def __init__(self, to: int, capacity: int, rev: int):
        self.to = to
        self.capacity = capacity
        self.flow = 0
        self.rev = rev  # index of the reverse edge in adj[to]

    @property
    def residual(self) -> int:
        return self.capacity - self.flow


class MaxFlow:
    """A max-flow problem instance on ``n`` nodes.

    Usage::

        mf = MaxFlow(n)
        mf.add_edge(u, v, capacity)
        value = mf.solve(source, sink)
        side = mf.min_cut_source_side(source)   # after solve()
    """

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ValueError("need at least one node")
        self._n = num_nodes
        self._adj: List[List[_Edge]] = [[] for _ in range(num_nodes)]
        self._solved_source: int = -1

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the flow network."""
        return self._n

    def add_edge(self, u: int, v: int, capacity: int) -> None:
        """Add a directed edge ``u -> v`` with the given integer capacity."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"edge ({u}, {v}) out of range")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if u == v:
            return  # self-loops never carry useful flow
        forward = _Edge(v, int(capacity), len(self._adj[v]))
        backward = _Edge(u, 0, len(self._adj[u]))
        self._adj[u].append(forward)
        self._adj[v].append(backward)

    def solve(self, source: int, sink: int) -> int:
        """Maximum flow value from ``source`` to ``sink`` (Dinic)."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                break
            iters = [0] * self._n
            while True:
                pushed = self._dfs_push(source, sink, None, level, iters)
                if pushed == 0:
                    break
                total += pushed
        self._solved_source = source
        return total

    def min_cut_source_side(self, source: int) -> Set[int]:
        """Nodes reachable from ``source`` in the residual graph.

        Must be called after :meth:`solve`; the returned set S gives the
        minimum cut (S, V-S).
        """
        if self._solved_source != source:
            raise RuntimeError("call solve() with this source first")
        seen = {source}
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            for edge in self._adj[u]:
                if edge.residual > 0 and edge.to not in seen:
                    seen.add(edge.to)
                    queue.append(edge.to)
        return seen

    # ------------------------------------------------------------------
    # Dinic internals
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        level = [-1] * self._n
        level[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            for edge in self._adj[u]:
                if edge.residual > 0 and level[edge.to] < 0:
                    level[edge.to] = level[u] + 1
                    queue.append(edge.to)
        return level

    def _dfs_push(
        self,
        u: int,
        sink: int,
        limit: int | None,
        level: List[int],
        iters: List[int],
    ) -> int:
        """Iterative blocking-flow DFS pushing up to ``limit`` units."""
        # An explicit stack avoids recursion limits on deep gadget graphs.
        path: List[Tuple[int, int]] = []  # (node, edge index into adj[node])
        node = u
        while True:
            if node == sink:
                bottleneck = None
                for n_, ei in path:
                    e = self._adj[n_][ei]
                    bottleneck = (
                        e.residual
                        if bottleneck is None
                        else min(bottleneck, e.residual)
                    )
                assert bottleneck is not None and bottleneck > 0
                if limit is not None:
                    bottleneck = min(bottleneck, limit)
                for n_, ei in path:
                    e = self._adj[n_][ei]
                    e.flow += bottleneck
                    self._adj[e.to][e.rev].flow -= bottleneck
                return bottleneck
            advanced = False
            while iters[node] < len(self._adj[node]):
                edge = self._adj[node][iters[node]]
                if edge.residual > 0 and level[edge.to] == level[node] + 1:
                    path.append((node, iters[node]))
                    node = edge.to
                    advanced = True
                    break
                iters[node] += 1
            if advanced:
                continue
            # Dead end: retreat.
            level[node] = -1
            if not path:
                return 0
            node, _ = path.pop()
            iters[node] += 1
