"""Stable predicate detection.

A predicate is *stable* iff once true it remains true on every larger
consistent cut (termination, deadlock, token loss — the Chandy–Lamport
class cited in the paper's Figure 1 lineage).  For a stable predicate B,

* ``possibly(B)``  <=>  B holds at the final cut, and
* ``definitely(B)`` <=>  B holds at the final cut,

because the final cut belongs to every run and dominates every cut.  The
online counterpart — detecting a stable predicate while the system runs,
with Chandy–Lamport snapshots — lives in :mod:`repro.simulation.snapshot`;
this module is the offline/trace side.
"""

from __future__ import annotations

from typing import Optional

from repro.computation import Computation, final_cut, iter_consistent_cuts
from repro.detection.result import DetectionResult
from repro.obs import span
from repro.predicates.base import GlobalPredicate

__all__ = ["is_stable", "detect_stable"]


def is_stable(
    computation: Computation, predicate: GlobalPredicate
) -> bool:
    """Exhaustively verify stability of a predicate on this computation.

    Checks that the predicate, once true at a cut, is true at every
    immediate successor — exponential, intended for tests and small traces.
    """
    for cut in iter_consistent_cuts(computation):
        if predicate.evaluate(cut):
            for nxt in cut.successors():
                if not predicate.evaluate(nxt):
                    return False
    return True


def detect_stable(
    computation: Computation,
    predicate: GlobalPredicate,
    verify_stability: bool = False,
) -> DetectionResult:
    """Decide possibly/definitely of a *stable* predicate in O(n).

    For stable predicates the two modalities coincide and are decided at
    the final cut.  Pass ``verify_stability=True`` to check the stability
    assumption exhaustively first (raises ValueError if violated).
    """
    if verify_stability and not is_stable(computation, predicate):
        raise ValueError("predicate is not stable on this computation")
    with span("engine.stable-final-cut") as sp:
        last = final_cut(computation)
        holds = predicate.evaluate(last)
        sp.set(holds=holds)
        return DetectionResult(
            holds=holds,
            witness=last if holds else None,
            algorithm="stable-final-cut",
            stats={},
        )
