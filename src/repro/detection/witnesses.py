"""Witness enumeration: *all* cuts satisfying a predicate.

``possibly`` answers whether one witness exists; debugging sessions often
want to see every global state exhibiting a condition (e.g. every state
where two processes overlap in their critical sections).  This module
enumerates them:

* conjunctive predicates route through the slice
  (:class:`repro.slicing.ConjunctiveSlice`), touching only the satisfying
  sublattice;
* everything else filters the lattice enumeration (exponential, with a
  mandatory ``limit``-style discipline left to the caller via the lazy
  iterator).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.computation import Computation, Cut, iter_consistent_cuts
from repro.predicates.base import GlobalPredicate
from repro.predicates.boolean import CNFPredicate
from repro.predicates.conjunctive import (
    ConjunctivePredicate,
    conjunctive_from_cnf,
)

__all__ = ["iter_witnesses", "count_witnesses"]


def iter_witnesses(
    computation: Computation, predicate: GlobalPredicate
) -> Iterator[Cut]:
    """Lazily yield every consistent cut satisfying the predicate.

    Conjunctive predicates (and 1-CNF views of them) enumerate through the
    slice — output-sensitive; other predicates filter the full lattice.
    Cuts arrive in non-decreasing size order either way.
    """
    conjunctive_view: Optional[ConjunctivePredicate] = None
    if isinstance(predicate, ConjunctivePredicate):
        conjunctive_view = predicate
    elif isinstance(predicate, CNFPredicate) and predicate.is_conjunctive():
        if predicate.is_singular():
            conjunctive_view = conjunctive_from_cnf(predicate)
    if conjunctive_view is not None:
        from repro.slicing import ConjunctiveSlice

        yield from ConjunctiveSlice(computation, conjunctive_view)
        return
    for cut in iter_consistent_cuts(computation):
        if predicate.evaluate(cut):
            yield cut


def count_witnesses(
    computation: Computation, predicate: GlobalPredicate
) -> int:
    """Number of consistent cuts satisfying the predicate."""
    return sum(1 for _ in iter_witnesses(computation, predicate))
