"""Garg–Waldecker conjunctive predicate detection (CPDHB).

``possibly`` of a conjunctive predicate — a conjunction of local predicates,
one per participating process — is decidable in polynomial time by an
elimination scan (Garg & Waldecker, IEEE TPDS 1994; the tractable cell of
the paper's Figure 1).  The scan keeps one candidate *true event* per
process; whenever two candidates ``e, f`` are inconsistent, one of them
provably belongs to no solution and is advanced past:

    ``succ(e) -> f``  ⟹  ``e`` is inconsistent with ``f`` and with every
    later true event of ``f``'s sequence (they are causally after ``f``),
    so ``e`` can be eliminated.

We implement the scan over *causal chains* rather than processes: a chain
is any sequence of events totally ordered by happened-before.  With one
chain per process (its true events in local order) this is classical
CPDHB; with arbitrary chains it is the engine of the paper's Section 3.3
chain-cover algorithm for singular k-CNF predicates — the elimination
argument is verbatim, since later chain events are causally after the
current one.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

from repro.computation import Computation, Cut, least_consistent_cut
from repro.detection.result import DetectionResult
from repro.events import EventId
from repro.obs import StatCounters, span
from repro.obs.progress import tracker
from repro.perf.causality import CausalityIndex
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import true_events

__all__ = ["find_consistent_selection", "detect_conjunctive", "SelectionScan"]


class SelectionScan:
    """Elimination scan finding pairwise-consistent events, one per chain.

    Exposes the number of eliminations performed (``advances``) for the
    benchmarks; the scan performs at most ``sum of chain lengths``
    eliminations, each costing O(number of chains) consistency checks.

    Causality queries go through the computation's memoized
    :class:`~repro.perf.causality.CausalityIndex` (raw-clock ``leq``,
    precomputed successors); pass ``index`` explicitly only to substitute
    a compatible query provider (the benchmarks use this to measure the
    unindexed baseline).
    """

    def __init__(
        self,
        computation: Computation,
        chains: Sequence[Sequence[EventId]],
        index=None,
    ):
        self._comp = computation
        self._index = index if index is not None else CausalityIndex.of(computation)
        self._chains: List[List[EventId]] = [list(c) for c in chains]
        self.advances = 0
        self.comparisons = 0

    def run(self) -> Optional[List[EventId]]:
        """Return a pairwise-consistent selection, or None if none exists."""
        m = len(self._chains)
        if m == 0:
            return []
        if any(not chain for chain in self._chains):
            return None
        if isinstance(self._index, CausalityIndex):
            return self._run_indexed(self._index, m)
        return self._run_generic(self._index, m)

    def _run_indexed(
        self, index: CausalityIndex, m: int
    ) -> Optional[List[EventId]]:
        """Scan on raw clock tuples — no per-comparison function calls.

        For a non-initial event ``e' = (p, i)`` with ``i >= 1``,
        ``leq(e', f)`` reduces to ``f`` being non-initial with
        ``clk(f)[p] > i`` (the component counts the events of ``p`` in
        ``f``'s causal past, including the initial one, so same-process
        equality is covered too).  Both elimination tests only ever apply
        ``leq`` to local successors, which are non-initial by construction.
        """
        clk = index._clk
        lengths = index._lengths
        chains = self._chains
        cursor = [0] * m
        pending: deque[int] = deque(range(m))
        queued = [True] * m
        advances = 0
        comparisons = 0
        trk = tracker("detect.scan", check_every=512)
        while pending:
            trk.step()
            i = pending.popleft()
            queued[i] = False
            ep, ei = chains[i][cursor[i]]
            ei1 = ei + 1
            e_last = ei1 >= lengths[ep]
            restart = False
            for j in range(m):
                if j == i:
                    continue
                fp, fi = chains[j][cursor[j]]
                comparisons += 1
                if not e_last and fi and clk[fp][fi][ep] > ei1:
                    # succ(e) -> f: e pairs with nothing at or after f.
                    advances += 1
                    cursor[i] += 1
                    if cursor[i] >= len(chains[i]):
                        self.advances = advances
                        self.comparisons = comparisons
                        return None
                    if not queued[i]:
                        pending.append(i)
                        queued[i] = True
                    restart = True
                    break
                fi1 = fi + 1
                if fi1 < lengths[fp] and ei and clk[ep][ei][fp] > fi1:
                    # succ(f) -> e: eliminate f symmetrically.
                    advances += 1
                    cursor[j] += 1
                    if cursor[j] >= len(chains[j]):
                        self.advances = advances
                        self.comparisons = comparisons
                        return None
                    if not queued[j]:
                        pending.append(j)
                        queued[j] = True
            if restart:
                continue
        self.advances = advances
        self.comparisons = comparisons
        return [chains[i][cursor[i]] for i in range(m)]

    def _run_generic(self, index, m: int) -> Optional[List[EventId]]:
        """Scan through the provider's ``leq``/``successor`` callables."""
        leq = index.leq
        successor = index.successor
        cursor = [0] * m
        # Chains whose candidate changed and must be re-checked against all.
        pending: deque[int] = deque(range(m))
        queued = [True] * m

        def advance(i: int) -> bool:
            """Move chain i to its next event; False if exhausted."""
            self.advances += 1
            cursor[i] += 1
            return cursor[i] < len(self._chains[i])

        trk = tracker("detect.scan", check_every=512)
        while pending:
            trk.step()
            i = pending.popleft()
            queued[i] = False
            e = self._chains[i][cursor[i]]
            succ_e = successor(e)
            restart = False
            for j in range(m):
                if j == i:
                    continue
                f = self._chains[j][cursor[j]]
                self.comparisons += 1
                if succ_e is not None and leq(succ_e, f):
                    # e cannot pair with f nor any later event of chain j.
                    if not advance(i):
                        return None
                    if not queued[i]:
                        pending.append(i)
                        queued[i] = True
                    restart = True
                    break
                succ_f = successor(f)
                if succ_f is not None and leq(succ_f, e):
                    if not advance(j):
                        return None
                    if not queued[j]:
                        pending.append(j)
                        queued[j] = True
            if restart:
                continue
        return [self._chains[i][cursor[i]] for i in range(m)]


def find_consistent_selection(
    computation: Computation, chains: Sequence[Sequence[EventId]]
) -> Optional[List[EventId]]:
    """Pairwise-consistent selection of one event per causal chain, or None.

    Each chain must be sorted by happened-before (chains produced by
    :func:`repro.computation.minimum_chain_cover` and per-process true-event
    lists both are).
    """
    return SelectionScan(computation, chains).run()


def detect_conjunctive(
    computation: Computation, predicate: ConjunctivePredicate
) -> DetectionResult:
    """Decide ``possibly`` of a conjunctive predicate by CPDHB.

    Returns a witness cut passing through one true event per conjunct when
    the predicate possibly holds.
    """
    with span("engine.cpdhb", conjuncts=len(predicate.conjuncts)) as sp:
        chains = [
            true_events(computation, conjunct)
            for conjunct in predicate.conjuncts
        ]
        scan = SelectionScan(computation, chains)
        selection = scan.run()
        CausalityIndex.of(computation).maybe_flush_metrics()
        stats = StatCounters("engine.cpdhb")
        stats.set("chains", len(chains))
        stats.inc("advances", scan.advances)
        stats.inc("comparisons", scan.comparisons)
        sp.set(advances=scan.advances, holds=selection is not None)
        if selection is None:
            return DetectionResult(
                holds=False, algorithm="cpdhb", stats=stats.as_dict()
            )
        witness = least_consistent_cut(computation, selection)
        assert witness is not None, "CPDHB selection must admit a consistent cut"
        assert predicate.evaluate(witness)
        return DetectionResult(
            holds=True, witness=witness, algorithm="cpdhb",
            stats=stats.as_dict(),
        )
