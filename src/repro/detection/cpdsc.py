"""Conjunctive detection on meta-processes (Tarafdar–Garg CPDSC).

Section 3.2 of the paper solves singular k-CNF detection in polynomial time
when the computation is *receive-ordered* or *send-ordered* with respect to
the clause groups: view each group of processes as one *meta-process* whose
events are only partially ordered (the strong-causality model of
Tarafdar–Garg), and run conjunctive detection over meta-processes.

The receive-ordered scan (all receive events of every meta-process totally
ordered by happened-before) works as follows:

1. Within each meta-process, extend the causal order by an arrow from every
   event to each *independent* receive event of the same meta-process.  The
   extension is acyclic (receive-ordering prevents receive/receive arrows in
   both directions); we verify acyclicity and raise otherwise.
2. Linearize the extended order per meta-process; sort each meta-process's
   true events by that linearization.
3. Run the CPDHB-style elimination scan over these sorted sequences, using
   ordinary pairwise consistency.  Correctness rests on Property P: if
   ``succ(e) -> f`` for a candidate ``f`` of meta-process B, then ``e`` is
   inconsistent with every event of B after ``f`` in the linearization —
   the causal path into B enters through a receive ``r <= f``, and every
   later event either causally follows ``r`` or would have been pushed
   before ``r`` by the added arrows.

The send-ordered case is solved by duality: reverse the computation (sends
become receives, so send-ordering becomes receive-ordering), map each true
event ``t`` to the reversed image of ``succ(t)`` (pairwise consistency is
preserved by this map; see :mod:`repro.computation.reverse`), run the
receive-ordered scan, and map the witness back.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.computation import Computation
from repro.computation.reverse import (
    reverse_computation,
    reverse_event_partner,
)
from repro.detection.garg_waldecker import SelectionScan
from repro.events import EventId
from repro.perf.causality import CausalityIndex
from repro.predicates.errors import UnsupportedPredicateError

__all__ = [
    "is_receive_ordered",
    "is_send_ordered",
    "meta_process_order",
    "detect_receive_ordered",
    "detect_send_ordered",
]


def _events_of_group(computation: Computation, group: Sequence[int]) -> List[EventId]:
    ids: List[EventId] = []
    for p in group:
        for ev in computation.events_of(p):
            ids.append(ev.event_id)
    return ids


def is_receive_ordered(
    computation: Computation, groups: Sequence[Sequence[int]]
) -> bool:
    """All receive events of every meta-process totally ordered by causality.

    Memoized per group structure on the computation's causality index, so
    auto dispatch and an explicit special-case run never pay twice.
    """
    return CausalityIndex.of(computation).is_receive_ordered(groups)


def is_send_ordered(
    computation: Computation, groups: Sequence[Sequence[int]]
) -> bool:
    """All send events of every meta-process totally ordered by causality.

    Memoized per group structure on the computation's causality index.
    """
    return CausalityIndex.of(computation).is_send_ordered(groups)


def meta_process_order(
    computation: Computation, group: Sequence[int]
) -> Dict[EventId, int]:
    """Linearization rank of the group's events in the extended order.

    The extended order is causality restricted to the group, plus an arrow
    from each event to every independent receive event of the group.

    Raises:
        UnsupportedPredicateError: If the extension is cyclic (the group is
            not receive-ordered).
    """
    index = CausalityIndex.of(computation)
    happened_before = index.happened_before
    ids = _events_of_group(computation, group)
    id_set = set(ids)
    succs: Dict[EventId, Set[EventId]] = {eid: set() for eid in ids}
    indegree: Dict[EventId, int] = {eid: 0 for eid in ids}

    receives = [
        eid
        for eid in ids
        if eid[1] > 0 and computation.event(eid).kind.is_receive
    ]
    for e in ids:
        for f in ids:
            if e == f:
                continue
            if happened_before(e, f):
                if f not in succs[e]:
                    succs[e].add(f)
                    indegree[f] += 1
    for r in receives:
        for e in ids:
            if e == r or happened_before(e, r) or happened_before(r, e):
                continue
            if r not in succs[e]:
                succs[e].add(r)
                indegree[r] += 1

    order: Dict[EventId, int] = {}
    ready = deque(sorted(eid for eid in ids if indegree[eid] == 0))
    rank = 0
    while ready:
        eid = ready.popleft()
        order[eid] = rank
        rank += 1
        for f in sorted(succs[eid]):
            indegree[f] -= 1
            if indegree[f] == 0:
                ready.append(f)
    if len(order) != len(ids):
        raise UnsupportedPredicateError(
            "meta-process extension is cyclic: the computation is not "
            "receive-ordered for this group"
        )
    return order


def detect_receive_ordered(
    computation: Computation,
    groups: Sequence[Sequence[int]],
    group_true_events: Sequence[Sequence[EventId]],
) -> Optional[List[EventId]]:
    """CPDSC scan for receive-ordered computations.

    Args:
        computation: The trace.
        groups: Process set of each meta-process (pairwise disjoint).
        group_true_events: For each meta-process, the events (on its
            processes) after which its clause is true.

    Returns:
        A pairwise-consistent selection of one true event per meta-process,
        or None when the predicate never holds.

    Raises:
        UnsupportedPredicateError: If the computation is not receive-ordered
            with respect to the groups.
    """
    sequences: List[List[EventId]] = []
    for group, trues in zip(groups, group_true_events):
        order = meta_process_order(computation, group)
        unknown = [eid for eid in trues if eid not in order]
        if unknown:
            raise UnsupportedPredicateError(
                f"true events {unknown} are not on the group's processes"
            )
        sequences.append(sorted(trues, key=lambda eid: order[eid]))
    return SelectionScan(computation, sequences).run()


def detect_send_ordered(
    computation: Computation,
    groups: Sequence[Sequence[int]],
    group_true_events: Sequence[Sequence[EventId]],
) -> Optional[List[EventId]]:
    """CPDSC scan for send-ordered computations, via reversal.

    Maps every true event ``t`` to the reversed partner of ``succ(t)``,
    runs the receive-ordered scan on the reversed computation, and maps the
    witness selection back to original events.
    """
    reversed_comp = reverse_computation(computation)
    partner: Dict[EventId, EventId] = {}
    mapped: List[List[EventId]] = []
    back: List[Dict[EventId, EventId]] = []
    for trues in group_true_events:
        mapped_group: List[EventId] = []
        back_group: Dict[EventId, EventId] = {}
        for t in trues:
            image = reverse_event_partner(computation, t)
            mapped_group.append(image)
            # Two distinct true events never share an image: the partner map
            # is injective per process.
            back_group[image] = t
        mapped.append(mapped_group)
        back.append(back_group)
    selection = detect_receive_ordered(reversed_comp, groups, mapped)
    if selection is None:
        return None
    return [back[i][image] for i, image in enumerate(selection)]
