"""Stoller–Schneider decomposition: arbitrary CNF via conjunctive scans.

The paper's related work (its reference [15]) describes detecting a
predicate "satisfying certain structure by reducing the problem to
multiple predicate detection problems each of which is solvable using
Garg and Waldecker's algorithm", practical when "the number of new
predicate detection problems generated is not too large".

For a CNF predicate — singular or not — that decomposition is: choose one
literal from every clause; the conjunction of the chosen literals is a
*conjunctive* predicate (literals landing on the same process AND together
into one local predicate), decidable by CPDHB in polynomial time; and

    ``possibly(CNF)  <=>  OR over all choices of possibly(conjunction)``.

(⇐ is monotone weakening; ⇒ holds because a witness cut satisfies some
literal of every clause — pick those.)  The number of sub-problems is the
product of the clause widths, so this engine is exponential in the number
of clauses in the worst case — consistent with the paper's Theorem 1 — but
each sub-problem is cheap and, unlike lattice enumeration, the cost is
independent of the trace length beyond the linear scan.

Choices whose chosen literals are contradictory on a process (``x`` and
``not x``) are skipped without a scan.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Sequence, Tuple

from repro.computation import Computation, least_consistent_cut
from repro.detection.garg_waldecker import SelectionScan
from repro.detection.result import DetectionResult
from repro.events import Event, EventId
from repro.obs import StatCounters, span
from repro.predicates.boolean import CNFPredicate
from repro.predicates.local import Literal

__all__ = ["detect_cnf_by_literal_choice"]


def _true_events_for_conjunction(
    computation: Computation, process: int, literals: Sequence[Literal]
) -> List[EventId]:
    """Events of ``process`` where all given literals hold."""
    result: List[EventId] = []
    for event in computation.events_of(process):
        if all(lit.holds_after(event) for lit in literals):
            result.append(event.event_id)
    return result


def detect_cnf_by_literal_choice(
    computation: Computation, predicate: CNFPredicate
) -> DetectionResult:
    """Decide ``possibly`` of an arbitrary CNF predicate (Stoller–Schneider).

    Works for non-singular predicates too.  Returns a witness cut when the
    predicate possibly holds; ``stats`` reports the number of literal
    combinations, how many were contradictory (skipped), and how many
    CPDHB invocations ran.
    """
    clause_literals: List[Tuple[Literal, ...]] = [
        cl.literals for cl in predicate.clauses
    ]
    total = math.prod(len(lits) for lits in clause_literals)
    with span(
        "engine.stoller-schneider",
        clauses=len(clause_literals),
        combinations=total,
    ) as sp:
        stats = StatCounters("engine.stoller-schneider")
        stats.set("combinations", total)
        stats.inc("contradictory", 0)
        stats.inc("invocations", 0)
        for choice in itertools.product(*clause_literals):
            # Group the chosen literals by process; duplicates merge, and a
            # variable chosen in both polarities kills the combination.
            by_process: Dict[int, Dict[Tuple[str, bool], Literal]] = {}
            contradictory = False
            for lit in choice:
                bucket = by_process.setdefault(lit.process, {})
                bucket[(lit.variable, lit.negated)] = lit
                if (lit.variable, not lit.negated) in bucket:
                    contradictory = True
                    break
            if contradictory:
                stats.inc("contradictory")
                continue
            chains = [
                _true_events_for_conjunction(
                    computation, process, list(bucket.values())
                )
                for process, bucket in sorted(by_process.items())
            ]
            stats.inc("invocations")
            with span("scan.cpdhb") as scan_sp:
                scan = SelectionScan(computation, chains)
                selection = scan.run()
                scan_sp.set(advances=scan.advances)
            if selection is not None:
                witness = least_consistent_cut(computation, selection)
                assert witness is not None
                assert predicate.evaluate(witness)
                sp.set(holds=True)
                return DetectionResult(
                    holds=True,
                    witness=witness,
                    algorithm="stoller-schneider",
                    stats=stats.as_dict(),
                )
        sp.set(holds=False)
        return DetectionResult(
            holds=False, algorithm="stoller-schneider", stats=stats.as_dict()
        )
