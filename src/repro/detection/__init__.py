"""Detection algorithms (substrate S7): the paper's contribution."""

from repro.detection.api import definitely, detect, possibly
from repro.detection.cooper_marzullo import (
    definitely_enumerate,
    possibly_enumerate,
)
from repro.detection.definitely_conjunctive import (
    definitely_conjunctive,
    false_intervals,
)
from repro.detection.cpdsc import (
    detect_receive_ordered,
    detect_send_ordered,
    is_receive_ordered,
    is_send_ordered,
    meta_process_order,
)
from repro.detection.garg_waldecker import (
    SelectionScan,
    detect_conjunctive,
    find_consistent_selection,
)
from repro.detection.relational_sum import (
    definitely_sum,
    definitely_sum_eq_unit,
    possibly_sum,
    possibly_sum_eq_exact,
    possibly_sum_eq_unit,
    witness_cut_with_sum,
)
from repro.detection.result import DetectionResult
from repro.detection.singular_cnf import (
    clause_true_events,
    clause_true_events_on,
    detect_by_chain_choice,
    detect_by_process_choice,
    detect_singular,
    detect_special_case,
)
from repro.detection.stable import detect_stable, is_stable
from repro.detection.stoller_schneider import detect_cnf_by_literal_choice
from repro.detection.witnesses import count_witnesses, iter_witnesses
from repro.detection.work_optimal import detect_work_optimal
from repro.detection.symmetric_detect import (
    definitely_symmetric,
    possibly_symmetric,
)

__all__ = [
    "DetectionResult",
    "SelectionScan",
    "clause_true_events",
    "count_witnesses",
    "clause_true_events_on",
    "definitely",
    "definitely_conjunctive",
    "definitely_enumerate",
    "definitely_sum",
    "definitely_sum_eq_unit",
    "definitely_symmetric",
    "detect",
    "detect_by_chain_choice",
    "detect_by_process_choice",
    "detect_cnf_by_literal_choice",
    "detect_conjunctive",
    "detect_receive_ordered",
    "detect_send_ordered",
    "detect_singular",
    "detect_special_case",
    "detect_stable",
    "detect_work_optimal",
    "false_intervals",
    "find_consistent_selection",
    "is_receive_ordered",
    "is_send_ordered",
    "is_stable",
    "iter_witnesses",
    "meta_process_order",
    "possibly",
    "possibly_enumerate",
    "possibly_sum",
    "possibly_sum_eq_exact",
    "possibly_sum_eq_unit",
    "possibly_symmetric",
    "witness_cut_with_sum",
]
