"""Detection of symmetric predicates (paper, Section 4.3).

A symmetric predicate on n boolean variables holds iff the number of true
variables lies in a count set S.  Booleans are 0/1-valued, so every event
changes the true-count by at most one — the ±1 hypothesis of Section 4.2
holds automatically, and:

* ``possibly(count in S)``: since ``possibly`` distributes over disjunction,
  it holds iff some j in S satisfies ``min-count <= j <= max-count``, with
  min/max computed by one min-cut each.  Polynomial.
* ``definitely(count in S)``: ``definitely`` does *not* distribute over
  disjunction, so general count sets use the exact avoidance search; the
  singleton case ``S = {j}`` uses the paper's Theorem 7(2) decomposition.
"""

from __future__ import annotations

from typing import Optional

from repro.computation import Computation, Cut, reachable_avoiding
from repro.detection.relational_sum import (
    definitely_sum_eq_unit,
    witness_cut_with_sum,
)
from repro.detection.result import DetectionResult
from repro.flow import max_sum_cut, min_sum_cut
from repro.obs import StatCounters, span
from repro.predicates.relational import RelationalSumPredicate, Relop
from repro.predicates.symmetric import SymmetricPredicate

__all__ = ["possibly_symmetric", "definitely_symmetric"]


def possibly_symmetric(
    computation: Computation, predicate: SymmetricPredicate
) -> DetectionResult:
    """``possibly`` of a symmetric predicate in polynomial time."""
    variable = predicate.variable
    with span("engine.symmetric-unit-step", variable=variable) as sp:
        lo, _ = min_sum_cut(computation, variable)
        hi, _ = max_sum_cut(computation, variable)
        stats = StatCounters("engine.symmetric-unit-step")
        stats.set("min_count", lo)
        stats.set("max_count", hi)
        reachable = sorted(j for j in predicate.counts if lo <= j <= hi)
        sp.set(min_count=lo, max_count=hi, holds=bool(reachable))
        if not reachable:
            return DetectionResult(
                holds=False, algorithm="symmetric-unit-step",
                stats=stats.as_dict(),
            )
        witness: Optional[Cut] = witness_cut_with_sum(
            computation, variable, reachable[0]
        )
        assert witness is not None
        return DetectionResult(
            holds=True,
            witness=witness,
            algorithm="symmetric-unit-step",
            stats=stats.as_dict(),
        )


def definitely_symmetric(
    computation: Computation,
    predicate: SymmetricPredicate,
    use_slice: bool = True,
) -> DetectionResult:
    """``definitely`` of a symmetric predicate.

    Singleton count sets use the Theorem 7(2) decomposition; general count
    sets are decided exactly by searching for a run avoiding the predicate
    (restricted to the predicate's slice box unless ``use_slice`` is
    False).
    """
    if len(predicate.counts) == 1:
        (count,) = predicate.counts
        inner = RelationalSumPredicate(predicate.variable, Relop.EQ, count)
        result = definitely_sum_eq_unit(computation, inner, use_slice)
        return DetectionResult(
            holds=result.holds,
            algorithm="symmetric-" + result.algorithm,
            stats=result.stats,
        )
    with span(
        "engine.symmetric-avoidance", counts=sorted(predicate.counts)
    ) as sp:
        trivially_avoidable, bounds = False, None
        if use_slice:
            from repro.slicing.dispatch import avoidance_bounds

            trivially_avoidable, bounds = avoidance_bounds(
                computation, predicate
            )
        if trivially_avoidable:
            avoidable = True
        else:
            avoidable = reachable_avoiding(
                computation, predicate.evaluate, bounds=bounds
            )
        stats = StatCounters("engine.symmetric-avoidance")
        stats.inc("searches")
        sp.set(holds=not avoidable, sliced=bounds is not None)
        return DetectionResult(
            holds=not avoidable, algorithm="symmetric-avoidance",
            stats=stats.as_dict(),
        )
