"""Work-optimal parallel conjunctive detection (arXiv 2008.12516).

Garg's work-optimal algorithm replaces the CPDHB scan's one-elimination-
at-a-time walk with synchronous *rounds* over the chain decomposition of
the candidate events (for a conjunctive predicate: one chain per
conjunct, its true events in local order).  Each round:

1. **join** — compute the *need* vector, the componentwise join of the
   clocks of the currently selected candidates
   (``need[p] = max_f clk(f)[p]``);
2. **eliminate** — a candidate ``e = (p, i)`` survives iff
   ``need[p] <= i + 1``: a violation means some other selected ``f`` has
   ``clk(f)[p] > i + 1``, i.e. ``succ(e) ⊑ f``, the classical CPDHB
   elimination (``e`` can pair with nothing at or after ``f``);
3. **advance** — every eliminated chain *jumps* its cursor to the first
   event with own-component ``>= need[p]`` (every skipped event is
   eliminated by the same witness ``f``), a binary search instead of a
   step-by-step walk.

A round with no eliminations is a fixpoint, which is exactly pairwise
consistency of the selection; an exhausted chain proves ``¬possibly``.
All eliminations in a round are independent, so the round parallelizes
over chains with two barriers (partial joins, then advances) — the
shared-state structure behind ``parallel=N`` — and both the serial and
the parallel schedule converge to the **least** consistent selection,
making verdict *and* witness identical to the CPDHB scan.

The same rounds, run over a *batch* of combination cursors at once, give
:class:`CombinationSweep`: the Section 3.3 process-/chain-choice sweeps
score each combination with a handful of ``(B, m, n)`` array joins
instead of ``B`` interpreted Python scans.  Cross-process chain-cover
chains advance step-wise (the jump target's process may change), which is
still sound: each step re-checks the new candidate against the round's
need vector, and the own-chain contribution to *need* can never eliminate
a later event of the same chain (its clock is dominated by theirs).

Clock reads go through the computation's
:class:`~repro.perf.clockmatrix.ClockMatrix`; with numpy absent the
engine runs the identical rounds over raw clock tuples.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from repro.computation import Computation, least_consistent_cut
from repro.detection.result import DetectionResult
from repro.events import EventId
from repro.obs import StatCounters, span
from repro.perf.causality import CausalityIndex
from repro.perf.clockmatrix import numpy_available
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import true_events

__all__ = [
    "detect_work_optimal",
    "CombinationSweep",
    "use_batched_sweep",
    "VEC_MIN_COMBINATIONS",
    "VEC_CHUNK",
]

Frontier = Tuple[int, ...]

#: Below this many combinations a per-rank CPDHB scan beats the batched
#: kernel's fixed array overhead; the gate must be a pure function of the
#: sweep size so serial drivers and pool workers always agree on it.
VEC_MIN_COMBINATIONS = 64
#: Ranks per batched block.  Worker-count *independent* (unlike the
#: per-rank chunking) so a serial sweep and any pool consume identical
#: blocks — the invocations/advances parity the tests pin down.
VEC_CHUNK = 4096


def use_batched_sweep(total: int) -> bool:
    """Should a sweep of ``total`` combinations use the batched kernel?"""
    return numpy_available() and total >= VEC_MIN_COMBINATIONS


# ----------------------------------------------------------------------
# The work-optimal engine (one conjunctive predicate)
# ----------------------------------------------------------------------
def _round_python(
    index: CausalityIndex,
    chains: Sequence[Sequence[EventId]],
    positions: Sequence[Sequence[int]],
    cursor: List[int],
    owners: List[List[int]],
) -> Tuple[int, bool]:
    """One serial elimination round on raw clock tuples.

    Returns ``(eliminations, exhausted)``; zero eliminations = fixpoint.
    """
    n = index.num_processes
    clk = index._clk
    need = [0] * n
    for i, chain in enumerate(chains):
        p, idx = chain[cursor[i]]
        clock = clk[p][idx]
        for q in range(n):
            if clock[q] > need[q]:
                need[q] = clock[q]
    advances = 0
    for i, chain in enumerate(chains):
        p = chain[cursor[i]][0]
        target = need[p]
        if target <= positions[i][cursor[i]]:
            continue
        nxt = bisect_left(positions[i], target, lo=cursor[i] + 1)
        advances += nxt - cursor[i]
        cursor[i] = nxt
        if nxt >= len(chain):
            return advances, True
    return advances, False


def _run_rounds_serial(
    matrix,
    index: CausalityIndex,
    chains: Sequence[Sequence[EventId]],
    positions: Sequence[Sequence[int]],
    cursor: List[int],
    stats: StatCounters,
    vectorized: bool,
) -> Optional[List[EventId]]:
    """Round loop to fixpoint or exhaustion; returns the selection."""
    rows = [matrix.rows_of(chain) for chain in chains] if vectorized else None
    owners = [[e[0] for e in chain] for chain in chains]
    while True:
        stats.inc("rounds")
        if vectorized:
            need = matrix.join_rows(
                [rows[i][cursor[i]] for i in range(len(chains))]
            )
            advances = 0
            exhausted = False
            for i, chain in enumerate(chains):
                target = need[owners[i][cursor[i]]]
                if target <= positions[i][cursor[i]]:
                    continue
                nxt = bisect_left(positions[i], target, lo=cursor[i] + 1)
                advances += nxt - cursor[i]
                cursor[i] = nxt
                if nxt >= len(chain):
                    exhausted = True
                    break
        else:
            advances, exhausted = _round_python(
                index, chains, positions, cursor, owners
            )
        stats.inc("advances", advances)
        if exhausted:
            return None
        if advances == 0:
            return [chains[i][cursor[i]] for i in range(len(chains))]


def _run_rounds_parallel(
    matrix,
    index: CausalityIndex,
    chains: Sequence[Sequence[EventId]],
    positions: Sequence[Sequence[int]],
    cursor: List[int],
    stats: StatCounters,
    vectorized: bool,
    workers: int,
) -> Optional[List[EventId]]:
    """The shared-state parallel schedule: two barriers per round.

    Chains are partitioned across threads; per round each thread joins
    the clocks of *its* selected candidates into a partial need vector,
    the partials merge at a barrier (max is commutative, so the merged
    vector equals the serial round's), and each thread then advances its
    own chains.  Rounds, eliminations, and the final selection are
    bit-identical to the serial schedule.
    """
    m = len(chains)
    n = index.num_processes
    slices = [list(range(t, m, workers)) for t in range(workers)]
    rows = [matrix.rows_of(chain) for chain in chains] if vectorized else None
    clk = index._clk
    barrier = threading.Barrier(workers)
    partial: List[Optional[Tuple[int, ...]]] = [None] * workers
    eliminated = [0] * workers
    exhausted = [False] * workers
    state = {"need": None, "rounds": 0, "advances": 0, "done": False}

    def joined(mine: Sequence[int]) -> Tuple[int, ...]:
        if vectorized:
            return matrix.join_rows([rows[i][cursor[i]] for i in mine])
        need = [0] * n
        for i in mine:
            p, idx = chains[i][cursor[i]]
            clock = clk[p][idx]
            for q in range(n):
                if clock[q] > need[q]:
                    need[q] = clock[q]
        return tuple(need)

    def worker(t: int) -> None:
        mine = slices[t]
        while True:
            partial[t] = joined(mine) if mine else (0,) * n
            barrier.wait()
            if t == 0:
                merged = [0] * n
                for vec in partial:
                    for q in range(n):
                        if vec[q] > merged[q]:
                            merged[q] = vec[q]
                state["need"] = merged
                state["rounds"] += 1
            barrier.wait()
            need = state["need"]
            count = 0
            dead = False
            for i in mine:
                target = need[chains[i][cursor[i]][0]]
                if target <= positions[i][cursor[i]]:
                    continue
                nxt = bisect_left(positions[i], target, lo=cursor[i] + 1)
                count += nxt - cursor[i]
                cursor[i] = nxt
                if nxt >= len(chains[i]):
                    dead = True
                    break
            eliminated[t] = count
            exhausted[t] = dead
            barrier.wait()
            if t == 0:
                state["advances"] += sum(eliminated)
                state["done"] = any(exhausted) or sum(eliminated) == 0
            barrier.wait()
            if state["done"]:
                return

    threads = [
        threading.Thread(target=worker, args=(t,), daemon=True)
        for t in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats.inc("rounds", state["rounds"])
    stats.inc("advances", state["advances"])
    if any(exhausted):
        return None
    return [chains[i][cursor[i]] for i in range(m)]


def detect_work_optimal(
    computation: Computation,
    predicate: ConjunctivePredicate,
    parallel: Optional[int] = None,
    bounds: Optional[Tuple[Frontier, Frontier]] = None,
    vectorized: Optional[bool] = None,
) -> DetectionResult:
    """Decide ``possibly`` of a conjunctive predicate by elimination rounds.

    Verdict and witness are identical to
    :func:`~repro.detection.garg_waldecker.detect_conjunctive` (both
    converge to the least consistent selection); the work differs —
    ``rounds`` batched joins instead of one comparison per elimination.

    ``parallel`` > 1 runs the shared-state round schedule over that many
    threads (clamped to the chain count).  ``bounds`` — a slice box from
    :mod:`repro.slicing` — jump-starts each cursor at the box's least
    frontier (every solution selects at or above it).  ``vectorized``
    forces the numpy kernels on/off; default follows availability.
    """
    with span(
        "engine.work-optimal", conjuncts=len(predicate.conjuncts)
    ) as sp:
        index = CausalityIndex.of(computation)
        vectorized = (
            numpy_available() if vectorized is None else bool(vectorized)
        )
        chains: List[List[EventId]] = [
            true_events(computation, conjunct)
            for conjunct in predicate.conjuncts
        ]
        stats = StatCounters("engine.work-optimal")
        stats.set("chains", len(chains))
        stats.inc("rounds", 0)
        stats.inc("advances", 0)

        def _finish(selection: Optional[List[EventId]]) -> DetectionResult:
            sp.set(holds=selection is not None)
            index.maybe_flush_metrics()
            if selection is None:
                return DetectionResult(
                    holds=False,
                    algorithm="work-optimal",
                    stats=stats.as_dict(),
                )
            witness = least_consistent_cut(computation, selection)
            assert witness is not None, (
                "fixpoint selection must admit a consistent cut"
            )
            assert predicate.evaluate(witness)
            return DetectionResult(
                holds=True,
                witness=witness,
                algorithm="work-optimal",
                stats=stats.as_dict(),
            )

        workers = 1
        if parallel is not None and parallel not in (0, 1):
            import os

            requested = (
                os.cpu_count() or 1 if parallel < 0 else int(parallel)
            )
            workers = max(1, min(requested, len(chains)))
        stats.set("workers", workers)
        if not chains or any(not chain for chain in chains):
            sp.set(holds=False)
            return _finish(None if chains else [])
        positions: List[List[int]] = [
            [e[1] + 1 for e in chain] for chain in chains
        ]
        cursor = [0] * len(chains)
        if bounds is not None:
            least = bounds[0]
            for i, chain in enumerate(chains):
                floor = least[chain[0][0]] if chain else 1
                start = bisect_left(positions[i], floor)
                stats.inc("advances", start)
                cursor[i] = start
                if start >= len(chain):
                    return _finish(None)
        matrix = index.matrix if vectorized else None
        if vectorized and not matrix.use_numpy:
            vectorized = False
            matrix = None
        if workers > 1:
            selection = _run_rounds_parallel(
                matrix, index, chains, positions, cursor, stats,
                vectorized, workers,
            )
        else:
            selection = _run_rounds_serial(
                matrix, index, chains, positions, cursor, stats, vectorized
            )
        return _finish(selection)


# ----------------------------------------------------------------------
# Batched combination sweep (Section 3.3 drivers)
# ----------------------------------------------------------------------
class CombinationSweep:
    """Vectorized work-optimal scoring of combination-rank blocks.

    One instance per (computation, per-group chain table); constructing
    it pads each group's chains into dense ``(chains, max_len)`` row /
    process / position arrays.  :meth:`scan_block` then runs the
    elimination rounds for a whole contiguous block of ranks at once:
    cursors live in a ``(B, m)`` matrix, the need vectors in ``(B, n)``,
    and a rank survives (its combination admits a consistent selection)
    iff its row reaches a round with no eliminations.

    Requires numpy (gate with :func:`use_batched_sweep`); results —
    verdict, winning rank, selection — equal the per-rank
    :class:`~repro.detection.garg_waldecker.SelectionScan` loop by the
    least-fixpoint argument.
    """

    def __init__(
        self,
        computation: Computation,
        per_group_chains: Sequence[Sequence[Sequence[EventId]]],
        index: Optional[CausalityIndex] = None,
    ):
        import numpy as np

        self._np = np
        self._index = (
            index if index is not None else CausalityIndex.of(computation)
        )
        matrix = self._index.matrix
        assert matrix.use_numpy, "CombinationSweep requires numpy kernels"
        self._matrix = matrix
        self._m = len(per_group_chains)
        self._group_sizes = [len(chains) for chains in per_group_chains]
        self._rows: List = []
        self._procs: List = []
        self._pos: List = []
        self._len: List = []
        for chains in per_group_chains:
            count = max(1, len(chains))
            width = max([len(c) for c in chains] + [1])
            rows = np.zeros((count, width), dtype=np.int64)
            procs = np.zeros((count, width), dtype=np.int64)
            pos = np.zeros((count, width), dtype=np.int64)
            lens = np.zeros(count, dtype=np.int64)
            for g, chain in enumerate(chains):
                lens[g] = len(chain)
                for k, (p, i) in enumerate(chain):
                    rows[g, k] = matrix.row((p, i))
                    procs[g, k] = p
                    pos[g, k] = i + 1
            self._rows.append(rows)
            self._procs.append(procs)
            self._pos.append(pos)
            self._len.append(lens)

    def _decode(self, start: int, stop: int):
        """Mixed-radix digits of ranks [start, stop) in product order."""
        np = self._np
        ranks = np.arange(start, stop, dtype=np.int64)
        digits = np.empty((ranks.size, self._m), dtype=np.int64)
        for j in range(self._m - 1, -1, -1):
            size = max(1, self._group_sizes[j])
            digits[:, j] = ranks % size
            ranks = ranks // size
        return digits

    def scan_block(
        self, start: int, stop: int
    ) -> Tuple[Optional[int], Optional[List[EventId]], int, int]:
        """Scan ranks ``[start, stop)``; every rank runs to its verdict.

        Returns ``(winning_rank, selection, advances, rounds)`` with the
        *lowest* successful rank of the block (None when the whole block
        fails).  ``advances`` counts cursor eliminations across all ranks
        of the block — block-partition independent, since each rank's
        round evolution never depends on its neighbours.
        """
        np = self._np
        matrix = self._matrix
        m, B = self._m, stop - start
        digits = self._decode(start, stop)
        cur = np.zeros((B, m), dtype=np.int64)
        active = np.ones(B, dtype=bool)
        for j in range(m):
            active &= self._len[j][digits[:, j]] > 0
        success = np.zeros(B, dtype=bool)
        advances = 0
        rounds = 0
        matrix._tally(B * m)
        while active.any():
            rounds += 1
            idx = np.nonzero(active)[0]
            A = idx.size
            sel_rows = np.empty((A, m), dtype=np.int64)
            sel_pos = np.empty((A, m), dtype=np.int64)
            sel_proc = np.empty((A, m), dtype=np.int64)
            for j in range(m):
                dj = digits[idx, j]
                cj = cur[idx, j]
                sel_rows[:, j] = self._rows[j][dj, cj]
                sel_pos[:, j] = self._pos[j][dj, cj]
                sel_proc[:, j] = self._procs[j][dj, cj]
            need = matrix.clk[sel_rows].max(axis=1)
            elim = (
                need[np.arange(A)[:, None], sel_proc] > sel_pos
            )
            stable = ~elim.any(axis=1)
            success[idx[stable]] = True
            active[idx[stable]] = False
            pair_a, pair_j = np.nonzero(elim)
            if pair_a.size == 0:
                continue
            # Advance every eliminated cursor to the first chain event
            # satisfying this round's need vector, in one vectorized pass
            # per group: an event at offset k survives iff
            # ``pos[k] >= need[proc[k]]`` (chain-cover chains may hop
            # processes, hence the per-event process gather), every
            # skipped event counts as one advance, and running off the
            # chain kills the combination.
            for j in range(m):
                mask = pair_j == j
                if not mask.any():
                    continue
                sel = pair_a[mask]
                eb = idx[sel]
                dj = digits[eb, j]
                cj = cur[eb, j]
                lens = self._len[j][dj]
                pos_rows = self._pos[j][dj]
                proc_rows = self._procs[j][dj]
                ok = pos_rows >= need[
                    sel[:, None], proc_rows
                ]
                ks = np.arange(pos_rows.shape[1])[None, :]
                viable = ok & (ks > cj[:, None]) & (ks < lens[:, None])
                alive = viable.any(axis=1)
                new_cur = np.where(alive, viable.argmax(axis=1), lens)
                advances += int((new_cur - cj).sum())
                cur[eb, j] = new_cur
                if not alive.all():
                    active[eb[~alive]] = False
        if not success.any():
            return None, None, advances, rounds
        first = int(np.nonzero(success)[0][0])
        selection: List[EventId] = []
        for j in range(m):
            d = int(digits[first, j])
            c = int(cur[first, j])
            selection.append(
                (
                    int(self._procs[j][d, c]),
                    int(self._pos[j][d, c]) - 1,
                )
            )
        return start + first, selection, advances, rounds
