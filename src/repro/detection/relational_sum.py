"""Detection of relational sum predicates (paper, Section 4).

``possibly``/``definitely`` of ``x_1 + ... + x_n relop k`` where each
``x_i`` is an integer variable of process i.

Polynomial engines:

* Inequalities (<, <=, >, >=): ``possibly`` reduces to the min/max of the
  sum over all consistent cuts, computed by one min-cut each
  (:mod:`repro.flow`), for *arbitrary* per-step changes.
* Equality with ±1 steps (the paper's Theorem 7):
  ``possibly(sum = k)  <=>  possibly(sum <= k) and possibly(sum >= k)``,
  i.e. ``min <= k <= max``.  The witness is constructed exactly as in the
  paper's Theorem 4: walk a lattice path from the initial cut toward the
  extremal cut and stop at the first cut whose sum hits ``k`` (the sum
  changes by at most one per executed event, so it cannot jump over ``k``).
  Likewise ``definitely(sum = k) <=> definitely(sum <= k) and
  definitely(sum >= k)`` — every run attains values on both sides of ``k``
  and therefore ``k`` itself.

Exact (exponential) engines, for the NP-complete cells:

* :func:`possibly_sum_eq_exact` — equality under arbitrary increments
  (Theorem 2 shows this NP-complete via SUBSET-SUM).  For computations
  without messages it runs the classical pseudo-polynomial sum-set dynamic
  program (per-process prefix sums composed by sumset convolution); in
  general it enumerates the cut lattice with early exit.
* ``definitely`` of the inequalities — decided exactly by searching for a
  run that avoids the predicate (a path through the complement sub-lattice).

Every public function returns a :class:`DetectionResult` whose ``stats``
record which machinery ran.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.computation import (
    Computation,
    Cut,
    initial_cut,
    reachable_avoiding,
)
from repro.detection.cooper_marzullo import possibly_enumerate
from repro.detection.result import DetectionResult
from repro.flow import max_sum_cut, min_sum_cut
from repro.obs import StatCounters, span
from repro.predicates.errors import UnsupportedPredicateError
from repro.predicates.relational import RelationalSumPredicate, Relop

__all__ = [
    "possibly_sum",
    "definitely_sum",
    "possibly_sum_eq_unit",
    "definitely_sum_eq_unit",
    "possibly_sum_eq_exact",
    "witness_cut_with_sum",
]


# ----------------------------------------------------------------------
# possibly — inequalities (polynomial for arbitrary increments)
# ----------------------------------------------------------------------
def _possibly_inequality(
    computation: Computation, predicate: RelationalSumPredicate
) -> DetectionResult:
    variable, k = predicate.variable, predicate.constant
    relop = predicate.relop
    with span("engine.min-cut", relop=relop.value, variable=variable) as sp:
        stats = StatCounters("engine.min-cut")
        stats.inc("flow_runs")
        if relop in (Relop.LT, Relop.LE):
            bound, witness = min_sum_cut(computation, variable)
            holds = relop.compare(bound, k)
            stats.set("min_sum", bound)
        else:
            bound, witness = max_sum_cut(computation, variable)
            holds = relop.compare(bound, k)
            stats.set("max_sum", bound)
        sp.set(k=k, extremal_sum=bound, holds=holds)
        return DetectionResult(
            holds=holds,
            witness=witness if holds else None,
            algorithm="min-cut",
            stats=stats.as_dict(),
        )


def witness_cut_with_sum(
    computation: Computation, variable: str, k: int
) -> Optional[Cut]:
    """A consistent cut whose variable-sum equals ``k``, for ±1 computations.

    Implements the constructive step of the paper's Theorem 4: pick the
    extremal cut on the far side of ``k`` from the initial sum, walk any
    lattice path from the initial cut to it, and return the first cut whose
    sum equals ``k``.  Returns None when ``k`` lies outside [min, max].
    """
    lo, lo_cut = min_sum_cut(computation, variable)
    hi, hi_cut = max_sum_cut(computation, variable)
    if not lo <= k <= hi:
        return None
    start = initial_cut(computation)
    base = start.variable_sum(variable)
    if base == k:
        return start
    target = hi_cut if k > base else lo_cut
    # Walk any maximal chain of the lattice interval [start, target]: from a
    # consistent cut strictly below another, some process with a smaller
    # frontier has its next event enabled (a minimal event of the
    # difference), so the greedy walk below always progresses and costs
    # O(events * processes) — no search.  The sum moves by at most one per
    # step, so it cannot jump over k (the paper's Theorem 4 argument).
    cut = start
    while cut != target:
        for p in range(computation.num_processes):
            if cut.frontier[p] < target.frontier[p] and cut.is_enabled(p):
                cut = cut.advance(p)
                break
        else:  # pragma: no cover - impossible between comparable cuts
            raise AssertionError("no enabled event below the target cut")
        if cut.variable_sum(variable) == k:
            return cut
    raise AssertionError(
        "±1 intermediate-value walk missed k; is the computation unit-step?"
    )


def possibly_sum_eq_unit(
    computation: Computation, predicate: RelationalSumPredicate
) -> DetectionResult:
    """``possibly(sum = k)`` for ±1 computations (paper, Theorem 7(1))."""
    _require_unit(computation, predicate)
    variable, k = predicate.variable, predicate.constant
    with span("engine.theorem7-unit-step", variable=variable, k=k) as sp:
        lo, _ = min_sum_cut(computation, variable)
        hi, _ = max_sum_cut(computation, variable)
        holds = lo <= k <= hi
        witness = (
            witness_cut_with_sum(computation, variable, k) if holds else None
        )
        stats = StatCounters("engine.theorem7-unit-step")
        stats.set("min_sum", lo)
        stats.set("max_sum", hi)
        sp.set(min_sum=lo, max_sum=hi, holds=holds)
        return DetectionResult(
            holds=holds,
            witness=witness,
            algorithm="theorem7-unit-step",
            stats=stats.as_dict(),
        )


def possibly_sum_eq_exact(
    computation: Computation,
    predicate: RelationalSumPredicate,
    use_slice: bool = True,
) -> DetectionResult:
    """Exact ``possibly(sum = k)`` for arbitrary increments.

    Message-free computations (the shape of the SUBSET-SUM reduction) use a
    sum-set dynamic program over per-process prefix sums — pseudo-polynomial
    in the value range, exponential in the worst case, as Theorem 2
    requires.  Computations with messages fall back to lattice enumeration,
    bounded by the predicate's slice box unless ``use_slice`` is False.
    """
    variable, k = predicate.variable, predicate.constant
    if predicate.relop is not Relop.EQ:
        raise UnsupportedPredicateError("exact engine handles '=' only")
    if not computation.messages:
        return _possibly_eq_sumset(computation, variable, k)
    if use_slice:
        from repro.slicing.dispatch import sliced_possibly_enumerate

        return sliced_possibly_enumerate(computation, predicate)
    return possibly_enumerate(computation, predicate)


def _possibly_eq_sumset(
    computation: Computation, variable: str, k: int
) -> DetectionResult:
    """Sum-set DP for message-free computations.

    With no messages, every combination of per-process prefixes is a
    consistent cut, so achievable sums are the sumset of the per-process
    prefix-value sets.  Tracks one witness prefix-choice per achievable sum.
    """
    with span("engine.sumset-dp", variable=variable, k=k) as sp:
        achievable: Dict[int, List[int]] = {0: []}
        for p in range(computation.num_processes):
            events = computation.events_of(p)
            options: List[Tuple[int, int]] = []  # (prefix length c_p, value)
            seen_values: Set[int] = set()
            for c in range(1, len(events) + 1):
                value = int(events[c - 1].value(variable, 0))
                options.append((c, value))
            next_achievable: Dict[int, List[int]] = {}
            for total, choice in achievable.items():
                for c, value in options:
                    key = total + value
                    if key not in next_achievable:
                        next_achievable[key] = choice + [c]
            achievable = next_achievable
        stats = StatCounters("engine.sumset-dp")
        stats.set("achievable_sums", len(achievable))
        sp.set(achievable_sums=len(achievable), holds=k in achievable)
        if k not in achievable:
            return DetectionResult(
                holds=False, algorithm="sumset-dp", stats=stats.as_dict()
            )
        witness = Cut(computation, achievable[k])
        return DetectionResult(
            holds=True, witness=witness, algorithm="sumset-dp",
            stats=stats.as_dict(),
        )


def possibly_sum(
    computation: Computation,
    predicate: RelationalSumPredicate,
    use_slice: bool = True,
) -> DetectionResult:
    """``possibly`` of a relational sum predicate — dispatching facade.

    Inequalities use min-cut; ``=`` uses Theorem 7 when the computation is
    unit-step and the exact engine otherwise; ``!=`` holds unless the sum is
    constant equal to k across all cuts.
    """
    relop = predicate.relop
    if relop in (Relop.LT, Relop.LE, Relop.GT, Relop.GE):
        return _possibly_inequality(computation, predicate)
    if relop is Relop.EQ:
        if predicate.unit_step(computation):
            return possibly_sum_eq_unit(computation, predicate)
        return possibly_sum_eq_exact(computation, predicate, use_slice)
    # relop is NE: some cut differs from k unless min == max == k.
    variable, k = predicate.variable, predicate.constant
    with span("engine.min-cut", relop="!=", variable=variable) as sp:
        lo, lo_cut = min_sum_cut(computation, variable)
        hi, hi_cut = max_sum_cut(computation, variable)
        holds = not (lo == hi == k)
        witness = None
        if holds:
            witness = lo_cut if lo != k else hi_cut
        stats = StatCounters("engine.min-cut")
        stats.inc("flow_runs", 2)
        stats.set("min_sum", lo)
        stats.set("max_sum", hi)
        sp.set(min_sum=lo, max_sum=hi, holds=holds)
        return DetectionResult(
            holds=holds,
            witness=witness,
            algorithm="min-cut",
            stats=stats.as_dict(),
        )


# ----------------------------------------------------------------------
# definitely
# ----------------------------------------------------------------------
def _definitely_by_avoidance(
    computation: Computation,
    predicate: RelationalSumPredicate,
    use_slice: bool = True,
) -> DetectionResult:
    """Exact ``definitely``: is there a run avoiding the predicate?

    Exponential in the worst case (it explores the complement sub-lattice);
    exact for every relop.  With ``use_slice`` the predicate's slice box
    lets the search skip evaluations outside the box — and when the slice
    is empty the predicate holds nowhere, so the avoidance is trivial.
    """
    with span("engine.avoidance-search", relop=predicate.relop.value) as sp:
        trivially_avoidable, bounds = False, None
        if use_slice:
            from repro.slicing.dispatch import avoidance_bounds

            trivially_avoidable, bounds = avoidance_bounds(
                computation, predicate
            )
        if trivially_avoidable:
            avoidable = True
        else:
            avoidable = reachable_avoiding(
                computation, predicate.evaluate, bounds=bounds
            )
        stats = StatCounters("engine.avoidance-search")
        stats.inc("searches")
        sp.set(holds=not avoidable, sliced=bounds is not None)
        return DetectionResult(
            holds=not avoidable,
            algorithm="avoidance-search",
            stats=stats.as_dict(),
        )


def definitely_sum_eq_unit(
    computation: Computation,
    predicate: RelationalSumPredicate,
    use_slice: bool = True,
) -> DetectionResult:
    """``definitely(sum = k)`` for ±1 computations (paper, Theorem 7(2)).

    Reduces to ``definitely(sum <= k) and definitely(sum >= k)``: every run
    then attains values on both sides of ``k`` and, moving by ±1, must pass
    through ``k`` itself.
    """
    _require_unit(computation, predicate)
    variable, k = predicate.variable, predicate.constant
    with span("engine.theorem7-unit-step", variable=variable, k=k) as sp:
        le = RelationalSumPredicate(variable, Relop.LE, k)
        ge = RelationalSumPredicate(variable, Relop.GE, k)
        d_le = _definitely_by_avoidance(computation, le, use_slice)
        if not d_le.holds:
            sp.set(holds=False, failed="definitely(sum <= k)")
            return DetectionResult(
                holds=False,
                algorithm="theorem7-unit-step",
                stats={"failed": "definitely(sum <= k)"},
            )
        d_ge = _definitely_by_avoidance(computation, ge, use_slice)
        sp.set(holds=d_ge.holds)
        return DetectionResult(
            holds=d_ge.holds,
            algorithm="theorem7-unit-step",
            stats={} if d_ge.holds else {"failed": "definitely(sum >= k)"},
        )


def definitely_sum(
    computation: Computation,
    predicate: RelationalSumPredicate,
    use_slice: bool = True,
) -> DetectionResult:
    """``definitely`` of a relational sum predicate — dispatching facade."""
    if predicate.relop is Relop.EQ and predicate.unit_step(computation):
        return definitely_sum_eq_unit(computation, predicate, use_slice)
    return _definitely_by_avoidance(computation, predicate, use_slice)


def _require_unit(
    computation: Computation, predicate: RelationalSumPredicate
) -> None:
    if not predicate.unit_step(computation):
        raise UnsupportedPredicateError(
            "the ±1 algorithms require every event to change "
            f"{predicate.variable!r} by at most one"
        )
