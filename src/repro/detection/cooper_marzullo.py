"""The Cooper–Marzullo baseline: detection by global-state enumeration.

Cooper and Marzullo's algorithm decides ``possibly(B)`` and
``definitely(B)`` for *arbitrary* global predicates by walking the lattice
of consistent cuts.  It is the paper's reference point: always correct,
exponential in the number of processes (the "combinatorial explosion" of the
introduction), and the yardstick every structured algorithm is measured
against in our benchmarks.

* ``possibly(B)``: breadth-first search over all consistent cuts, stopping
  at the first cut satisfying B.
* ``definitely(B)``: B definitely holds iff *no* run avoids it, i.e. iff the
  final cut is unreachable from the initial cut through cuts violating B
  (every run is a lattice path visiting one cut per level, and every lattice
  path is a run).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set, Tuple

from repro.computation import Computation, Cut, final_cut, initial_cut
from repro.detection.result import DetectionResult
from repro.obs import StatCounters, span
from repro.obs.progress import tracker
from repro.perf.causality import CausalityIndex
from repro.predicates.base import GlobalPredicate

__all__ = ["possibly_enumerate", "definitely_enumerate"]


def possibly_enumerate(
    computation: Computation, predicate: GlobalPredicate
) -> DetectionResult:
    """Decide ``possibly(B)`` by exhaustive lattice search (with early exit).

    The BFS tracks plain frontier tuples (successor expansion and
    ``seen``-set membership through the memoized causality index) and
    materializes each consistent cut once, via the computation's interner,
    only to evaluate the predicate on it.
    """
    with span("engine.cooper-marzullo", modality="possibly") as sp:
        index = CausalityIndex.of(computation)
        interner = index.interner
        start = initial_cut(computation).frontier
        explored = 0
        seen: Set[Tuple[int, ...]] = {start}
        queue: deque[Tuple[int, ...]] = deque([start])
        holds, witness = False, None
        trk = tracker("detect.cuts", check_every=64)
        while queue:
            frontier = queue.popleft()
            explored += 1
            trk.step()
            cut = interner.get(frontier)
            if predicate.evaluate(cut):
                holds, witness = True, cut
                break
            for nxt in index.successor_frontiers(frontier):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        stats = StatCounters("engine.cooper-marzullo")
        stats.inc("cuts_explored", explored)
        sp.set(cuts_explored=explored, holds=holds)
        index.maybe_flush_metrics()
        return DetectionResult(
            holds=holds,
            witness=witness,
            algorithm="cooper-marzullo",
            stats=stats.as_dict(),
        )


def definitely_enumerate(
    computation: Computation, predicate: GlobalPredicate
) -> DetectionResult:
    """Decide ``definitely(B)`` by searching for a run that avoids B.

    Explores the sub-lattice of cuts violating B; ``definitely(B)`` holds
    iff the final cut cannot be reached from the initial cut inside that
    sub-lattice (in particular it holds immediately when the initial or the
    final cut satisfies B, since every run contains both).
    """
    with span("engine.cooper-marzullo", modality="definitely") as sp:
        index = CausalityIndex.of(computation)
        interner = index.interner
        start = initial_cut(computation)
        goal_frontier = final_cut(computation).frontier

        def _result(
            holds: bool, explored: int, witness: Optional[Cut] = None
        ) -> DetectionResult:
            stats = StatCounters("engine.cooper-marzullo")
            stats.inc("cuts_explored", explored)
            sp.set(cuts_explored=explored, holds=holds)
            index.maybe_flush_metrics()
            return DetectionResult(
                holds=holds,
                witness=witness,
                algorithm="cooper-marzullo",
                stats=stats.as_dict(),
            )

        # Evaluate each endpoint exactly once; ``cuts_explored`` counts the
        # cuts actually examined (1 when the initial cut short-circuits).
        if predicate.evaluate(start):
            return _result(True, 1, start)
        if start.frontier == goal_frontier:
            # The lattice is a single cut that violates B: the unique run
            # avoids B.
            return _result(False, 1)
        goal = interner.get(goal_frontier)
        if predicate.evaluate(goal):
            return _result(True, 2, goal)
        explored = 2  # both endpoints evaluated; count each cut once
        seen: Set[Tuple[int, ...]] = {start.frontier}
        queue: deque[Tuple[int, ...]] = deque([start.frontier])
        trk = tracker("detect.cuts", check_every=64)
        while queue:
            frontier = queue.popleft()
            trk.step()
            for nxt in index.successor_frontiers(frontier):
                if nxt in seen:
                    continue
                # Mark satisfying cuts seen too: they are barriers either
                # way, and marking avoids re-evaluating B on every later
                # edge reaching them.
                seen.add(nxt)
                if nxt == goal_frontier:
                    # A full run avoiding B exists (goal is known false).
                    return _result(False, explored)
                explored += 1
                if predicate.evaluate(interner.get(nxt)):
                    continue
                queue.append(nxt)
        return _result(True, explored)
