"""The Cooper–Marzullo baseline: detection by global-state enumeration.

Cooper and Marzullo's algorithm decides ``possibly(B)`` and
``definitely(B)`` for *arbitrary* global predicates by walking the lattice
of consistent cuts.  It is the paper's reference point: always correct,
exponential in the number of processes (the "combinatorial explosion" of the
introduction), and the yardstick every structured algorithm is measured
against in our benchmarks.

* ``possibly(B)``: breadth-first search over all consistent cuts, stopping
  at the first cut satisfying B.
* ``definitely(B)``: B definitely holds iff *no* run avoids it, i.e. iff the
  final cut is unreachable from the initial cut through cuts violating B
  (every run is a lattice path visiting one cut per level, and every lattice
  path is a run).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

from repro.computation import Computation, Cut, final_cut, initial_cut
from repro.detection.result import DetectionResult
from repro.obs import StatCounters, span
from repro.predicates.base import GlobalPredicate

__all__ = ["possibly_enumerate", "definitely_enumerate"]


def possibly_enumerate(
    computation: Computation, predicate: GlobalPredicate
) -> DetectionResult:
    """Decide ``possibly(B)`` by exhaustive lattice search (with early exit)."""
    with span("engine.cooper-marzullo", modality="possibly") as sp:
        start = initial_cut(computation)
        explored = 0
        seen: Set[Cut] = {start}
        queue: deque[Cut] = deque([start])
        holds, witness = False, None
        while queue:
            cut = queue.popleft()
            explored += 1
            if predicate.evaluate(cut):
                holds, witness = True, cut
                break
            for nxt in cut.successors():
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        stats = StatCounters("engine.cooper-marzullo")
        stats.inc("cuts_explored", explored)
        sp.set(cuts_explored=explored, holds=holds)
        return DetectionResult(
            holds=holds,
            witness=witness,
            algorithm="cooper-marzullo",
            stats=stats.as_dict(),
        )


def definitely_enumerate(
    computation: Computation, predicate: GlobalPredicate
) -> DetectionResult:
    """Decide ``definitely(B)`` by searching for a run that avoids B.

    Explores the sub-lattice of cuts violating B; ``definitely(B)`` holds
    iff the final cut cannot be reached from the initial cut inside that
    sub-lattice (in particular it holds immediately when the initial or the
    final cut satisfies B, since every run contains both).
    """
    with span("engine.cooper-marzullo", modality="definitely") as sp:
        start = initial_cut(computation)
        goal = final_cut(computation)
        explored = 0

        def _result(
            holds: bool, explored: int, witness: Optional[Cut] = None
        ) -> DetectionResult:
            stats = StatCounters("engine.cooper-marzullo")
            stats.inc("cuts_explored", explored)
            sp.set(cuts_explored=explored, holds=holds)
            return DetectionResult(
                holds=holds,
                witness=witness,
                algorithm="cooper-marzullo",
                stats=stats.as_dict(),
            )

        if predicate.evaluate(start) or predicate.evaluate(goal):
            return _result(
                True, 2, start if predicate.evaluate(start) else goal
            )
        if start == goal:
            # The lattice is a single cut that violates B: the unique run
            # avoids B.
            return _result(False, 1)
        seen: Set[Cut] = {start}
        queue: deque[Cut] = deque([start])
        while queue:
            cut = queue.popleft()
            explored += 1
            for nxt in cut.successors():
                if nxt in seen or predicate.evaluate(nxt):
                    continue
                if nxt == goal:
                    # A full run avoiding B exists.
                    return _result(False, explored)
                seen.add(nxt)
                queue.append(nxt)
        return _result(True, explored)
