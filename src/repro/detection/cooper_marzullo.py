"""The Cooper–Marzullo baseline: detection by global-state enumeration.

Cooper and Marzullo's algorithm decides ``possibly(B)`` and
``definitely(B)`` for *arbitrary* global predicates by walking the lattice
of consistent cuts.  It is the paper's reference point: always correct,
exponential in the number of processes (the "combinatorial explosion" of the
introduction), and the yardstick every structured algorithm is measured
against in our benchmarks.

* ``possibly(B)``: breadth-first search over all consistent cuts, stopping
  at the first cut satisfying B.
* ``definitely(B)``: B definitely holds iff *no* run avoids it, i.e. iff the
  final cut is unreachable from the initial cut through cuts violating B
  (every run is a lattice path visiting one cut per level, and every lattice
  path is a run).

Both engines accept optional slice ``bounds`` — the ``(least, greatest)``
frontier box of a conjunctive over-approximation B' of B, computed by
:mod:`repro.slicing.dispatch`.  Soundness rests on ``B ⟹ B'``: every
B-satisfying cut lies inside the box, so ``possibly`` may search the box
alone, and ``definitely`` may treat any cut outside the box as violating B
without evaluating it — escaping *above* the box even proves an avoiding
run outright.  Skipped work is reported as the ``cuts_pruned`` stat.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set, Tuple

from repro.computation import Computation, Cut, final_cut, initial_cut
from repro.detection.result import DetectionResult
from repro.obs import StatCounters, span
from repro.obs.progress import tracker
from repro.perf.causality import CausalityIndex
from repro.predicates.base import GlobalPredicate

__all__ = ["possibly_enumerate", "definitely_enumerate"]

#: A slice box: (least, greatest) frontier tuples of the over-approximation.
Bounds = Tuple[Tuple[int, ...], Tuple[int, ...]]


def _exceeds(frontier: Tuple[int, ...], greatest: Tuple[int, ...]) -> bool:
    """Is the cut strictly above the box on some process?"""
    return any(c > g for c, g in zip(frontier, greatest))


def _below(frontier: Tuple[int, ...], least: Tuple[int, ...]) -> bool:
    """Is the cut strictly below the box on some process?"""
    return any(c < l for c, l in zip(frontier, least))


def possibly_enumerate(
    computation: Computation,
    predicate: GlobalPredicate,
    bounds: Optional[Bounds] = None,
) -> DetectionResult:
    """Decide ``possibly(B)`` by exhaustive lattice search (with early exit).

    The BFS tracks plain frontier tuples (successor expansion and
    ``seen``-set membership through the memoized causality index) and
    materializes each consistent cut once, via the computation's interner,
    only to evaluate the predicate on it.

    With ``bounds`` the search starts at the box's least cut and never
    expands past its greatest cut: every satisfying cut lies in the box,
    and every box cut is reachable from the least one through box cuts,
    so the restriction is complete.  The witness is still a minimum-size
    satisfying cut (the box BFS runs in level order too).
    """
    with span(
        "engine.cooper-marzullo",
        modality="possibly",
        sliced=bounds is not None,
    ) as sp:
        index = CausalityIndex.of(computation)
        interner = index.interner
        if bounds is None:
            start = initial_cut(computation).frontier
            greatest = None
        else:
            start, greatest = bounds
        explored = 0
        pruned = 0
        seen: Set[Tuple[int, ...]] = {start}
        queue: deque[Tuple[int, ...]] = deque([start])
        holds, witness = False, None
        trk = tracker("detect.cuts", check_every=64)
        # Wave-batched BFS: snapshot the queue, expand every frontier of
        # the wave in one vectorized successor call (side-effect-free),
        # then replay the items in the original FIFO order — evaluate,
        # stop at the first hit *before* touching that item's children —
        # so cuts_explored/cuts_pruned equal the one-at-a-time loop's.
        while queue and not holds:
            wave = list(queue)
            queue.clear()
            expansions = index.successor_frontiers_batch(wave)
            for frontier, successors in zip(wave, expansions):
                explored += 1
                trk.step()
                cut = interner.get(frontier)
                if predicate.evaluate(cut):
                    holds, witness = True, cut
                    break
                for nxt in successors:
                    if nxt in seen:
                        continue
                    if greatest is not None and _exceeds(nxt, greatest):
                        pruned += 1
                        continue
                    seen.add(nxt)
                    queue.append(nxt)
        stats = StatCounters("engine.cooper-marzullo")
        stats.inc("cuts_explored", explored)
        if bounds is not None:
            stats.inc("cuts_pruned", pruned)
        sp.set(cuts_explored=explored, holds=holds)
        index.maybe_flush_metrics()
        return DetectionResult(
            holds=holds,
            witness=witness,
            algorithm="cooper-marzullo",
            stats=stats.as_dict(),
        )


def definitely_enumerate(
    computation: Computation,
    predicate: GlobalPredicate,
    bounds: Optional[Bounds] = None,
) -> DetectionResult:
    """Decide ``definitely(B)`` by searching for a run that avoids B.

    Explores the sub-lattice of cuts violating B; ``definitely(B)`` holds
    iff the final cut cannot be reached from the initial cut inside that
    sub-lattice (in particular it holds immediately when the initial or the
    final cut satisfies B, since every run contains both).

    With ``bounds`` the search knows every B-satisfying cut lies in the
    box: cuts below the box are enqueued without evaluating B
    (``cuts_pruned``), and the first edge climbing *above* the box proves
    an avoiding run — every extension of that cut stays above the box and
    hence violates B — so the answer is False on the spot.
    """
    with span(
        "engine.cooper-marzullo",
        modality="definitely",
        sliced=bounds is not None,
    ) as sp:
        index = CausalityIndex.of(computation)
        interner = index.interner
        start = initial_cut(computation)
        goal_frontier = final_cut(computation).frontier
        least, greatest = bounds if bounds is not None else (None, None)
        pruned = 0

        def _result(
            holds: bool, explored: int, witness: Optional[Cut] = None
        ) -> DetectionResult:
            stats = StatCounters("engine.cooper-marzullo")
            stats.inc("cuts_explored", explored)
            if bounds is not None:
                stats.inc("cuts_pruned", pruned)
            sp.set(cuts_explored=explored, holds=holds)
            index.maybe_flush_metrics()
            return DetectionResult(
                holds=holds,
                witness=witness,
                algorithm="cooper-marzullo",
                stats=stats.as_dict(),
            )

        def _known_false(frontier: Tuple[int, ...]) -> bool:
            """Outside the box ⟹ violates B, no evaluation needed."""
            if least is None:
                return False
            return _below(frontier, least) or _exceeds(frontier, greatest)

        # Evaluate each endpoint exactly once; ``cuts_explored`` counts the
        # cuts actually examined (1 when the initial cut short-circuits).
        if _known_false(start.frontier):
            pruned += 1
        elif predicate.evaluate(start):
            return _result(True, 1, start)
        if start.frontier == goal_frontier:
            # The lattice is a single cut that violates B: the unique run
            # avoids B.
            return _result(False, 1)
        if _known_false(goal_frontier):
            pruned += 1
        else:
            goal = interner.get(goal_frontier)
            if predicate.evaluate(goal):
                return _result(True, 2, goal)
        explored = 2  # both endpoints examined; count each cut once
        seen: Set[Tuple[int, ...]] = {start.frontier}
        queue: deque[Tuple[int, ...]] = deque([start.frontier])
        trk = tracker("detect.cuts", check_every=64)
        # Same wave-batching as the possibly search: expansion of a whole
        # wave is precomputed in one vectorized call, then items replay in
        # FIFO order with the original early returns intact.
        while queue:
            wave = list(queue)
            queue.clear()
            expansions = index.successor_frontiers_batch(wave)
            for frontier, successors in zip(wave, expansions):
                trk.step()
                for nxt in successors:
                    if nxt in seen:
                        continue
                    # Mark satisfying cuts seen too: they are barriers
                    # either way, and marking avoids re-evaluating B on
                    # every later edge reaching them.
                    seen.add(nxt)
                    if nxt == goal_frontier:
                        # A full run avoiding B exists (goal is known
                        # false).
                        return _result(False, explored)
                    if greatest is not None and _exceeds(nxt, greatest):
                        # Escaped above the box: this cut and every cut of
                        # any extension stays above it, so all of them
                        # violate B — the current avoiding path completes
                        # into a full run.
                        pruned += 1
                        return _result(False, explored)
                    explored += 1
                    if least is not None and _below(nxt, least):
                        pruned += 1  # below the box: B is false for free
                        queue.append(nxt)
                        continue
                    if predicate.evaluate(interner.get(nxt)):
                        continue
                    queue.append(nxt)
        return _result(True, explored)
