"""The Cooper–Marzullo baseline: detection by global-state enumeration.

Cooper and Marzullo's algorithm decides ``possibly(B)`` and
``definitely(B)`` for *arbitrary* global predicates by walking the lattice
of consistent cuts.  It is the paper's reference point: always correct,
exponential in the number of processes (the "combinatorial explosion" of the
introduction), and the yardstick every structured algorithm is measured
against in our benchmarks.

* ``possibly(B)``: breadth-first search over all consistent cuts, stopping
  at the first cut satisfying B.
* ``definitely(B)``: B definitely holds iff *no* run avoids it, i.e. iff the
  final cut is unreachable from the initial cut through cuts violating B
  (every run is a lattice path visiting one cut per level, and every lattice
  path is a run).
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

from repro.computation import Computation, Cut, final_cut, initial_cut
from repro.detection.result import DetectionResult
from repro.predicates.base import GlobalPredicate

__all__ = ["possibly_enumerate", "definitely_enumerate"]


def possibly_enumerate(
    computation: Computation, predicate: GlobalPredicate
) -> DetectionResult:
    """Decide ``possibly(B)`` by exhaustive lattice search (with early exit)."""
    start = initial_cut(computation)
    explored = 0
    seen: Set[Cut] = {start}
    queue: deque[Cut] = deque([start])
    while queue:
        cut = queue.popleft()
        explored += 1
        if predicate.evaluate(cut):
            return DetectionResult(
                holds=True,
                witness=cut,
                algorithm="cooper-marzullo",
                stats={"cuts_explored": explored},
            )
        for nxt in cut.successors():
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return DetectionResult(
        holds=False,
        algorithm="cooper-marzullo",
        stats={"cuts_explored": explored},
    )


def definitely_enumerate(
    computation: Computation, predicate: GlobalPredicate
) -> DetectionResult:
    """Decide ``definitely(B)`` by searching for a run that avoids B.

    Explores the sub-lattice of cuts violating B; ``definitely(B)`` holds
    iff the final cut cannot be reached from the initial cut inside that
    sub-lattice (in particular it holds immediately when the initial or the
    final cut satisfies B, since every run contains both).
    """
    start = initial_cut(computation)
    goal = final_cut(computation)
    explored = 0
    if predicate.evaluate(start) or predicate.evaluate(goal):
        return DetectionResult(
            holds=True,
            witness=start if predicate.evaluate(start) else goal,
            algorithm="cooper-marzullo",
            stats={"cuts_explored": 2},
        )
    if start == goal:
        # The lattice is a single cut that violates B: the unique run
        # avoids B.
        return DetectionResult(
            holds=False,
            algorithm="cooper-marzullo",
            stats={"cuts_explored": 1},
        )
    seen: Set[Cut] = {start}
    queue: deque[Cut] = deque([start])
    while queue:
        cut = queue.popleft()
        explored += 1
        for nxt in cut.successors():
            if nxt in seen or predicate.evaluate(nxt):
                continue
            if nxt == goal:
                # A full run avoiding B exists.
                return DetectionResult(
                    holds=False,
                    algorithm="cooper-marzullo",
                    stats={"cuts_explored": explored},
                )
            seen.add(nxt)
            queue.append(nxt)
    return DetectionResult(
        holds=True,
        algorithm="cooper-marzullo",
        stats={"cuts_explored": explored},
    )
