"""One-call detection facade.

:func:`possibly` and :func:`definitely` accept any
:class:`~repro.predicates.base.GlobalPredicate` and dispatch to the fastest
sound engine for its structure:

===========================  =============================================
predicate class              possibly engine
===========================  =============================================
ConjunctivePredicate         Garg–Waldecker CPDHB scan (polynomial)
CNFPredicate, 1-CNF          CPDHB scan via conjunctive view (polynomial)
CNFPredicate, singular       CPDSC special case when receive-/send-ordered,
                             else chain-choice enumeration (Section 3.3)
RelationalSumPredicate       min-cut / Theorem 7 / exact engines (Sec. 4)
SymmetricPredicate           ±1 count algorithm (Section 4.3, polynomial)
OrPredicate                  distribute possibly over the disjuncts
anything else                slice-bounded Cooper–Marzullo enumeration
===========================  =============================================

``definitely`` uses the Theorem 7(2) decomposition for unit-step sum
equality and symmetric singletons, and the exact avoidance search
otherwise.  :func:`detect` returns the full :class:`DetectionResult` with
the witness cut and algorithm statistics.

Every enumeration-based path is **slice-first** by default: the predicate's
conjunctive over-approximation (see :mod:`repro.slicing.dispatch`) bounds
the search to the slice sublattice, falling back to the unsliced engine
when no useful approximation exists.  Pass ``slice=False`` to opt out —
verdicts and witness guarantees are identical either way.

Opaque predicates (``FunctionPredicate``, custom ``evaluate`` overrides)
are **classified first** by default (``infer=True``): the static
classifier of :mod:`repro.analysis.classify` recovers the predicate-class
structure from the callable's source, differentially validates the
rewrite, and dispatch routes through the fast engine of the inferred
class (``algorithm`` prefixed ``classify:``).  Certified-monotone bodies
go to the O(n) stable-predicate engine.  On ``Unclassifiable`` the
enumeration fallback runs unchanged; pass ``infer=False`` to opt out.
"""

from __future__ import annotations

from typing import Optional

from repro.computation import Computation, Cut
from repro.obs import STATE, registry, span
from repro.detection.cooper_marzullo import (
    definitely_enumerate,
    possibly_enumerate,
)
from repro.detection.definitely_conjunctive import definitely_conjunctive
from repro.detection.garg_waldecker import detect_conjunctive
from repro.detection.relational_sum import definitely_sum, possibly_sum
from repro.detection.result import DetectionResult
from repro.detection.singular_cnf import detect_singular
from repro.detection.stable import detect_stable
from repro.detection.stoller_schneider import detect_cnf_by_literal_choice
from repro.detection.symmetric_detect import (
    definitely_symmetric,
    possibly_symmetric,
)
from repro.predicates.base import (
    AndPredicate,
    ConstantPredicate,
    GlobalPredicate,
    NotPredicate,
    OrPredicate,
)
from repro.predicates.boolean import Clause, CNFPredicate
from repro.predicates.channel import InFlightPredicate
from repro.predicates.conjunctive import (
    ConjunctivePredicate,
    conjunctive_from_cnf,
)
from repro.predicates.inequity import InequityPredicate
from repro.predicates.local import LocalPredicate
from repro.predicates.modalities import Modality
from repro.predicates.relational import RelationalSumPredicate
from repro.predicates.symmetric import SymmetricPredicate

__all__ = ["possibly", "definitely", "detect"]

#: Predicate classes dispatch already understands structurally; anything
#: else is *opaque* and eligible for static classification.
_STRUCTURED = (
    AndPredicate,
    CNFPredicate,
    Clause,
    ConjunctivePredicate,
    ConstantPredicate,
    InFlightPredicate,
    InequityPredicate,
    LocalPredicate,
    NotPredicate,
    OrPredicate,
    RelationalSumPredicate,
    SymmetricPredicate,
)


def _is_opaque(predicate: GlobalPredicate) -> bool:
    return not isinstance(predicate, _STRUCTURED)


def detect(
    computation: Computation,
    predicate: GlobalPredicate,
    modality: Modality = Modality.POSSIBLY,
    parallel: Optional[int] = None,
    slice: bool = True,
    engine: str = "auto",
    infer: bool = True,
) -> DetectionResult:
    """Full detection result for the given predicate and modality.

    ``parallel`` fans combination-sweep engines (the singular k-CNF
    process-/chain-choice drivers) across a worker pool, and sets the
    thread count of the work-optimal engine's shared-state rounds;
    verdicts and witnesses are identical to the serial runs.  Engines
    without internal parallelism ignore it.

    ``slice`` (default True) lets enumeration-based paths restrict their
    search to the sublattice of the predicate's conjunctive
    over-approximation; pass False to force the unsliced engines.
    Verdicts are identical either way.

    ``engine`` overrides dispatch: ``"auto"`` (default) picks by
    predicate structure; ``"work-optimal"`` forces the round-based
    engine of :mod:`repro.detection.work_optimal` for conjunctive-viewable
    ``possibly`` queries (``slice=True`` jump-starts its chain cursors at
    the slice box).

    ``infer`` (default True) lets the static classifier
    (:mod:`repro.analysis.classify`) recover class structure from opaque
    predicates — ``FunctionPredicate`` bodies and custom ``evaluate``
    overrides — and dispatch through the inferred fast engine; the
    certificate is differentially validated before it is trusted, and
    ``Unclassifiable`` bodies fall back to the enumeration engines
    exactly as if ``infer=False``.

    When observability is enabled (:mod:`repro.obs`) every query opens a
    root span ``detect.query`` recording the modality, the predicate
    class, and — once dispatch has chosen — the engine that answered.
    """
    if engine not in ("auto", "work-optimal"):
        raise ValueError(f"unknown engine {engine!r}")
    with span(
        "detect.query",
        modality=modality.value,
        predicate=type(predicate).__name__,
    ) as root:
        result = None
        if engine == "work-optimal":
            result = _work_optimal(
                computation, predicate, modality, parallel, slice, infer
            )
        else:
            if infer and _is_opaque(predicate):
                result = _inferred(
                    computation, predicate, modality, parallel, slice
                )
            if result is None and modality is Modality.POSSIBLY:
                result = _possibly(
                    computation,
                    predicate,
                    parallel=parallel,
                    use_slice=slice,
                    infer=infer,
                )
            elif result is None:
                result = _definitely(
                    computation, predicate, use_slice=slice, infer=infer
                )
        root.set(engine=result.algorithm, holds=result.holds)
        if STATE.enabled:
            registry().counter("detect.queries").inc()
            registry().counter(f"detect.engine.{result.algorithm}").inc()
        return result


def possibly(
    computation: Computation,
    predicate: GlobalPredicate,
    slice: bool = True,
    infer: bool = True,
) -> bool:
    """Does some consistent cut of the computation satisfy the predicate?"""
    return detect(
        computation, predicate, Modality.POSSIBLY, slice=slice, infer=infer
    ).holds


def definitely(
    computation: Computation,
    predicate: GlobalPredicate,
    slice: bool = True,
    infer: bool = True,
) -> bool:
    """Does every run of the computation pass through a satisfying cut?"""
    return detect(
        computation, predicate, Modality.DEFINITELY, slice=slice, infer=infer
    ).holds


def _inferred(
    computation: Computation,
    predicate: GlobalPredicate,
    modality: Modality,
    parallel: Optional[int],
    use_slice: bool,
) -> Optional[DetectionResult]:
    """Classify an opaque predicate and dispatch its certificate.

    Returns None when the predicate is unclassifiable, validation
    rejected the certificate, or only a conjunctive over-approximation
    was recovered (the slice-first enumeration path picks that up on its
    own) — the caller then falls back to structural dispatch unchanged.
    """
    from repro.analysis.classify import classification_for

    with span(
        "engine.classify", predicate=type(predicate).__name__
    ) as sp:
        certificate = classification_for(predicate, computation)
        if certificate is None:
            sp.set(outcome="unclassifiable")
            return None
        if certificate.monotone:
            # Syntactic monotonicity proof: the predicate is stable, so
            # both modalities are decided at the final cut in O(n).
            sp.set(outcome="monotone")
            result = detect_stable(computation, predicate)
        elif certificate.rewrite is not None:
            sp.set(
                outcome="rewrite",
                target=type(certificate.rewrite).__name__,
            )
            if modality is Modality.POSSIBLY:
                result = _possibly(
                    computation,
                    certificate.rewrite,
                    parallel=parallel,
                    use_slice=use_slice,
                )
            else:
                result = _definitely(
                    computation, certificate.rewrite, use_slice=use_slice
                )
        else:
            sp.set(outcome="approximation-only")
            return None
        return DetectionResult(
            holds=result.holds,
            witness=result.witness,
            algorithm="classify:" + result.algorithm,
            stats=result.stats,
        )


def _work_optimal(
    computation: Computation,
    predicate: GlobalPredicate,
    modality: Modality,
    parallel: Optional[int],
    use_slice: bool,
    infer: bool = True,
) -> DetectionResult:
    """Forced ``engine="work-optimal"`` dispatch.

    The engine decides ``possibly`` of conjunctive-viewable predicates
    (conjunctive, local, 1-CNF singular) — including, with ``infer``,
    opaque predicates whose certified rewrite is conjunctive-viewable;
    anything else is a structural mismatch the caller asked for
    explicitly, so it raises instead of silently falling back.
    """
    from repro.detection.work_optimal import detect_work_optimal
    from repro.predicates.errors import UnsupportedPredicateError

    if modality is not Modality.POSSIBLY:
        raise UnsupportedPredicateError(
            "the work-optimal engine decides possibly only"
        )
    if isinstance(predicate, ConjunctivePredicate):
        conj = predicate
    elif isinstance(predicate, LocalPredicate):
        conj = ConjunctivePredicate([predicate])
    elif (
        isinstance(predicate, CNFPredicate)
        and predicate.is_conjunctive()
        and predicate.is_singular()
    ):
        conj = conjunctive_from_cnf(predicate)
    else:
        conj = None
        if infer and _is_opaque(predicate):
            from repro.analysis.classify import classification_for

            certificate = classification_for(predicate, computation)
            if certificate is not None and certificate.conjunctive_view:
                rewrite = certificate.rewrite
                if isinstance(rewrite, ConjunctivePredicate):
                    conj = rewrite
                elif isinstance(rewrite, LocalPredicate):
                    conj = ConjunctivePredicate([rewrite])
                elif isinstance(rewrite, CNFPredicate):
                    conj = conjunctive_from_cnf(rewrite)
        if conj is None:
            raise UnsupportedPredicateError(
                "the work-optimal engine requires a conjunctive-viewable "
                "predicate"
            )
    bounds = None
    if use_slice:
        from repro.slicing.dispatch import slice_info

        bounds = slice_info(computation, conj).bounds
    return detect_work_optimal(
        computation, conj, parallel=parallel, bounds=bounds
    )


def _possibly(
    computation: Computation,
    predicate: GlobalPredicate,
    parallel: Optional[int] = None,
    use_slice: bool = True,
    infer: bool = True,
) -> DetectionResult:
    if isinstance(predicate, ConjunctivePredicate):
        return detect_conjunctive(computation, predicate)
    if isinstance(predicate, LocalPredicate):
        return detect_conjunctive(
            computation, ConjunctivePredicate([predicate])
        )
    if isinstance(predicate, CNFPredicate):
        if predicate.is_conjunctive() and predicate.is_singular():
            return detect_conjunctive(
                computation, conjunctive_from_cnf(predicate)
            )
        if predicate.is_singular():
            return detect_singular(
                computation, predicate, strategy="auto", parallel=parallel
            )
        # Non-singular CNF: the Stoller–Schneider decomposition into
        # conjunctive sub-problems (exponential in clauses, but each
        # sub-problem is a linear scan — far cheaper than the lattice).
        return detect_cnf_by_literal_choice(computation, predicate)
    if isinstance(predicate, RelationalSumPredicate):
        return possibly_sum(computation, predicate, use_slice=use_slice)
    if isinstance(predicate, SymmetricPredicate):
        return possibly_symmetric(computation, predicate)
    if isinstance(predicate, OrPredicate):
        # possibly distributes over disjunction (paper, Section 4.3).
        with span("engine.disjunction", parts=len(predicate.parts)):
            explored = 0
            for part in predicate.parts:
                result = _possibly(
                    computation,
                    part,
                    parallel=parallel,
                    use_slice=use_slice,
                    infer=infer,
                )
                explored += int(result.stats.get("cuts_explored", 0))
                if result.holds:
                    return DetectionResult(
                        holds=True,
                        witness=result.witness,
                        algorithm="disjunction:" + result.algorithm,
                        stats=result.stats,
                    )
            return DetectionResult(
                holds=False,
                algorithm="disjunction",
                stats={"cuts_explored": explored},
            )
    if use_slice:
        from repro.slicing.dispatch import sliced_possibly_enumerate

        return sliced_possibly_enumerate(computation, predicate, infer=infer)
    return possibly_enumerate(computation, predicate)


def _definitely(
    computation: Computation,
    predicate: GlobalPredicate,
    use_slice: bool = True,
    infer: bool = True,
) -> DetectionResult:
    if isinstance(predicate, ConjunctivePredicate):
        return definitely_conjunctive(
            computation, predicate, use_slice=use_slice
        )
    if isinstance(predicate, CNFPredicate):
        if predicate.is_conjunctive() and predicate.is_singular():
            return definitely_conjunctive(
                computation,
                conjunctive_from_cnf(predicate),
                use_slice=use_slice,
            )
        if use_slice:
            from repro.slicing.dispatch import sliced_definitely_enumerate

            return sliced_definitely_enumerate(
                computation, predicate, infer=infer
            )
        return definitely_enumerate(computation, predicate)
    if isinstance(predicate, RelationalSumPredicate):
        return definitely_sum(computation, predicate, use_slice=use_slice)
    if isinstance(predicate, SymmetricPredicate):
        return definitely_symmetric(
            computation, predicate, use_slice=use_slice
        )
    if use_slice:
        from repro.slicing.dispatch import sliced_definitely_enumerate

        return sliced_definitely_enumerate(computation, predicate, infer=infer)
    return definitely_enumerate(computation, predicate)
