"""Detection of singular k-CNF predicates (paper, Section 3).

A singular k-CNF predicate assigns each clause a *group* of processes, and
no process serves two clauses.  By Observation 1, ``possibly(B)`` holds iff
there are pairwise-consistent *clause-true events*, one per group (an event
is clause-true when it makes some literal of its process true).

The general problem is NP-complete (Theorem 1; see
:mod:`repro.reductions.sat_to_detection`), so this module offers the
paper's full algorithm menu:

* :func:`detect_special_case` — polynomial when the computation is
  receive-ordered or send-ordered with respect to the groups (Section 3.2,
  via the CPDSC meta-process scan);
* :func:`detect_by_process_choice` — Section 3.3, first algorithm: try all
  ``prod |G_j|`` choices of one process per group and run the polynomial
  CPDHB scan on each (at most ``k^m`` invocations);
* :func:`detect_by_chain_choice` — Section 3.3, second algorithm: cover the
  true events of each group with a *minimum* set of causal chains and try
  all chain combinations (at most ``prod c_j`` invocations with
  ``c_j <= |G_j|`` — an exponential reduction whenever chains are fewer
  than processes);
* :func:`detect_singular` — facade choosing the cheapest applicable engine.

All engines return a witness cut when the predicate possibly holds.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.computation import (
    Computation,
    Cut,
    least_consistent_cut,
    minimum_chain_cover,
)
from repro.detection.cooper_marzullo import possibly_enumerate
from repro.detection.cpdsc import (
    detect_receive_ordered,
    detect_send_ordered,
    is_receive_ordered,
    is_send_ordered,
)
from repro.detection.garg_waldecker import SelectionScan
from repro.detection.result import DetectionResult
from repro.events import EventId
from repro.obs import StatCounters, span
from repro.predicates.boolean import Clause, CNFPredicate
from repro.predicates.errors import UnsupportedPredicateError

__all__ = [
    "clause_true_events",
    "clause_true_events_on",
    "detect_special_case",
    "detect_by_process_choice",
    "detect_by_chain_choice",
    "detect_singular",
]


def clause_true_events_on(
    computation: Computation, cl: Clause, process: int
) -> List[EventId]:
    """Events of ``process`` making some literal of the clause true."""
    literals = [lit for lit in cl.literals if lit.process == process]
    if not literals:
        return []
    result: List[EventId] = []
    for event in computation.events_of(process):
        if any(lit.holds_after(event) for lit in literals):
            result.append(event.event_id)
    return result


def clause_true_events(computation: Computation, cl: Clause) -> List[EventId]:
    """All events (across the clause's group) making the clause true."""
    result: List[EventId] = []
    for process in sorted(cl.processes()):
        result.extend(clause_true_events_on(computation, cl, process))
    return result


def _groups(predicate: CNFPredicate) -> List[List[int]]:
    predicate.require_singular()
    return [sorted(cl.processes()) for cl in predicate.clauses]


def _witness(
    computation: Computation,
    predicate: CNFPredicate,
    selection: Sequence[EventId],
) -> Cut:
    witness = least_consistent_cut(computation, selection)
    assert witness is not None, "pairwise-consistent selection must admit a cut"
    assert predicate.evaluate(witness), "witness cut must satisfy the predicate"
    return witness


def detect_special_case(
    computation: Computation, predicate: CNFPredicate
) -> DetectionResult:
    """Polynomial detection for receive-ordered / send-ordered computations.

    Raises:
        UnsupportedPredicateError: If the computation is neither
            receive-ordered nor send-ordered with respect to the clause
            groups — use one of the general engines then.
    """
    groups = _groups(predicate)
    with span("engine.cpdsc", groups=len(groups)) as sp:
        trues = [
            clause_true_events(computation, cl) for cl in predicate.clauses
        ]
        if is_receive_ordered(computation, groups):
            selection = detect_receive_ordered(computation, groups, trues)
            variant = "receive-ordered"
        elif is_send_ordered(computation, groups):
            selection = detect_send_ordered(computation, groups, trues)
            variant = "send-ordered"
        else:
            raise UnsupportedPredicateError(
                "computation is neither receive-ordered nor send-ordered "
                "with respect to the clause groups; use "
                "detect_by_chain_choice"
            )
        stats = StatCounters("engine.cpdsc")
        stats.set("variant", variant)
        stats.inc("scans")
        sp.set(variant=variant, holds=selection is not None)
        if selection is None:
            return DetectionResult(
                holds=False, algorithm="cpdsc", stats=stats.as_dict()
            )
        return DetectionResult(
            holds=True,
            witness=_witness(computation, predicate, selection),
            algorithm="cpdsc",
            stats=stats.as_dict(),
        )


def detect_by_process_choice(
    computation: Computation, predicate: CNFPredicate
) -> DetectionResult:
    """Try every one-process-per-group choice; CPDHB on each (Section 3.3a)."""
    groups = _groups(predicate)
    per_group_chains: List[List[List[EventId]]] = []
    for cl, group in zip(predicate.clauses, groups):
        per_group_chains.append(
            [clause_true_events_on(computation, cl, p) for p in group]
        )
    return _detect_by_combinations(
        computation, predicate, per_group_chains, algorithm="process-choice"
    )


def detect_by_chain_choice(
    computation: Computation, predicate: CNFPredicate
) -> DetectionResult:
    """Try every one-chain-per-group choice; CPDHB on each (Section 3.3b).

    Uses a minimum chain cover of each group's true events, so the number of
    CPDHB invocations is ``prod c_j`` where ``c_j`` is the width (largest
    antichain) of group j's true events — never more than the process-choice
    engine, exponentially fewer when groups communicate internally.
    """
    groups = _groups(predicate)
    per_group_chains: List[List[List[EventId]]] = []
    for cl in predicate.clauses:
        trues = clause_true_events(computation, cl)
        chains = minimum_chain_cover(computation, trues)
        per_group_chains.append([list(chain) for chain in chains])
    return _detect_by_combinations(
        computation, predicate, per_group_chains, algorithm="chain-choice"
    )


def _detect_by_combinations(
    computation: Computation,
    predicate: CNFPredicate,
    per_group_chains: Sequence[Sequence[List[EventId]]],
    algorithm: str,
) -> DetectionResult:
    """Shared driver: CPDHB over every combination of one chain per group."""
    total = math.prod(len(chains) for chains in per_group_chains)
    with span(
        f"engine.{algorithm}",
        groups=len(per_group_chains),
        combinations=total,
    ) as sp:
        stats = StatCounters(f"engine.{algorithm}")
        stats.set("combinations", total)
        stats.inc("invocations", 0)
        stats.inc("advances", 0)
        if total == 0:
            # Some group has no true event at all: the clause can never hold.
            return DetectionResult(
                holds=False, algorithm=algorithm, stats=stats.as_dict()
            )
        for combo in itertools.product(*per_group_chains):
            stats.inc("invocations")
            with span("scan.cpdhb") as scan_sp:
                scan = SelectionScan(computation, list(combo))
                selection = scan.run()
                scan_sp.set(advances=scan.advances)
            stats.inc("advances", scan.advances)
            if selection is not None:
                sp.set(holds=True)
                return DetectionResult(
                    holds=True,
                    witness=_witness(computation, predicate, selection),
                    algorithm=algorithm,
                    stats=stats.as_dict(),
                )
        sp.set(holds=False)
        return DetectionResult(
            holds=False, algorithm=algorithm, stats=stats.as_dict()
        )


def detect_singular(
    computation: Computation,
    predicate: CNFPredicate,
    strategy: str = "auto",
) -> DetectionResult:
    """Facade for singular k-CNF ``possibly`` detection.

    Strategies: ``"auto"`` (polynomial special case when applicable, else
    chain-choice), ``"special"``, ``"process-choice"``, ``"chain-choice"``,
    ``"enumerate"`` (Cooper–Marzullo baseline).
    """
    if strategy == "auto":
        groups = _groups(predicate)
        with span("dispatch.singular", strategy="auto", groups=len(groups)):
            if is_receive_ordered(computation, groups) or is_send_ordered(
                computation, groups
            ):
                return detect_special_case(computation, predicate)
            return detect_by_chain_choice(computation, predicate)
    if strategy == "special":
        return detect_special_case(computation, predicate)
    if strategy == "process-choice":
        return detect_by_process_choice(computation, predicate)
    if strategy == "chain-choice":
        return detect_by_chain_choice(computation, predicate)
    if strategy == "enumerate":
        return possibly_enumerate(computation, predicate)
    raise ValueError(f"unknown strategy {strategy!r}")
