"""Detection of singular k-CNF predicates (paper, Section 3).

A singular k-CNF predicate assigns each clause a *group* of processes, and
no process serves two clauses.  By Observation 1, ``possibly(B)`` holds iff
there are pairwise-consistent *clause-true events*, one per group (an event
is clause-true when it makes some literal of its process true).

The general problem is NP-complete (Theorem 1; see
:mod:`repro.reductions.sat_to_detection`), so this module offers the
paper's full algorithm menu:

* :func:`detect_special_case` — polynomial when the computation is
  receive-ordered or send-ordered with respect to the groups (Section 3.2,
  via the CPDSC meta-process scan);
* :func:`detect_by_process_choice` — Section 3.3, first algorithm: try all
  ``prod |G_j|`` choices of one process per group and run the polynomial
  CPDHB scan on each (at most ``k^m`` invocations);
* :func:`detect_by_chain_choice` — Section 3.3, second algorithm: cover the
  true events of each group with a *minimum* set of causal chains and try
  all chain combinations (at most ``prod c_j`` invocations with
  ``c_j <= |G_j|`` — an exponential reduction whenever chains are fewer
  than processes);
* :func:`detect_singular` — facade choosing the cheapest applicable engine.

All engines return a witness cut when the predicate possibly holds.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.computation import Computation, Cut, least_consistent_cut
from repro.detection.cooper_marzullo import possibly_enumerate
from repro.detection.cpdsc import (
    detect_receive_ordered,
    detect_send_ordered,
)
from repro.detection.garg_waldecker import SelectionScan
from repro.detection.result import DetectionResult
from repro.detection.work_optimal import (
    VEC_CHUNK,
    CombinationSweep,
    use_batched_sweep,
)
from repro.events import EventId
from repro.obs import StatCounters, span
from repro.obs.progress import tracker
from repro.perf.causality import CausalityIndex
from repro.perf.parallel import resolve_workers, run_combination_search
from repro.predicates.boolean import Clause, CNFPredicate
from repro.predicates.errors import UnsupportedPredicateError

__all__ = [
    "clause_true_events",
    "clause_true_events_on",
    "detect_special_case",
    "detect_by_process_choice",
    "detect_by_chain_choice",
    "detect_singular",
]


def clause_true_events_on(
    computation: Computation, cl: Clause, process: int
) -> List[EventId]:
    """Events of ``process`` making some literal of the clause true.

    Memoized per (clause, process) on the computation's causality index.
    """
    return list(CausalityIndex.of(computation).clause_true_events_on(cl, process))


def clause_true_events(computation: Computation, cl: Clause) -> List[EventId]:
    """All events (across the clause's group) making the clause true.

    Memoized per clause on the computation's causality index.
    """
    return list(CausalityIndex.of(computation).clause_true_events(cl))


def _groups(predicate: CNFPredicate) -> List[List[int]]:
    predicate.require_singular()
    return [sorted(cl.processes()) for cl in predicate.clauses]


def _witness(
    computation: Computation,
    predicate: CNFPredicate,
    selection: Sequence[EventId],
) -> Cut:
    witness = least_consistent_cut(computation, selection)
    assert witness is not None, "pairwise-consistent selection must admit a cut"
    assert predicate.evaluate(witness), "witness cut must satisfy the predicate"
    return witness


def _choose_special_variant(
    computation: Computation, groups: Sequence[Sequence[int]]
) -> Optional[str]:
    """Which CPDSC variant applies, or None.  Memoized per group structure."""
    index = CausalityIndex.of(computation)
    if index.is_receive_ordered(groups):
        return "receive-ordered"
    if index.is_send_ordered(groups):
        return "send-ordered"
    return None


def _detect_special_given(
    computation: Computation,
    predicate: CNFPredicate,
    groups: Sequence[Sequence[int]],
    variant: str,
) -> DetectionResult:
    """Run the already-chosen CPDSC variant.

    The caller has established applicability; clause-true events are only
    materialized here, after the variant decision, so an inapplicable
    predicate never pays for them.
    """
    with span("engine.cpdsc", groups=len(groups)) as sp:
        index = CausalityIndex.of(computation)
        trues = [
            list(index.clause_true_events(cl)) for cl in predicate.clauses
        ]
        if variant == "receive-ordered":
            selection = detect_receive_ordered(computation, groups, trues)
        else:
            selection = detect_send_ordered(computation, groups, trues)
        stats = StatCounters("engine.cpdsc")
        stats.set("variant", variant)
        stats.inc("scans")
        sp.set(variant=variant, holds=selection is not None)
        index.maybe_flush_metrics()
        if selection is None:
            return DetectionResult(
                holds=False, algorithm="cpdsc", stats=stats.as_dict()
            )
        return DetectionResult(
            holds=True,
            witness=_witness(computation, predicate, selection),
            algorithm="cpdsc",
            stats=stats.as_dict(),
        )


def detect_special_case(
    computation: Computation, predicate: CNFPredicate
) -> DetectionResult:
    """Polynomial detection for receive-ordered / send-ordered computations.

    The orderedness check runs once, up front (and is memoized on the
    computation's causality index, so an ``auto`` dispatch that already
    classified the computation never re-derives the verdict).

    Raises:
        UnsupportedPredicateError: If the computation is neither
            receive-ordered nor send-ordered with respect to the clause
            groups — use one of the general engines then.
    """
    groups = _groups(predicate)
    variant = _choose_special_variant(computation, groups)
    if variant is None:
        raise UnsupportedPredicateError(
            "computation is neither receive-ordered nor send-ordered "
            "with respect to the clause groups; use "
            "detect_by_chain_choice"
        )
    return _detect_special_given(computation, predicate, groups, variant)


def detect_by_process_choice(
    computation: Computation,
    predicate: CNFPredicate,
    parallel: Optional[int] = None,
) -> DetectionResult:
    """Try every one-process-per-group choice; CPDHB on each (Section 3.3a)."""
    groups = _groups(predicate)
    index = CausalityIndex.of(computation)
    per_group_chains: List[List[List[EventId]]] = []
    for cl, group in zip(predicate.clauses, groups):
        per_group_chains.append(
            [list(index.clause_true_events_on(cl, p)) for p in group]
        )
    return _detect_by_combinations(
        computation,
        predicate,
        per_group_chains,
        algorithm="process-choice",
        parallel=parallel,
    )


def detect_by_chain_choice(
    computation: Computation,
    predicate: CNFPredicate,
    parallel: Optional[int] = None,
) -> DetectionResult:
    """Try every one-chain-per-group choice; CPDHB on each (Section 3.3b).

    Uses a minimum chain cover of each group's true events (memoized on the
    causality index), so the number of CPDHB invocations is ``prod c_j``
    where ``c_j`` is the width (largest antichain) of group j's true events
    — never more than the process-choice engine, exponentially fewer when
    groups communicate internally.
    """
    _groups(predicate)
    index = CausalityIndex.of(computation)
    per_group_chains: List[List[List[EventId]]] = [
        [list(chain) for chain in index.chain_cover(cl)]
        for cl in predicate.clauses
    ]
    return _detect_by_combinations(
        computation,
        predicate,
        per_group_chains,
        algorithm="chain-choice",
        parallel=parallel,
    )


def _detect_by_combinations(
    computation: Computation,
    predicate: CNFPredicate,
    per_group_chains: Sequence[Sequence[List[EventId]]],
    algorithm: str,
    parallel: Optional[int] = None,
) -> DetectionResult:
    """Shared driver: CPDHB over every combination of one chain per group.

    With ``parallel`` > 1 the combination ranks are fanned across a
    multiprocessing pool (:mod:`repro.perf.parallel`); verdict and witness
    are identical to the serial sweep by construction, and the serial loop
    is the automatic fallback when no pool can be created.
    """
    total = math.prod(len(chains) for chains in per_group_chains)
    workers = resolve_workers(parallel, total)
    with span(
        f"engine.{algorithm}",
        groups=len(per_group_chains),
        combinations=total,
    ) as sp:
        index = CausalityIndex.of(computation)
        stats = StatCounters(f"engine.{algorithm}")
        stats.set("combinations", total)
        stats.set("workers", workers)
        stats.inc("invocations", 0)
        stats.inc("advances", 0)

        def _finish(
            holds: bool, selection: Optional[Sequence[EventId]] = None
        ) -> DetectionResult:
            sp.set(holds=holds)
            index.maybe_flush_metrics()
            if not holds:
                return DetectionResult(
                    holds=False, algorithm=algorithm, stats=stats.as_dict()
                )
            assert selection is not None
            return DetectionResult(
                holds=True,
                witness=_witness(computation, predicate, selection),
                algorithm=algorithm,
                stats=stats.as_dict(),
            )

        if total == 0:
            # Some group has no true event at all: the clause can never hold.
            return _finish(False)

        if workers > 1:
            outcome = run_combination_search(
                computation, per_group_chains, workers
            )
            if outcome is not None:
                stats.inc("invocations", outcome.invocations)
                stats.inc("advances", outcome.advances)
                return _finish(
                    outcome.selection is not None, outcome.selection
                )
            # Pool creation failed (restricted sandbox): serial fallback.
            stats.set("workers", 1)

        trk = tracker("detect.combinations", total=total)
        if use_batched_sweep(total):
            # Large sweeps: score a whole block of ranks per call with the
            # vectorized work-optimal rounds.  Every rank of a consumed
            # block runs to its verdict, so ``invocations`` counts whole
            # blocks — the same accounting the pooled driver uses, keeping
            # serial and parallel counters identical.
            sweep = CombinationSweep(
                computation, per_group_chains, index=index
            )
            for start in range(0, total, VEC_CHUNK):
                stop = min(start + VEC_CHUNK, total)
                stats.inc("invocations", stop - start)
                with span("scan.batch", ranks=stop - start) as scan_sp:
                    _, selection, advances, rounds = sweep.scan_block(
                        start, stop
                    )
                    scan_sp.set(advances=advances, rounds=rounds)
                stats.inc("advances", advances)
                trk.step(stop - start)
                if selection is not None:
                    return _finish(True, selection)
            trk.finish()
            return _finish(False)
        for combo in itertools.product(*per_group_chains):
            stats.inc("invocations")
            with span("scan.cpdhb") as scan_sp:
                scan = SelectionScan(computation, list(combo), index=index)
                selection = scan.run()
                scan_sp.set(advances=scan.advances)
            stats.inc("advances", scan.advances)
            trk.step()
            if selection is not None:
                return _finish(True, selection)
        trk.finish()
        return _finish(False)


def detect_singular(
    computation: Computation,
    predicate: CNFPredicate,
    strategy: str = "auto",
    parallel: Optional[int] = None,
) -> DetectionResult:
    """Facade for singular k-CNF ``possibly`` detection.

    Strategies: ``"auto"`` (polynomial special case when applicable, else
    chain-choice), ``"special"``, ``"process-choice"``, ``"chain-choice"``,
    ``"enumerate"`` (Cooper–Marzullo baseline).

    ``parallel`` fans the combination sweep of the process-choice and
    chain-choice engines across a worker pool (negative = one worker per
    CPU); verdicts and witnesses are unchanged.  Ignored by strategies
    that run no combination sweep.
    """
    if strategy == "auto":
        groups = _groups(predicate)
        with span("dispatch.singular", strategy="auto", groups=len(groups)):
            # Classify once; the chosen variant is handed to the special
            # engine so it never re-runs the orderedness scan.
            variant = _choose_special_variant(computation, groups)
            if variant is not None:
                return _detect_special_given(
                    computation, predicate, groups, variant
                )
            return detect_by_chain_choice(
                computation, predicate, parallel=parallel
            )
    if strategy == "special":
        return detect_special_case(computation, predicate)
    if strategy == "process-choice":
        return detect_by_process_choice(
            computation, predicate, parallel=parallel
        )
    if strategy == "chain-choice":
        return detect_by_chain_choice(
            computation, predicate, parallel=parallel
        )
    if strategy == "enumerate":
        return possibly_enumerate(computation, predicate)
    raise ValueError(f"unknown strategy {strategy!r}")
