"""Common result type for detection algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.computation import Cut

__all__ = ["DetectionResult"]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one detection query.

    Attributes:
        holds: Whether the queried modality holds for the predicate.
        witness: For satisfied ``possibly`` queries, a consistent cut
            satisfying the predicate; for refuted ``definitely`` queries the
            detectors leave this None (the counterexample is a run, not a
            cut).  None whenever no witness applies.
        algorithm: Name of the algorithm that produced the answer.
        stats: Algorithm-specific counters (cuts explored, CPDHB
            invocations, flow value, ...) used by benchmarks and tests.
    """

    holds: bool
    witness: Optional[Cut] = None
    algorithm: str = "?"
    stats: Dict[str, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds
