"""`definitely` for conjunctive predicates via false-interval anchors.

``definitely(B)`` fails iff some run avoids B entirely.  For conjunctive B
the avoiding cuts form the union of per-process sublattices
``R_i = {cuts whose process-i frontier event falsifies conjunct i}``, and
within ``R_i`` a run's i-frontier must stay inside one *false interval* —
a maximal run of consecutive events falsifying the conjunct (frontiers
move one event at a time, so leaving an interval means standing on a true
event).

An avoiding run is therefore a **relay of anchors** (process, false
interval):

* it starts anchored at an interval containing the initial event;
* a handoff from anchor ``(i, I)`` to ``(j, J)`` (necessarily ``j != i``:
  a frontier cannot jump between two intervals of its own process without
  standing on a true event in between) happens at a cut where *both* are
  anchored — because consecutive cuts differ in one process only, any
  avoiding run yields such a common cut for each consecutive anchor pair;
* it finishes at an anchor whose interval reaches its process's final
  event: from there every other process can run to completion and the
  anchor process follows, covered throughout.

The search explores the anchor graph, tracking per anchor an antichain of
minimal reachable anchored cuts (smaller cuts dominate: any handoff
feasible from a cut is feasible from any smaller one).  Handoff
feasibility from cut C to ``(j, J)``: the least consistent cut ≥ C with
j's frontier inside J must not overshoot J, nor push the current anchor
past its interval.  The algorithm is exact; its cost is bounded by the
anchor count times the antichain sizes — on every workload we measured it
is orders of magnitude below lattice reachability, and it degrades to
correctness (never to wrong answers) when antichains grow.

This goes beyond the 2001 paper (which focuses on ``possibly``): it is
this library's engine for the Garg–Waldecker *strong* conjunctive
modality, and the tests fuzz it against run enumeration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.computation import Computation
from repro.detection.result import DetectionResult
from repro.obs import StatCounters, span
from repro.perf.causality import CausalityIndex
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import LocalPredicate

__all__ = ["definitely_conjunctive", "false_intervals"]

Frontier = Tuple[int, ...]


@dataclass(frozen=True)
class _Interval:
    """A maximal run of consecutive falsifying events of one process."""

    process: int
    start: int  # first falsifying event index (0 = initial event)
    end: int  # last falsifying event index (inclusive)


def false_intervals(
    computation: Computation, predicate: ConjunctivePredicate
) -> List[_Interval]:
    """All maximal false intervals of the predicate's processes."""
    intervals: List[_Interval] = []
    for conjunct in predicate.conjuncts:
        p = conjunct.process
        events = computation.events_of(p)
        start: Optional[int] = None
        for ev in events:
            if not conjunct.holds_after(ev):
                if start is None:
                    start = ev.index
            elif start is not None:
                intervals.append(_Interval(p, start, ev.index - 1))
                start = None
        if start is not None:
            intervals.append(_Interval(p, start, len(events) - 1))
    return intervals


def _closure_at_least(
    computation: Computation, base: Frontier, process: int, minimum: int
) -> Frontier:
    """Least consistent cut >= base with ``frontier[process] >= minimum``.

    Delegates to the clock matrix's vectorized join fixpoint; the matrix
    runs the identical pure-Python passes when numpy is unavailable.
    """
    return CausalityIndex.of(computation).matrix.closure_at_least(
        base, process, minimum
    )


def _dominates(a: Frontier, b: Frontier) -> bool:
    """True iff a <= b componentwise (a reaches everything b reaches)."""
    return all(x <= y for x, y in zip(a, b))


class _AnchorFrontiers:
    """Antichain of minimal reachable anchored cuts for one anchor."""

    def __init__(self) -> None:
        self.cuts: List[Frontier] = []

    def add(self, frontier: Frontier) -> bool:
        """Insert unless dominated; drop newly dominated members."""
        for existing in self.cuts:
            if _dominates(existing, frontier):
                return False
        self.cuts = [
            existing
            for existing in self.cuts
            if not _dominates(frontier, existing)
        ]
        self.cuts.append(frontier)
        return True


def definitely_conjunctive(
    computation: Computation,
    predicate: ConjunctivePredicate,
    use_slice: bool = True,
) -> DetectionResult:
    """Decide ``definitely`` of a conjunctive predicate exactly.

    With ``use_slice`` (the default) the slice of the predicate — exact
    for conjunctive B — is consulted first: an empty slice means no cut
    satisfies B (every run avoids it, False), a least cut equal to ⊥ or a
    greatest cut equal to ⊤ means an endpoint of *every* run satisfies B
    (True).  Each shortcut is a polynomial rounding pass that skips the
    anchor search entirely, reported via the ``slice_shortcut`` stat.
    """
    with span(
        "engine.interval-anchor", conjuncts=len(predicate.conjuncts)
    ) as sp:
        if use_slice:
            shortcut = _slice_shortcut(computation, predicate, sp)
            if shortcut is not None:
                return shortcut
        return _definitely_conjunctive(computation, predicate, sp)


def _slice_shortcut(
    computation: Computation, predicate: ConjunctivePredicate, sp
) -> Optional[DetectionResult]:
    """Slice-bounds pre-check; None when the anchor search must run."""
    from repro.slicing.slice import ConjunctiveSlice

    slc = ConjunctiveSlice(computation, predicate)
    bounds = slc.bounds_frontiers()
    holds: Optional[bool] = None
    witness = None
    if bounds is None:
        holds = False  # no cut satisfies B: every run avoids it
    else:
        least, greatest = bounds
        n = computation.num_processes
        if least == (1,) * n:
            holds, witness = True, slc.least  # B(⊥): every run starts there
        elif greatest == tuple(
            len(computation.events_of(p)) for p in range(n)
        ):
            holds, witness = True, slc.greatest  # B(⊤): every run ends there
    if holds is None:
        return None
    stats = StatCounters("engine.interval-anchor")
    stats.inc("slice_shortcut")
    sp.set(slice_shortcut=True, holds=holds)
    return DetectionResult(
        holds=holds,
        witness=witness,
        algorithm="interval-anchor",
        stats=stats.as_dict(),
    )


def _definitely_conjunctive(
    computation: Computation, predicate: ConjunctivePredicate, sp
) -> DetectionResult:
    intervals = false_intervals(computation, predicate)
    stats = StatCounters("engine.interval-anchor")
    stats.set("anchors", len(intervals))
    stats.inc("handoffs_checked", 0)
    stats.inc("states", 0)
    sp.set(anchors=len(intervals))

    bottom: Frontier = (1,) * computation.num_processes

    # Start anchors: intervals containing the initial event.  If none, the
    # bottom cut satisfies B, so every run hits B immediately.
    reachable: Dict[_Interval, _AnchorFrontiers] = {}
    queue: deque[Tuple[_Interval, Frontier]] = deque()
    for interval in intervals:
        if interval.start == 0:
            store = reachable.setdefault(interval, _AnchorFrontiers())
            if store.add(bottom):
                queue.append((interval, bottom))

    def accepts(interval: _Interval) -> bool:
        final_index = len(computation.events_of(interval.process)) - 1
        return interval.end == final_index

    # Immediate acceptance from a start anchor.
    for interval, _ in list(queue):
        if accepts(interval):
            return DetectionResult(
                holds=False,
                algorithm="interval-anchor",
                stats=stats.as_dict(),
            )

    while queue:
        interval, frontier = queue.popleft()
        stats.inc("states")
        i = interval.process
        for target in intervals:
            j = target.process
            if j == i:
                continue
            if frontier[j] > target.end + 1:
                continue  # j's frontier already left the target interval
            stats.inc("handoffs_checked")
            landed = _closure_at_least(
                computation, frontier, j, target.start + 1
            )
            if landed[j] > target.end + 1:
                continue  # overshot the target interval
            if landed[i] > interval.end + 1:
                continue  # the closure pushed the current anchor out
            store = reachable.setdefault(target, _AnchorFrontiers())
            if store.add(landed):
                if accepts(target):
                    return DetectionResult(
                        holds=False,
                        algorithm="interval-anchor",
                        stats=stats.as_dict(),
                    )
                queue.append((target, landed))

    return DetectionResult(
        holds=True, algorithm="interval-anchor", stats=stats.as_dict()
    )
