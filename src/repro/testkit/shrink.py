"""Automatic minimization of failing (computation, predicate) pairs.

Given an *interestingness* test — for the fuzzer: "this engine pair still
disagrees (or still crashes)" — the shrinker greedily applies
structure-removing transformations while the test keeps passing:

1. delete whole processes the predicate does not mention (remapping
   message endpoints and predicate process indices);
2. delete contiguous runs of events, largest chunks first (messages
   touching a deleted event go with it, local order re-indexes);
3. delete individual messages (event kinds are recomputed);
4. weaken the predicate: drop CNF clauses, drop literals from multi-literal
   clauses, drop conjuncts.

Every transformation only ever *removes* order constraints, so candidates
are legal computations by construction (deleting an event splices its
local predecessor to its successor — an edge already implied by
transitivity).  The loop restarts after every accepted step and stops at a
fixpoint or an attempt budget, yielding a 1-minimal counterexample: no
single remaining deletion preserves the failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.computation import Computation
from repro.events import Event, EventId, EventKind
from repro.obs import STATE, registry as obs_registry
from repro.predicates.base import GlobalPredicate
from repro.predicates.boolean import Clause, CNFPredicate
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import Literal, LocalPredicate
from repro.predicates.relational import RelationalSumPredicate
from repro.predicates.symmetric import SymmetricPredicate

__all__ = ["ShrinkResult", "shrink", "referenced_processes"]

#: interesting(computation, predicate) -> the failure still reproduces.
Interesting = Callable[[Computation, GlobalPredicate], bool]


@dataclass
class ShrinkResult:
    """Outcome of a shrink run."""

    computation: Computation
    predicate: GlobalPredicate
    steps: int  #: accepted transformations
    attempts: int  #: interestingness checks executed
    original_shape: Tuple[int, int]  #: (processes, events) before
    shape: Tuple[int, int]  #: (processes, events) after

    def describe(self) -> str:
        op, oe = self.original_shape
        p, e = self.shape
        return (
            f"{op} procs x {oe} events -> {p} procs x {e} events "
            f"({self.steps} steps, {self.attempts} attempts)"
        )


# ----------------------------------------------------------------------
# Mutable sketch of a computation
# ----------------------------------------------------------------------
@dataclass
class _Sketch:
    """Editable computation: values + messages; kinds are derived."""

    init: List[Dict[str, Any]]
    events: List[List[Dict[str, Any]]]  # per process: {"values", "label"}
    messages: List[Tuple[EventId, EventId]]
    meta: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def of(cls, computation: Computation) -> "_Sketch":
        init = []
        events: List[List[Dict[str, Any]]] = []
        for p in range(computation.num_processes):
            seq = computation.events_of(p)
            init.append(dict(seq[0].values))
            events.append(
                [{"values": dict(ev.values), "label": ev.label} for ev in seq[1:]]
            )
        return cls(
            init=init,
            events=events,
            messages=[tuple(m) for m in computation.messages],  # type: ignore[misc]
            meta=dict(computation.meta),
        )

    def build(self) -> Computation:
        """Materialize; event kinds derive from the surviving messages."""
        sends = {send for send, _ in self.messages}
        recvs = {recv for _, recv in self.messages}
        process_events: List[List[Event]] = []
        for p, records in enumerate(self.events):
            seq = [Event(p, 0, EventKind.INITIAL, dict(self.init[p]))]
            for i, record in enumerate(records, start=1):
                eid = (p, i)
                if eid in sends and eid in recvs:
                    kind = EventKind.SEND_RECEIVE
                elif eid in sends:
                    kind = EventKind.SEND
                elif eid in recvs:
                    kind = EventKind.RECEIVE
                else:
                    kind = EventKind.INTERNAL
                seq.append(
                    Event(p, i, kind, dict(record["values"]), record["label"])
                )
            process_events.append(seq)
        return Computation(process_events, list(self.messages), meta=self.meta)

    def total_events(self) -> int:
        return sum(len(records) for records in self.events)

    # -- transformations (each returns a new sketch) --------------------
    def drop_process(self, p: int) -> "_Sketch":
        def remap(eid: EventId) -> EventId:
            return (eid[0] - 1, eid[1]) if eid[0] > p else eid

        return _Sketch(
            init=self.init[:p] + self.init[p + 1 :],
            events=[list(r) for r in self.events[:p] + self.events[p + 1 :]],
            messages=[
                (remap(s), remap(r))
                for s, r in self.messages
                if s[0] != p and r[0] != p
            ],
            meta=dict(self.meta),
        )

    def drop_events(self, p: int, start: int, count: int) -> "_Sketch":
        """Remove events ``start .. start+count-1`` (1-based) of ``p``."""
        gone = range(start, start + count)

        def remap(eid: EventId) -> Optional[EventId]:
            if eid[0] != p:
                return eid
            if eid[1] in gone:
                return None
            if eid[1] >= start + count:
                return (p, eid[1] - count)
            return eid

        messages = []
        for s, r in self.messages:
            s2, r2 = remap(s), remap(r)
            if s2 is not None and r2 is not None:
                messages.append((s2, r2))
        events = [list(r) for r in self.events]
        events[p] = events[p][: start - 1] + events[p][start - 1 + count :]
        return _Sketch(
            init=list(self.init), events=events, messages=messages,
            meta=dict(self.meta),
        )

    def drop_message(self, index: int) -> "_Sketch":
        messages = self.messages[:index] + self.messages[index + 1 :]
        return _Sketch(
            init=list(self.init),
            events=[list(r) for r in self.events],
            messages=messages,
            meta=dict(self.meta),
        )


# ----------------------------------------------------------------------
# Predicate surgery
# ----------------------------------------------------------------------
def referenced_processes(predicate: GlobalPredicate) -> Optional[frozenset]:
    """Process indices a predicate names, or None when process-agnostic.

    Relational sums range over whatever processes the cut has, so every
    process is droppable; symmetric predicates are handled specially
    (their ``num_processes`` must track the computation).
    """
    if isinstance(predicate, CNFPredicate):
        procs: set = set()
        for cl in predicate.clauses:
            procs |= cl.processes()
        return frozenset(procs)
    if isinstance(predicate, ConjunctivePredicate):
        return frozenset(c.process for c in predicate.conjuncts)
    if isinstance(predicate, LocalPredicate):
        return frozenset({predicate.process})
    if isinstance(predicate, RelationalSumPredicate):
        return frozenset()
    if isinstance(predicate, SymmetricPredicate):
        return frozenset()
    return None  # unknown structure: no process is safely droppable


def _predicate_after_process_drop(
    predicate: GlobalPredicate, dropped: int, new_n: int
) -> Optional[GlobalPredicate]:
    """The predicate rewritten for a computation without process ``dropped``.

    Only called when the predicate does not reference ``dropped``.  Returns
    None when the rewrite is not supported.
    """
    if isinstance(predicate, CNFPredicate):
        clauses = []
        for cl in predicate.clauses:
            literals = []
            for lit in cl.literals:
                if not isinstance(lit, Literal):
                    return None
                p = lit.process - 1 if lit.process > dropped else lit.process
                literals.append(Literal(p, lit.variable, lit.negated))
            clauses.append(Clause(literals))
        return CNFPredicate(clauses)
    if isinstance(predicate, ConjunctivePredicate):
        conjuncts = []
        for conj in predicate.conjuncts:
            if not isinstance(conj, Literal):
                return None
            p = conj.process - 1 if conj.process > dropped else conj.process
            conjuncts.append(Literal(p, conj.variable, conj.negated))
        return ConjunctivePredicate(conjuncts)
    if isinstance(predicate, RelationalSumPredicate):
        return predicate
    if isinstance(predicate, SymmetricPredicate):
        counts = {c for c in predicate.counts if c <= new_n}
        return SymmetricPredicate(predicate.variable, new_n, counts)
    return None


def _weakenings(predicate: GlobalPredicate) -> Iterator[GlobalPredicate]:
    """Strictly smaller predicates of the same class."""
    if isinstance(predicate, CNFPredicate):
        clauses = list(predicate.clauses)
        if len(clauses) > 1:
            for k in range(len(clauses)):
                yield CNFPredicate(clauses[:k] + clauses[k + 1 :])
        for k, cl in enumerate(clauses):
            if len(cl) > 1:
                literals = list(cl.literals)
                for j in range(len(literals)):
                    smaller = Clause(literals[:j] + literals[j + 1 :])
                    yield CNFPredicate(
                        clauses[:k] + [smaller] + clauses[k + 1 :]
                    )
    elif isinstance(predicate, ConjunctivePredicate):
        conjuncts = list(predicate.conjuncts)
        if len(conjuncts) > 1:
            for k in range(len(conjuncts)):
                yield ConjunctivePredicate(
                    conjuncts[:k] + conjuncts[k + 1 :]
                )
    elif isinstance(predicate, SymmetricPredicate):
        counts = sorted(predicate.counts)
        if len(counts) > 1:
            for c in counts:
                yield SymmetricPredicate(
                    predicate.variable,
                    predicate.num_processes,
                    set(counts) - {c},
                )


# ----------------------------------------------------------------------
# The shrink loop
# ----------------------------------------------------------------------
def _candidates(
    sketch: _Sketch, predicate: GlobalPredicate
) -> Iterator[Tuple[_Sketch, GlobalPredicate]]:
    """All one-step reductions of the pair, most aggressive first."""
    n = len(sketch.events)
    referenced = referenced_processes(predicate)
    # 1. whole processes (only ones the predicate does not name).
    if referenced is not None and n > 1:
        for p in range(n - 1, -1, -1):
            if p in referenced:
                continue
            pred2 = _predicate_after_process_drop(predicate, p, n - 1)
            if pred2 is None:
                continue
            yield sketch.drop_process(p), pred2
    # 2. event chunks, halving chunk sizes, scanning from the tail.
    for p in range(n):
        length = len(sketch.events[p])
        size = length
        while size >= 1:
            start = length - size + 1
            while start >= 1:
                if size != length or length > 0:
                    yield sketch.drop_events(p, start, size), predicate
                start -= size
            if size == 1:
                break
            size = max(1, size // 2)
            if size == length:  # avoid re-yielding the full-length chunk
                size -= 1
    # 3. individual messages.
    for k in range(len(sketch.messages) - 1, -1, -1):
        yield sketch.drop_message(k), predicate
    # 4. predicate weakenings.
    for pred2 in _weakenings(predicate):
        yield sketch, pred2


def shrink(
    computation: Computation,
    predicate: GlobalPredicate,
    interesting: Interesting,
    max_attempts: int = 5000,
) -> ShrinkResult:
    """Minimize the pair while ``interesting`` keeps returning True.

    ``interesting`` must hold on the input pair (it is not re-checked);
    exceptions it raises on candidates count as "not interesting".
    """
    sketch = _Sketch.of(computation)
    original_shape = (computation.num_processes, computation.total_events())
    current_pred = predicate
    steps = 0
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand_sketch, cand_pred in _candidates(sketch, current_pred):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                cand_comp = cand_sketch.build()
                if not interesting(cand_comp, cand_pred):
                    continue
            except Exception:
                continue
            sketch, current_pred = cand_sketch, cand_pred
            steps += 1
            improved = True
            break
    final = sketch.build()
    if STATE.enabled:
        obs_registry().counter("testkit.shrink.steps").inc(steps)
        obs_registry().counter("testkit.shrink.attempts").inc(attempts)
    return ShrinkResult(
        computation=final,
        predicate=current_pred,
        steps=steps,
        attempts=attempts,
        original_shape=original_shape,
        shape=(final.num_processes, final.total_events()),
    )
