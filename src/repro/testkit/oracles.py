"""Independent brute-force oracles for differential testing.

These are the library's *ground truth*: deliberately naive algorithms that
avoid every code path they are used to check.

* :func:`brute_possibly` enumerates every consistent cut by filtering *all*
  frontier vectors (it does not use the lattice successor machinery);
* :func:`brute_definitely` enumerates every run via depth-first search over
  enabled events and checks each run's cut sequence directly.

Both are exponential — use them only on small computations.  The
:mod:`repro.testkit.registry` gates them behind a ``max_events`` budget for
exactly that reason.

Historically these lived in ``tests/helpers.py``; they were promoted into
the library so the differential fuzzer (:mod:`repro.testkit.fuzz`) and the
corpus replayer (:mod:`repro.testkit.corpus`) can treat them as registered
engines.  ``tests/helpers.py`` still re-exports them.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from repro.computation import Computation, Cut

__all__ = [
    "all_cuts",
    "all_consistent_cuts",
    "brute_possibly",
    "brute_definitely",
    "brute_runs",
]


def all_cuts(computation: Computation) -> List[Cut]:
    """Every frontier vector (consistent or not) as a Cut."""
    ranges = [
        range(1, len(computation.events_of(p)) + 1)
        for p in range(computation.num_processes)
    ]
    return [Cut(computation, frontier) for frontier in itertools.product(*ranges)]


def all_consistent_cuts(computation: Computation) -> List[Cut]:
    """Every consistent cut, by brute-force filtering of all frontiers."""
    return [cut for cut in all_cuts(computation) if cut.is_consistent()]


def brute_possibly(
    computation: Computation, predicate: Callable[[Cut], bool]
) -> Optional[Cut]:
    """First consistent cut satisfying the predicate, else None."""
    for cut in all_consistent_cuts(computation):
        if predicate(cut):
            return cut
    return None


def brute_runs(computation: Computation) -> List[List[Cut]]:
    """Every run of the computation as its sequence of cuts (incl. bottom)."""
    from repro.computation import final_cut, initial_cut

    target = final_cut(computation)
    runs: List[List[Cut]] = []

    def extend(cut: Cut, prefix: List[Cut]) -> None:
        if cut == target:
            runs.append(list(prefix))
            return
        for p in range(computation.num_processes):
            if cut.is_enabled(p):
                nxt = cut.advance(p)
                prefix.append(nxt)
                extend(nxt, prefix)
                prefix.pop()

    start = initial_cut(computation)
    extend(start, [start])
    return runs


def brute_definitely(
    computation: Computation, predicate: Callable[[Cut], bool]
) -> bool:
    """Does every run pass through a cut satisfying the predicate?"""
    for run in brute_runs(computation):
        if not any(predicate(cut) for cut in run):
            return False
    return True
