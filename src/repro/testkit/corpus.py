"""Regression corpus: minimized counterexamples, committed and replayed.

Every fuzz finding that survives shrinking can be serialized as a corpus
case: the minimized trace (standard ``repro-trace-v1`` payload, embedded),
the predicate (structural JSON — the parser language cannot express every
predicate the fuzzer generates), the modality, the expected verdict, and a
``pins`` comment naming the engine pair the case regression-tests.

``tests/corpus/`` holds the committed cases; ``tests/test_corpus_replay.py``
replays each one through the full engine roster of the
:class:`~repro.testkit.registry.OracleRegistry` on every pytest run, so a
re-introduced divergence fails tier-1 immediately — with the tiny shrunk
instance as the error message, not a 400-event fuzz blob.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.computation import Computation
from repro.predicates import Modality
from repro.predicates.base import GlobalPredicate
from repro.predicates.boolean import Clause, CNFPredicate
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import Literal
from repro.predicates.relational import RelationalSumPredicate, Relop
from repro.predicates.symmetric import SymmetricPredicate
from repro.testkit.registry import OracleRegistry, default_registry
from repro.trace.io import computation_from_dict, computation_to_dict

__all__ = [
    "CorpusFormatError",
    "CorpusCase",
    "ReplayResult",
    "predicate_to_dict",
    "predicate_from_dict",
    "save_case",
    "load_case",
    "iter_corpus",
    "replay_case",
]

CORPUS_FORMAT = "repro-corpus-v1"


class CorpusFormatError(ValueError):
    """A corpus case file is malformed."""


# ----------------------------------------------------------------------
# Predicate (de)serialization
# ----------------------------------------------------------------------
def _literal_to_dict(literal: Literal) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "process": literal.process,
        "variable": literal.variable,
    }
    if literal.negated:
        record["negated"] = True
    return record


def _literal_from_dict(data: Mapping[str, Any], where: str) -> Literal:
    try:
        return Literal(
            int(data["process"]),
            str(data["variable"]),
            bool(data.get("negated", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorpusFormatError(f"{where}: bad literal {data!r}: {exc}") from exc


def predicate_to_dict(predicate: GlobalPredicate) -> Dict[str, Any]:
    """Structural JSON form of the predicate classes the fuzzer emits."""
    if isinstance(predicate, CNFPredicate):
        clauses = []
        for cl in predicate.clauses:
            literals = []
            for lit in cl.literals:
                if not isinstance(lit, Literal):
                    raise CorpusFormatError(
                        "only Literal-based CNF predicates serialize"
                    )
                literals.append(_literal_to_dict(lit))
            clauses.append(literals)
        return {"type": "cnf", "clauses": clauses}
    if isinstance(predicate, ConjunctivePredicate):
        literals = []
        for conj in predicate.conjuncts:
            if not isinstance(conj, Literal):
                raise CorpusFormatError(
                    "only Literal-based conjunctive predicates serialize"
                )
            literals.append(_literal_to_dict(conj))
        return {"type": "conjunctive", "literals": literals}
    if isinstance(predicate, RelationalSumPredicate):
        return {
            "type": "sum",
            "variable": predicate.variable,
            "relop": predicate.relop.value,
            "constant": predicate.constant,
        }
    if isinstance(predicate, SymmetricPredicate):
        return {
            "type": "symmetric",
            "variable": predicate.variable,
            "num_processes": predicate.num_processes,
            "counts": sorted(predicate.counts),
        }
    raise CorpusFormatError(
        f"cannot serialize predicate of type {type(predicate).__name__}"
    )


def predicate_from_dict(
    data: Mapping[str, Any], source: Optional[str] = None
) -> GlobalPredicate:
    """Inverse of :func:`predicate_to_dict`."""
    where = f"{source}: predicate" if source else "predicate"
    if not isinstance(data, Mapping) or "type" not in data:
        raise CorpusFormatError(f"{where}: expected an object with 'type'")
    kind = data["type"]
    if kind == "cnf":
        clauses = data.get("clauses")
        if not isinstance(clauses, list) or not clauses:
            raise CorpusFormatError(f"{where}: 'clauses' must be a list")
        return CNFPredicate(
            [
                Clause([_literal_from_dict(lit, where) for lit in literals])
                for literals in clauses
            ]
        )
    if kind == "conjunctive":
        literals = data.get("literals")
        if not isinstance(literals, list) or not literals:
            raise CorpusFormatError(f"{where}: 'literals' must be a list")
        return ConjunctivePredicate(
            [_literal_from_dict(lit, where) for lit in literals]
        )
    if kind == "sum":
        try:
            return RelationalSumPredicate(
                str(data["variable"]),
                Relop(data["relop"]),
                int(data["constant"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CorpusFormatError(f"{where}: bad sum predicate: {exc}") from exc
    if kind == "symmetric":
        try:
            return SymmetricPredicate(
                str(data["variable"]),
                int(data["num_processes"]),
                [int(c) for c in data["counts"]],
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CorpusFormatError(
                f"{where}: bad symmetric predicate: {exc}"
            ) from exc
    raise CorpusFormatError(f"{where}: unknown predicate type {kind!r}")


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
@dataclass
class CorpusCase:
    """One committed regression instance."""

    name: str
    pins: str  #: human comment naming the engine pair this case pins
    modality: Modality
    expected: bool
    computation: Computation
    predicate: GlobalPredicate
    provenance: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": CORPUS_FORMAT,
            "name": self.name,
            "pins": self.pins,
            "modality": self.modality.value,
            "expected": self.expected,
            "predicate": predicate_to_dict(self.predicate),
            "trace": computation_to_dict(self.computation),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], source: Optional[str] = None
    ) -> "CorpusCase":
        prefix = f"{source}: " if source else ""
        if not isinstance(data, Mapping):
            raise CorpusFormatError(prefix + "corpus case must be an object")
        if data.get("format") != CORPUS_FORMAT:
            raise CorpusFormatError(
                prefix
                + f"unsupported corpus format {data.get('format')!r}; "
                f"expected {CORPUS_FORMAT!r}"
            )
        for key in ("name", "pins", "modality", "expected", "predicate", "trace"):
            if key not in data:
                raise CorpusFormatError(prefix + f"missing required key {key!r}")
        try:
            modality = Modality(data["modality"])
        except ValueError as exc:
            raise CorpusFormatError(
                prefix + f"unknown modality {data['modality']!r}"
            ) from exc
        expected = data["expected"]
        if not isinstance(expected, bool):
            raise CorpusFormatError(
                prefix + f"'expected' must be a boolean, got {expected!r}"
            )
        return cls(
            name=str(data["name"]),
            pins=str(data["pins"]),
            modality=modality,
            expected=expected,
            computation=computation_from_dict(data["trace"], source=source),
            predicate=predicate_from_dict(data["predicate"], source=source),
            provenance=dict(data.get("provenance", {})),
        )


def save_case(case: CorpusCase, directory: Union[str, Path]) -> Path:
    """Write the case as ``<directory>/<name>.json``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.name}.json"
    path.write_text(json.dumps(case.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: Union[str, Path]) -> CorpusCase:
    """Read one corpus case; raises :class:`CorpusFormatError` on junk."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise CorpusFormatError(f"{path}: cannot read case: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CorpusFormatError(f"{path}: invalid JSON: {exc}") from exc
    return CorpusCase.from_dict(data, source=str(path))


def iter_corpus(directory: Union[str, Path]) -> List[Tuple[Path, CorpusCase]]:
    """All cases under ``directory``, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, load_case(path)) for path in sorted(directory.glob("*.json"))
    ]


@dataclass
class ReplayResult:
    """Verdicts of one corpus replay."""

    case: CorpusCase
    verdicts: Dict[str, object]

    @property
    def ok(self) -> bool:
        booleans = [
            v for v in self.verdicts.values() if isinstance(v, bool)
        ]
        return bool(booleans) and all(
            v == self.case.expected for v in booleans
        )


def replay_case(
    case: CorpusCase, registry: Optional[OracleRegistry] = None
) -> ReplayResult:
    """Run every applicable engine on the case and compare to ``expected``."""
    from repro.testkit.fuzz import _run_engines

    registry = registry or default_registry()
    engines = registry.engines_for(
        case.predicate, case.computation, case.modality
    )
    verdicts = _run_engines(engines, case.computation, case.predicate)
    return ReplayResult(case=case, verdicts=verdicts)
