"""Differential-testing kit (substrate S13): oracles, registry, fuzzing.

The correctness tooling behind "refactor fearlessly": the library's
verdict-producing layers (detection engines, SAT reductions, fast-path
variants, brute-force oracles) are enrolled in one
:class:`~repro.testkit.registry.OracleRegistry`; the differential fuzzer
(:mod:`repro.testkit.fuzz`) sweeps seeded random instances across every
registered engine and flags any split vote or crash; the shrinker
(:mod:`repro.testkit.shrink`) minimizes findings; and the corpus
(:mod:`repro.testkit.corpus`) commits them as replayable regression
tests.  A planted-bug engine (:mod:`repro.testkit.mutation`) keeps the
whole pipeline honest.

See ``docs/TESTING.md`` for the oracle matrix and the fuzz workflow, and
``repro fuzz --help`` for the CLI entry point.
"""

from repro.testkit.corpus import (
    CorpusCase,
    CorpusFormatError,
    ReplayResult,
    iter_corpus,
    load_case,
    predicate_from_dict,
    predicate_to_dict,
    replay_case,
    save_case,
)
from repro.testkit.fuzz import (
    FAMILY_NAMES,
    Finding,
    FuzzConfig,
    FuzzReport,
    InstanceLog,
    run_fuzz,
)
from repro.testkit.mutation import (
    PLANTED_ENGINE_NAME,
    buggy_detect_conjunctive,
    planted_engine,
)
from repro.testkit.oracles import (
    all_consistent_cuts,
    all_cuts,
    brute_definitely,
    brute_possibly,
    brute_runs,
)
from repro.testkit.registry import (
    ClassSpec,
    EngineSpec,
    OracleRegistry,
    as_cnf,
    as_conjunctive,
    default_registry,
)
from repro.testkit.shrink import ShrinkResult, referenced_processes, shrink

__all__ = [
    "FAMILY_NAMES",
    "PLANTED_ENGINE_NAME",
    "ClassSpec",
    "CorpusCase",
    "CorpusFormatError",
    "EngineSpec",
    "Finding",
    "FuzzConfig",
    "FuzzReport",
    "InstanceLog",
    "OracleRegistry",
    "ReplayResult",
    "ShrinkResult",
    "all_consistent_cuts",
    "all_cuts",
    "as_cnf",
    "as_conjunctive",
    "brute_definitely",
    "brute_possibly",
    "brute_runs",
    "buggy_detect_conjunctive",
    "default_registry",
    "iter_corpus",
    "load_case",
    "planted_engine",
    "predicate_from_dict",
    "predicate_to_dict",
    "referenced_processes",
    "replay_case",
    "run_fuzz",
    "save_case",
    "shrink",
]
