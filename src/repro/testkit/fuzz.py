"""Differential fuzzer: run every registered engine on random instances
and flag any disagreement or crash.

Each iteration draws an *instance family* (predicate class + generator
shape + optional fault plan), generates a seeded instance through
:mod:`repro.trace.generator` (or, for the protocol family, the simulator
under a random fault plan), runs every engine the
:class:`~repro.testkit.registry.OracleRegistry` maps to the instance, and
compares verdicts.  A split vote or an engine crash is a *finding*; the
:mod:`~repro.testkit.shrink` minimizer then reduces the instance while the
same engine pair keeps disagreeing, and the result can be committed to the
regression corpus (:mod:`repro.testkit.corpus`).

Everything is driven by one ``random.Random(seed)`` stream, so a fuzz run
is bit-for-bit reproducible: same seed, same instances, same verdict log.
A wall-clock budget only decides *when to stop* — it never feeds the RNG —
so a budgeted run is a prefix of the unbudgeted one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.computation import Computation
from repro.obs import STATE, registry as obs_registry, span
from repro.obs.progress import tracker
from repro.predicates import (
    CNFPredicate,
    Clause,
    Literal,
    Modality,
    SymmetricPredicate,
    conjunctive,
    local,
    sum_predicate,
)
from repro.predicates.base import GlobalPredicate
from repro.predicates.errors import UnsupportedPredicateError
from repro.testkit.registry import (
    EngineSpec,
    OracleRegistry,
    default_registry,
)
from repro.testkit.shrink import ShrinkResult, shrink
from repro.trace.generator import (
    BoolVar,
    UnitWalkVar,
    grouped_computation,
    random_computation,
)

__all__ = [
    "FuzzConfig",
    "InstanceLog",
    "Finding",
    "FuzzReport",
    "run_fuzz",
    "FAMILY_NAMES",
]

import random as _random

#: Sentinel verdict prefix for engines that raised.
CRASH = "crash"
#: Sentinel verdict for engines that declined the instance.
SKIP = "skip"

Instance = Tuple[Computation, GlobalPredicate, Modality]
Generator = Callable[["_random.Random", int], Instance]


# ----------------------------------------------------------------------
# Instance families
# ----------------------------------------------------------------------
def _bool_vars(rng: "_random.Random") -> List[BoolVar]:
    return [BoolVar("x", density=rng.choice([0.3, 0.45, 0.6]))]


def _gen_conjunctive(rng: "_random.Random", seed: int) -> Instance:
    n = rng.randint(2, 4)
    comp = random_computation(
        n,
        rng.randint(2, 4),
        rng.choice([0.2, 0.4, 0.6]),
        seed=seed,
        variables=_bool_vars(rng),
    )
    pred = conjunctive(
        *(local(p, "x", negated=rng.random() < 0.25) for p in range(n))
    )
    return comp, pred, Modality.POSSIBLY


def _gen_conjunctive_definitely(rng: "_random.Random", seed: int) -> Instance:
    n = rng.randint(2, 3)
    comp = random_computation(
        n,
        rng.randint(2, 3),
        rng.choice([0.3, 0.5]),
        seed=seed,
        variables=[BoolVar("x", density=rng.choice([0.5, 0.65]))],
    )
    pred = conjunctive(*(local(p, "x") for p in range(n)))
    return comp, pred, Modality.DEFINITELY


def _gen_singular_2cnf(rng: "_random.Random", seed: int) -> Instance:
    ordering = rng.choice([None, "receive", "send"])
    comp = grouped_computation(
        2,
        2,
        rng.randint(2, 3),
        message_density=rng.choice([0.3, 0.5]),
        seed=seed,
        variables=_bool_vars(rng),
        ordering=ordering,
    )
    pred = CNFPredicate(
        [
            Clause(
                [
                    Literal(0, "x", rng.random() < 0.3),
                    Literal(1, "x", rng.random() < 0.3),
                ]
            ),
            Clause(
                [
                    Literal(2, "x", rng.random() < 0.3),
                    Literal(3, "x", rng.random() < 0.3),
                ]
            ),
        ]
    )
    return comp, pred, Modality.POSSIBLY


def _gen_general_cnf(rng: "_random.Random", seed: int) -> Instance:
    n = 3
    comp = random_computation(
        n,
        rng.randint(2, 3),
        rng.choice([0.3, 0.5]),
        seed=seed,
        variables=_bool_vars(rng),
    )
    # Two clauses sharing process 0: deliberately non-singular.
    pred = CNFPredicate(
        [
            Clause(
                [Literal(0, "x"), Literal(1, "x", rng.random() < 0.5)]
            ),
            Clause(
                [Literal(0, "x", True), Literal(2, "x", rng.random() < 0.5)]
            ),
        ]
    )
    return comp, pred, Modality.POSSIBLY


def _gen_sum_eq(rng: "_random.Random", seed: int) -> Instance:
    comp = random_computation(
        rng.randint(2, 3),
        rng.randint(2, 3),
        rng.choice([0.3, 0.5]),
        seed=seed,
        variables=[UnitWalkVar("v", floor=None)],
    )
    pred = sum_predicate("v", "==", rng.choice([-1, 0, 1, 2]))
    return comp, pred, Modality.POSSIBLY


def _gen_sum_inequality(rng: "_random.Random", seed: int) -> Instance:
    comp = random_computation(
        rng.randint(2, 3),
        rng.randint(2, 3),
        rng.choice([0.3, 0.5]),
        seed=seed,
        variables=[UnitWalkVar("v", floor=None)],
    )
    relop = rng.choice(["<=", ">=", "<", ">", "!="])
    pred = sum_predicate("v", relop, rng.choice([-1, 0, 1, 2]))
    return comp, pred, Modality.POSSIBLY


def _gen_sum_definitely(rng: "_random.Random", seed: int) -> Instance:
    comp = random_computation(
        rng.randint(2, 3),
        2,
        rng.choice([0.3, 0.5]),
        seed=seed,
        variables=[UnitWalkVar("v", floor=None)],
    )
    pred = sum_predicate("v", "==", rng.choice([-1, 0, 1]))
    return comp, pred, Modality.DEFINITELY


def _gen_symmetric(rng: "_random.Random", seed: int) -> Instance:
    n = rng.randint(2, 4)
    comp = random_computation(
        n,
        rng.randint(2, 3),
        rng.choice([0.3, 0.5]),
        seed=seed,
        variables=_bool_vars(rng),
    )
    counts = [c for c in range(n + 1) if rng.random() < 0.4]
    if not counts:
        counts = [rng.randint(0, n)]
    pred = SymmetricPredicate("x", n, counts)
    return comp, pred, Modality.POSSIBLY


def _gen_protocol_faults(rng: "_random.Random", seed: int) -> Instance:
    """Token ring under a random fault plan — real traces, real faults."""
    from repro.simulation.faults import FaultPlan
    from repro.simulation.protocols import build_token_ring

    plan = FaultPlan(
        seed=seed,
        message_loss=rng.choice([0.0, 0.15, 0.3]),
        message_duplication=rng.choice([0.0, 0.15]),
    )
    comp = build_token_ring(
        3, hops=3, seed=seed, faults=plan if plan.any_faults else None
    )
    a, b = rng.sample(range(3), 2)
    pred = conjunctive(local(a, "cs"), local(b, "cs"))
    return comp, pred, Modality.POSSIBLY


def _gen_clockmatrix_roundtrip(rng: "_random.Random", seed: int) -> Instance:
    """Simulator traces under random fault plans — crash/restart epochs
    included — as conjunctive instances, so the registry's
    ``clockmatrix-roundtrip`` engine cross-checks every batched
    ClockMatrix kernel against the per-pair causality oracles on them."""
    from repro.simulation.faults import CrashSpec, FaultPlan
    from repro.simulation.protocols import build_token_ring

    crashes = ()
    if rng.random() < 0.5:
        at = float(rng.randint(2, 5))
        delay = rng.choice([1.0, 2.0, None])
        crashes = (
            CrashSpec(
                process=rng.randrange(3),
                at=at,
                restart_at=None if delay is None else at + delay,
            ),
        )
    plan = FaultPlan(
        seed=seed,
        message_loss=rng.choice([0.0, 0.2]),
        message_duplication=rng.choice([0.0, 0.15]),
        crashes=crashes,
    )
    comp = build_token_ring(
        3, hops=3, seed=seed, faults=plan if plan.any_faults else None
    )
    a, b = rng.sample(range(3), 2)
    pred = conjunctive(local(a, "cs"), local(b, "cs"))
    return comp, pred, Modality.POSSIBLY


def _gen_slice_roundtrip(rng: "_random.Random", seed: int) -> Instance:
    """CNF with a genuine conjunctive over-approximation: single-process
    clauses survive the slice's clause projection, the one multi-process
    clause is dropped (inexact slice), and both modalities are drawn —
    food for the sliced-vs-unsliced parity engines of the registry."""
    n = 3
    comp = random_computation(
        n,
        rng.randint(2, 3),
        rng.choice([0.3, 0.5]),
        seed=seed,
        variables=[
            BoolVar("x", density=rng.choice([0.4, 0.6])),
            BoolVar("y", density=rng.choice([0.4, 0.6])),
        ],
    )
    pred = CNFPredicate(
        [
            Clause([Literal(0, "x", rng.random() < 0.3)]),
            Clause([Literal(1, "y", rng.random() < 0.3)]),
            Clause(
                [
                    Literal(1, "x", rng.random() < 0.5),
                    Literal(2, "y", rng.random() < 0.5),
                ]
            ),
        ]
    )
    modality = (
        Modality.DEFINITELY if rng.random() < 0.5 else Modality.POSSIBLY
    )
    return comp, pred, modality


def _gen_classify_roundtrip(rng: "_random.Random", seed: int) -> Instance:
    """Structured predicates drawn across every opaquifiable class.

    The registry's ``classify-opaque`` engine wraps each instance as an
    opaque ``FunctionPredicate``, lets the static classifier recover the
    class, and asserts verdict + witness parity against the directly
    dispatched engine — while the brute oracle anchors the same vote.
    """
    n = rng.randint(2, 3)
    events = rng.randint(2, 3)
    density = rng.choice([0.3, 0.5])
    kind = rng.randrange(4)
    if kind == 0:
        comp = random_computation(
            n, events, density, seed=seed, variables=_bool_vars(rng)
        )
        pred: GlobalPredicate = conjunctive(
            *(local(p, "x", negated=rng.random() < 0.25) for p in range(n))
        )
    elif kind == 1:
        comp = random_computation(
            3, events, density, seed=seed, variables=_bool_vars(rng)
        )
        pred = CNFPredicate(
            [
                Clause(
                    [
                        Literal(0, "x", rng.random() < 0.3),
                        Literal(1, "x", rng.random() < 0.3),
                    ]
                ),
                Clause([Literal(2, "x", rng.random() < 0.3)]),
            ]
        )
    elif kind == 2:
        comp = random_computation(
            n,
            events,
            density,
            seed=seed,
            variables=[UnitWalkVar("v", floor=None)],
        )
        relop = rng.choice(["<=", ">=", "<", ">", "==", "!="])
        pred = sum_predicate("v", relop, rng.choice([-1, 0, 1, 2]))
    else:
        comp = random_computation(
            n, events, density, seed=seed, variables=_bool_vars(rng)
        )
        counts = [c for c in range(n + 1) if rng.random() < 0.4]
        if not counts:
            counts = [rng.randint(0, n)]
        pred = SymmetricPredicate("x", n, counts)
    modality = (
        Modality.DEFINITELY if rng.random() < 0.3 else Modality.POSSIBLY
    )
    return comp, pred, modality


#: Family name -> generator, in the fixed order the RNG indexes into.
FAMILIES: Dict[str, Generator] = {
    "conjunctive": _gen_conjunctive,
    "conjunctive-definitely": _gen_conjunctive_definitely,
    "singular-2cnf": _gen_singular_2cnf,
    "general-cnf": _gen_general_cnf,
    "sum-eq": _gen_sum_eq,
    "sum-inequality": _gen_sum_inequality,
    "sum-definitely": _gen_sum_definitely,
    "symmetric": _gen_symmetric,
    "protocol-faults": _gen_protocol_faults,
    "slice-roundtrip": _gen_slice_roundtrip,
    "clockmatrix-roundtrip": _gen_clockmatrix_roundtrip,
    "classify-roundtrip": _gen_classify_roundtrip,
}

FAMILY_NAMES: Tuple[str, ...] = tuple(FAMILIES)


# ----------------------------------------------------------------------
# Configuration and report objects
# ----------------------------------------------------------------------
@dataclass
class FuzzConfig:
    """Knobs of one fuzz run.  Defaults match ``repro fuzz``."""

    seed: int = 0
    iterations: int = 50
    time_budget: Optional[float] = None  #: seconds; None = run all iterations
    families: Optional[Sequence[str]] = None  #: None = all families
    shrink: bool = True
    max_shrink_attempts: int = 5000
    registry: Optional[OracleRegistry] = None  #: None = default_registry()
    #: class name -> extra engines (e.g. a planted mutant under test).
    extra_engines: Mapping[str, Sequence[EngineSpec]] = field(
        default_factory=dict
    )

    def family_names(self) -> List[str]:
        if self.families is None:
            return list(FAMILY_NAMES)
        # Validate every requested name (a typo must not silently shrink
        # the sweep) and keep the caller's order, first occurrence wins —
        # the order is part of the reproducibility contract: the RNG
        # indexes into this list, so ``--family a --family b`` replays
        # bit-for-bit but is a different stream than ``--family b
        # --family a``, exactly as the config says.
        ordered: List[str] = []
        for name in self.families:
            if name not in FAMILIES:
                raise ValueError(
                    f"unknown fuzz family {name!r}; "
                    f"available: {list(FAMILY_NAMES)}"
                )
            if name not in ordered:
                ordered.append(name)
        return ordered


@dataclass
class InstanceLog:
    """One fuzzed instance and its verdict vote."""

    iteration: int
    family: str
    instance_seed: int
    modality: str
    shape: Tuple[int, int]  #: (processes, events)
    verdicts: Dict[str, object]  #: engine name -> bool | "skip" | "crash:..."
    agreed: bool

    def line(self) -> str:
        votes = {v for v in self.verdicts.values() if isinstance(v, bool)}
        verdict = votes.pop() if len(votes) == 1 else "split"
        base = (
            f"[{self.iteration:04d}] family={self.family} "
            f"seed={self.instance_seed} modality={self.modality} "
            f"shape={self.shape[0]}x{self.shape[1]} "
            f"engines={len(self.verdicts)} verdict={verdict}"
        )
        if self.agreed:
            return base + " agree"
        detail = " ".join(
            f"{name}={value}" for name, value in sorted(self.verdicts.items())
        )
        return base + " DISAGREE " + detail


@dataclass
class Finding:
    """A disagreement or crash, plus its minimized counterexample."""

    log: InstanceLog
    computation: Computation
    predicate: GlobalPredicate
    modality: Modality
    engine_pair: Tuple[str, str]  #: the two engines pinned by the shrinker
    shrink_result: Optional[ShrinkResult] = None

    @property
    def minimized_computation(self) -> Computation:
        if self.shrink_result is not None:
            return self.shrink_result.computation
        return self.computation

    @property
    def minimized_predicate(self) -> GlobalPredicate:
        if self.shrink_result is not None:
            return self.shrink_result.predicate
        return self.predicate


@dataclass
class FuzzReport:
    """Everything a fuzz run produced."""

    seed: int
    instances: List[InstanceLog] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    iterations_run: int = 0
    stopped_by_budget: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings

    def log_lines(self) -> List[str]:
        """The deterministic verdict log (no wall-clock content)."""
        lines = [line.line() for line in self.instances]
        for finding in self.findings:
            if finding.shrink_result is not None:
                lines.append(
                    f"  shrunk [{finding.log.iteration:04d}] "
                    f"{' vs '.join(finding.engine_pair)}: "
                    f"{finding.shrink_result.describe()}"
                )
        lines.append(
            f"fuzz: {self.iterations_run} instances, "
            f"{len(self.findings)} finding(s), seed={self.seed}"
        )
        return lines


# ----------------------------------------------------------------------
# Engine execution
# ----------------------------------------------------------------------
def _run_engines(
    engines: Sequence[EngineSpec],
    computation: Computation,
    predicate: GlobalPredicate,
) -> Dict[str, object]:
    verdicts: Dict[str, object] = {}
    for engine in engines:
        try:
            verdicts[engine.name] = bool(engine.run(computation, predicate))
        except UnsupportedPredicateError:
            verdicts[engine.name] = SKIP
        except Exception as exc:  # noqa: BLE001 - crashes are findings
            verdicts[engine.name] = f"{CRASH}:{type(exc).__name__}"
    return verdicts


def _agreement(verdicts: Mapping[str, object]) -> bool:
    votes = {v for v in verdicts.values() if isinstance(v, bool)}
    crashed = any(
        isinstance(v, str) and v.startswith(CRASH) for v in verdicts.values()
    )
    return len(votes) <= 1 and not crashed


def _pin_engine_pair(
    verdicts: Mapping[str, object], oracle_name: Optional[str]
) -> Tuple[str, str]:
    """The two engine names the shrinker should hold onto.

    A crashing engine is pinned against itself (criterion: still crashes);
    otherwise prefer oracle-vs-dissenter, else the first split pair.
    """
    for name, value in sorted(verdicts.items()):
        if isinstance(value, str) and value.startswith(CRASH):
            return (name, name)
    reference = oracle_name
    if reference is None or not isinstance(verdicts.get(reference), bool):
        reference = next(
            name
            for name, value in sorted(verdicts.items())
            if isinstance(value, bool)
        )
    ref_verdict = verdicts[reference]
    for name, value in sorted(verdicts.items()):
        if isinstance(value, bool) and value != ref_verdict:
            return (reference, name)
    raise AssertionError("no disagreeing pair in a non-agreeing vote")


def _still_failing(
    pair: Tuple[str, str], engines_by_name: Mapping[str, EngineSpec]
) -> Callable[[Computation, GlobalPredicate], bool]:
    a, b = pair
    spec_a, spec_b = engines_by_name[a], engines_by_name[b]

    def interesting(comp: Computation, pred: GlobalPredicate) -> bool:
        if a == b:  # crash pin: the engine must still raise
            if not spec_a.applicable(comp, pred):
                return False
            try:
                spec_a.run(comp, pred)
            except UnsupportedPredicateError:
                return False
            except Exception:  # noqa: BLE001
                return True
            return False
        if not (
            spec_a.applicable(comp, pred) and spec_b.applicable(comp, pred)
        ):
            return False
        try:
            va = bool(spec_a.run(comp, pred))
            vb = bool(spec_b.run(comp, pred))
        except Exception:  # noqa: BLE001
            return False
        return va != vb

    return interesting


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run a differential fuzz sweep; deterministic for a given config."""
    registry = config.registry or default_registry()
    families = config.family_names()
    rng = _random.Random(config.seed)
    report = FuzzReport(seed=config.seed)
    started = time.monotonic()
    with span("testkit.fuzz", seed=config.seed, families=len(families)):
        trk = tracker("fuzz.iterations", total=config.iterations)
        for iteration in range(config.iterations):
            if (
                config.time_budget is not None
                and time.monotonic() - started >= config.time_budget
            ):
                report.stopped_by_budget = True
                break
            family = families[rng.randrange(len(families))]
            instance_seed = rng.randrange(2**31)
            computation, predicate, modality = FAMILIES[family](
                rng, instance_seed
            )
            extra = list(
                config.extra_engines.get(
                    registry.classify(predicate) or "", ()
                )
            )
            engines = registry.engines_for(
                predicate, computation, modality, include_extra=extra
            )
            verdicts = _run_engines(engines, computation, predicate)
            agreed = _agreement(verdicts)
            log = InstanceLog(
                iteration=iteration,
                family=family,
                instance_seed=instance_seed,
                modality=modality.value,
                shape=(computation.num_processes, computation.total_events()),
                verdicts=verdicts,
                agreed=agreed,
            )
            report.instances.append(log)
            report.iterations_run += 1
            trk.step()
            if STATE.enabled:
                obs_registry().counter("testkit.instances").inc()
                obs_registry().counter("testkit.engine_runs").inc(
                    len(verdicts)
                )
            if agreed:
                continue
            oracle = registry.oracle_for(predicate, modality)
            pair = _pin_engine_pair(
                verdicts, oracle.name if oracle else None
            )
            engines_by_name = {e.name: e for e in engines}
            shrink_result: Optional[ShrinkResult] = None
            if config.shrink:
                shrink_result = shrink(
                    computation,
                    predicate,
                    _still_failing(pair, engines_by_name),
                    max_attempts=config.max_shrink_attempts,
                )
            report.findings.append(
                Finding(
                    log=log,
                    computation=computation,
                    predicate=predicate,
                    modality=modality,
                    engine_pair=pair,
                    shrink_result=shrink_result,
                )
            )
            if STATE.enabled:
                obs_registry().counter("testkit.disagreements").inc()
                if any(
                    isinstance(v, str) and v.startswith(CRASH)
                    for v in verdicts.values()
                ):
                    obs_registry().counter("testkit.crashes").inc()
    return report
