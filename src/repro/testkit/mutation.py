"""Planted-bug engines: the fuzzer's own self-test.

A differential fuzzer that never fires is indistinguishable from one that
cannot fire.  This module keeps a deliberately broken engine — a copy of
the CPDHB selection scan with a classic off-by-one — so the test suite can
assert, on every run, that the fuzzer catches a real verdict divergence
within its smoke budget and that the shrinker reduces the counterexample
to a tiny instance (see ``tests/test_testkit_fuzz.py``).

The plant: :func:`buggy_detect_conjunctive` reproduces the elimination
scan of :mod:`repro.detection.garg_waldecker` but treats a chain as
exhausted one event early (``cursor == len(chain) - 1`` instead of
``len(chain)``), so eliminations can never settle on the *final* true
event of a chain.  The verdict is wrong exactly when every witness needs
some process's last true event — a subtle, input-dependent false negative
of the kind a real fast-path regression would produce.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.computation import Computation, least_consistent_cut
from repro.events import EventId
from repro.predicates import Modality
from repro.predicates.base import GlobalPredicate
from repro.predicates.errors import UnsupportedPredicateError
from repro.predicates.local import true_events
from repro.testkit.registry import EngineSpec, as_conjunctive

__all__ = ["buggy_detect_conjunctive", "planted_engine", "PLANTED_ENGINE_NAME"]

PLANTED_ENGINE_NAME = "cpdhb-off-by-one"


def _buggy_selection(
    computation: Computation, chains: List[List[EventId]]
) -> Optional[List[EventId]]:
    """The CPDHB elimination scan with the planted off-by-one bound."""
    m = len(chains)
    if m == 0:
        return []
    if any(not chain for chain in chains):
        return None
    cursor = [0] * m
    pending: deque[int] = deque(range(m))
    queued = [True] * m

    def advance(i: int) -> bool:
        cursor[i] += 1
        # BUG (planted): the correct bound is ``len(chains[i])`` — this
        # declares the chain exhausted with its final event still unused.
        return cursor[i] < len(chains[i]) - 1

    while pending:
        i = pending.popleft()
        queued[i] = False
        e = chains[i][cursor[i]]
        succ_e = computation.successor(e)
        restart = False
        for j in range(m):
            if j == i:
                continue
            f = chains[j][cursor[j]]
            if succ_e is not None and computation.leq(succ_e, f):
                if not advance(i):
                    return None
                if not queued[i]:
                    pending.append(i)
                    queued[i] = True
                restart = True
                break
            succ_f = computation.successor(f)
            if succ_f is not None and computation.leq(succ_f, e):
                if not advance(j):
                    return None
                if not queued[j]:
                    pending.append(j)
                    queued[j] = True
        if restart:
            continue
    return [chains[i][cursor[i]] for i in range(m)]


def buggy_detect_conjunctive(
    computation: Computation, predicate: GlobalPredicate
) -> bool:
    """``possibly`` of a conjunctive predicate via the buggy scan copy."""
    conj = as_conjunctive(predicate)
    if conj is None:
        raise UnsupportedPredicateError(
            "the planted engine handles conjunctive predicates only"
        )
    chains = [
        list(true_events(computation, conjunct)) for conjunct in conj.conjuncts
    ]
    selection = _buggy_selection(computation, chains)
    if selection is None:
        return False
    witness = least_consistent_cut(computation, selection)
    return witness is not None and predicate.evaluate(witness)


def planted_engine() -> EngineSpec:
    """The buggy engine, packaged for ``FuzzConfig.extra_engines``."""
    return EngineSpec(
        name=PLANTED_ENGINE_NAME,
        modality=Modality.POSSIBLY,
        run=buggy_detect_conjunctive,
    )
