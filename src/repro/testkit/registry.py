"""Oracle registry: which engines answer which predicate class, and against
which ground truth.

The library has three verdict-producing layers — the detection engines, the
SAT reductions, and the brute-force oracles — plus fast-path variants
(memoized indices, ``parallel=N`` sweeps) that must all agree.  This module
makes the agreement obligation *data*: every predicate class maps to the
full set of applicable engines and to one exponential ground-truth oracle.

The differential fuzzer (:mod:`repro.testkit.fuzz`), the corpus replayer
(:mod:`repro.testkit.corpus`), and the cross-validation tests all consume
the same registry, so adding an engine here automatically enrolls it in
fuzzing, corpus replay, and CI.  See ``docs/TESTING.md`` for the matrix
and for how to register a new engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.computation import Computation
from repro.predicates import Modality
from repro.predicates.base import GlobalPredicate
from repro.predicates.boolean import CNFPredicate, Clause
from repro.predicates.conjunctive import (
    ConjunctivePredicate,
    conjunctive_from_cnf,
)
from repro.predicates.local import Literal
from repro.predicates.relational import RelationalSumPredicate, Relop
from repro.predicates.symmetric import SymmetricPredicate
from repro.testkit.oracles import brute_definitely, brute_possibly

__all__ = [
    "EngineSpec",
    "ClassSpec",
    "OracleRegistry",
    "default_registry",
    "as_cnf",
    "as_conjunctive",
]

#: An engine adapter: (computation, predicate) -> boolean verdict.
EngineFn = Callable[[Computation, GlobalPredicate], bool]


@dataclass(frozen=True)
class EngineSpec:
    """One registered verdict producer.

    Args:
        name: Stable identifier used in fuzz logs and corpus files.
        modality: Which query the engine answers.
        run: Adapter returning the boolean verdict.
        is_oracle: Ground truth for its class (exactly one per class and
            modality).
        max_events: Skip the engine on computations with more non-initial
            events than this (exponential oracles and enumerators).
        applies: Optional extra gate, e.g. "relop is ``==``".
    """

    name: str
    modality: Modality
    run: EngineFn
    is_oracle: bool = False
    max_events: Optional[int] = None
    applies: Optional[Callable[[Computation, GlobalPredicate], bool]] = None

    def applicable(
        self, computation: Computation, predicate: GlobalPredicate
    ) -> bool:
        """Can this engine answer for the given instance?"""
        if self.max_events is not None:
            if computation.total_events() > self.max_events:
                return False
        if self.applies is not None and not self.applies(
            computation, predicate
        ):
            return False
        return True


@dataclass
class ClassSpec:
    """A predicate class: a recognizer plus its engine roster."""

    name: str
    matches: Callable[[GlobalPredicate], bool]
    engines: List[EngineSpec] = field(default_factory=list)

    def engines_for(self, modality: Modality) -> List[EngineSpec]:
        return [e for e in self.engines if e.modality is modality]


class OracleRegistry:
    """Predicate classes -> applicable engines + ground-truth oracle.

    Classification is first-match in registration order, so register more
    specific classes (conjunctive) before general ones (singular CNF).
    """

    def __init__(self) -> None:
        self._classes: List[ClassSpec] = []
        self._by_name: Dict[str, ClassSpec] = {}

    # -- registration ---------------------------------------------------
    def register_class(
        self, name: str, matches: Callable[[GlobalPredicate], bool]
    ) -> ClassSpec:
        """Add a predicate class; returns its (mutable) spec."""
        if name in self._by_name:
            raise ValueError(f"predicate class {name!r} already registered")
        spec = ClassSpec(name=name, matches=matches)
        self._classes.append(spec)
        self._by_name[name] = spec
        return spec

    def register_engine(self, class_name: str, engine: EngineSpec) -> None:
        """Enroll an engine in a class; replaces any same-name engine."""
        spec = self._by_name[class_name]
        if engine.is_oracle:
            for other in spec.engines_for(engine.modality):
                if other.is_oracle and other.name != engine.name:
                    raise ValueError(
                        f"class {class_name!r} already has oracle "
                        f"{other.name!r} for {engine.modality.value}"
                    )
        spec.engines = [e for e in spec.engines if e.name != engine.name] + [
            engine
        ]

    # -- lookup ---------------------------------------------------------
    @property
    def class_names(self) -> List[str]:
        return [spec.name for spec in self._classes]

    def get_class(self, name: str) -> ClassSpec:
        return self._by_name[name]

    def classify(self, predicate: GlobalPredicate) -> Optional[str]:
        """Name of the first class recognizing the predicate, or None."""
        for spec in self._classes:
            if spec.matches(predicate):
                return spec.name
        return None

    def engines_for(
        self,
        predicate: GlobalPredicate,
        computation: Computation,
        modality: Modality = Modality.POSSIBLY,
        include_extra: Sequence[EngineSpec] = (),
    ) -> List[EngineSpec]:
        """All engines applicable to this instance, oracle included."""
        name = self.classify(predicate)
        if name is None:
            return []
        roster = self._by_name[name].engines_for(modality) + list(include_extra)
        return [
            e for e in roster if e.applicable(computation, predicate)
        ]

    def oracle_for(
        self, predicate: GlobalPredicate, modality: Modality
    ) -> Optional[EngineSpec]:
        """The ground-truth oracle of the predicate's class."""
        name = self.classify(predicate)
        if name is None:
            return None
        for engine in self._by_name[name].engines_for(modality):
            if engine.is_oracle:
                return engine
        return None


# ----------------------------------------------------------------------
# Predicate view adapters
# ----------------------------------------------------------------------
def as_cnf(predicate: GlobalPredicate) -> Optional[CNFPredicate]:
    """View a predicate as CNF when a faithful translation exists."""
    if isinstance(predicate, CNFPredicate):
        return predicate
    if isinstance(predicate, ConjunctivePredicate):
        if all(isinstance(c, Literal) for c in predicate.conjuncts):
            return CNFPredicate(
                [Clause([c]) for c in predicate.conjuncts]  # type: ignore[list-item]
            )
    if isinstance(predicate, Literal):
        return CNFPredicate([Clause([predicate])])
    return None


def as_conjunctive(
    predicate: GlobalPredicate,
) -> Optional[ConjunctivePredicate]:
    """View a predicate as conjunctive when a faithful translation exists."""
    if isinstance(predicate, ConjunctivePredicate):
        return predicate
    if isinstance(predicate, CNFPredicate):
        if predicate.is_conjunctive() and predicate.is_singular():
            return conjunctive_from_cnf(predicate)
    return None


def _has_cnf_view(computation: Computation, predicate: GlobalPredicate) -> bool:
    return as_cnf(predicate) is not None


def _is_sum_eq(computation: Computation, predicate: GlobalPredicate) -> bool:
    return (
        isinstance(predicate, RelationalSumPredicate)
        and predicate.relop is Relop.EQ
    )


def _opaquifiable(
    computation: Computation, predicate: GlobalPredicate
) -> bool:
    """Can the predicate be rendered as classifiable Python source?"""
    from repro.analysis.classify import predicate_source
    from repro.predicates import PredicateError

    try:
        predicate_source(predicate)
    except PredicateError:
        return False
    return True


# ----------------------------------------------------------------------
# The default registry: every engine the library ships
# ----------------------------------------------------------------------
#: Instance-size ceiling for exponential oracles/enumerators.  The fuzzer
#: only generates instances below this, so in practice nothing is skipped.
ORACLE_MAX_EVENTS = 22

_DEFAULT: Optional[OracleRegistry] = None


def default_registry() -> OracleRegistry:
    """The registry covering every detection engine in the library.

    Built lazily once per process; mutate only through
    :meth:`OracleRegistry.register_engine` (tests that plant bugs pass the
    planted engine via ``include_extra`` instead of mutating this).
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = _build_default()
    return _DEFAULT


def _build_default() -> OracleRegistry:
    from repro.detection import (
        definitely_conjunctive,
        definitely_enumerate,
        definitely_sum,
        definitely_symmetric,
        detect_by_chain_choice,
        detect_by_process_choice,
        detect_cnf_by_literal_choice,
        detect_conjunctive,
        detect_singular,
        possibly_enumerate,
        possibly_sum,
        possibly_sum_eq_exact,
        possibly_symmetric,
    )
    from repro.reductions import possibly_via_sat
    from repro.slicing import (
        ConjunctiveSlice,
        sliced_definitely_enumerate,
        sliced_possibly_enumerate,
    )

    P, D = Modality.POSSIBLY, Modality.DEFINITELY

    def oracle_possibly(comp: Computation, pred: GlobalPredicate) -> bool:
        return brute_possibly(comp, pred.evaluate) is not None

    def oracle_definitely(comp: Computation, pred: GlobalPredicate) -> bool:
        return brute_definitely(comp, pred.evaluate)

    registry = OracleRegistry()

    # -- conjunctive (incl. singular 1-CNF) -----------------------------
    def is_conjunctive_class(pred: GlobalPredicate) -> bool:
        return as_conjunctive(pred) is not None

    registry.register_class("conjunctive", is_conjunctive_class)

    def run_cpdhb(comp: Computation, pred: GlobalPredicate) -> bool:
        return detect_conjunctive(comp, as_conjunctive(pred)).holds

    def run_slice(comp: Computation, pred: GlobalPredicate) -> bool:
        return not ConjunctiveSlice(comp, as_conjunctive(pred)).empty

    def run_anchors(comp: Computation, pred: GlobalPredicate) -> bool:
        return definitely_conjunctive(comp, as_conjunctive(pred)).holds

    def run_anchors_noslice(
        comp: Computation, pred: GlobalPredicate
    ) -> bool:
        return definitely_conjunctive(
            comp, as_conjunctive(pred), use_slice=False
        ).holds

    def run_sliced_possibly(
        comp: Computation, pred: GlobalPredicate
    ) -> bool:
        """Slice-bounded enumeration with full parity checks against the
        unsliced engine: equal verdicts, and on True a valid witness of
        the same (minimum) size.  A broken parity raises, which the
        fuzzer records as a crash finding."""
        from repro.detection import possibly_enumerate as plain

        sliced = sliced_possibly_enumerate(comp, pred)
        unsliced = plain(comp, pred)
        assert sliced.holds == unsliced.holds, (
            f"verdict mismatch: sliced={sliced.holds} "
            f"unsliced={unsliced.holds}"
        )
        if sliced.holds:
            assert sliced.witness is not None
            assert sliced.witness.is_consistent()
            assert pred.evaluate(sliced.witness), "invalid sliced witness"
            assert unsliced.witness is not None
            assert sliced.witness.size() == unsliced.witness.size(), (
                f"witness size mismatch: sliced={sliced.witness.size()} "
                f"unsliced={unsliced.witness.size()}"
            )
        return sliced.holds

    def run_sliced_definitely(
        comp: Computation, pred: GlobalPredicate
    ) -> bool:
        from repro.detection import definitely_enumerate as plain

        sliced = sliced_definitely_enumerate(comp, pred)
        unsliced = plain(comp, pred)
        assert sliced.holds == unsliced.holds, (
            f"verdict mismatch: sliced={sliced.holds} "
            f"unsliced={unsliced.holds}"
        )
        return sliced.holds

    def make_work_optimal(
        parallel: Optional[int] = None,
        sliced: bool = False,
        vectorized: Optional[bool] = None,
    ) -> EngineFn:
        """A work-optimal variant with full parity checks against CPDHB:
        equal verdicts, and on True the identical witness frontier (both
        engines converge to the least consistent selection).  A broken
        parity raises, which the fuzzer records as a crash finding."""

        def run(comp: Computation, pred: GlobalPredicate) -> bool:
            from repro.detection import detect_work_optimal

            conj = as_conjunctive(pred)
            bounds = None
            if sliced:
                from repro.slicing.dispatch import slice_info

                bounds = slice_info(comp, conj).bounds
            result = detect_work_optimal(
                comp,
                conj,
                parallel=parallel,
                bounds=bounds,
                vectorized=vectorized,
            )
            reference = detect_conjunctive(comp, conj)
            assert result.holds == reference.holds, (
                f"verdict mismatch: work-optimal={result.holds} "
                f"cpdhb={reference.holds}"
            )
            if result.holds:
                assert result.witness is not None
                assert result.witness.frontier == reference.witness.frontier, (
                    f"witness mismatch: work-optimal="
                    f"{result.witness.frontier} "
                    f"cpdhb={reference.witness.frontier}"
                )
            return result.holds

        return run

    def run_clockmatrix_roundtrip(
        comp: Computation, pred: GlobalPredicate
    ) -> bool:
        """Exhaustively cross-check the batched ClockMatrix kernels
        against the per-pair causality index on every event pair and
        every consistent frontier, then return the CPDHB verdict.  Any
        divergence raises — a crash finding for the fuzzer."""
        from repro.computation import initial_cut
        from repro.perf.causality import CausalityIndex

        index = CausalityIndex.of(comp)
        matrix = index.matrix
        events = [
            (p, i)
            for p in range(comp.num_processes)
            for i in range(len(comp.events_of(p)))
        ]
        rows = [matrix.row(e) for e in events]
        flat_a = [ra for ra in rows for _ in rows]
        flat_b = [rb for _ in rows for rb in rows]
        ev_a = [ea for ea in events for _ in events]
        ev_b = [eb for _ in events for eb in events]
        leq = matrix.leq_rows(flat_a, flat_b)
        before = matrix.happened_before_rows(flat_a, flat_b)
        cons = matrix.consistent_rows(flat_a, flat_b)
        for k, (ea, eb) in enumerate(zip(ev_a, ev_b)):
            assert bool(leq[k]) == index.leq(ea, eb), (
                f"leq_rows diverges on {ea} vs {eb}"
            )
            assert bool(before[k]) == index.happened_before(ea, eb), (
                f"happened_before_rows diverges on {ea} vs {eb}"
            )
            assert bool(cons[k]) == index.pairwise_consistent(ea, eb), (
                f"consistent_rows diverges on {ea} vs {eb}"
            )
        start = initial_cut(comp).frontier
        seen = {start}
        wave = [start]
        while wave:
            batched = matrix.successor_frontiers_batch(wave)
            nxt_wave = []
            for frontier, successors in zip(wave, batched):
                assert list(successors) == list(
                    index.successor_frontiers(frontier)
                ), f"successor batch diverges at {frontier}"
                for nxt in successors:
                    if nxt not in seen:
                        seen.add(nxt)
                        nxt_wave.append(nxt)
            wave = nxt_wave
        return run_cpdhb(comp, pred)

    for engine in [
        EngineSpec("cpdhb", P, run_cpdhb),
        EngineSpec("slice", P, run_slice),
        EngineSpec("work-optimal", P, make_work_optimal()),
        EngineSpec(
            "work-optimal-parallel2", P, make_work_optimal(parallel=2)
        ),
        EngineSpec(
            "work-optimal-sliced", P, make_work_optimal(sliced=True)
        ),
        EngineSpec(
            "work-optimal-pyfallback",
            P,
            make_work_optimal(vectorized=False),
        ),
        EngineSpec(
            "clockmatrix-roundtrip",
            P,
            run_clockmatrix_roundtrip,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "literal-choice",
            P,
            lambda c, p: detect_cnf_by_literal_choice(c, as_cnf(p)).holds,
            applies=_has_cnf_view,
        ),
        EngineSpec(
            "chain-choice",
            P,
            lambda c, p: detect_by_chain_choice(c, as_cnf(p)).holds,
            applies=_has_cnf_view,
        ),
        EngineSpec(
            "process-choice",
            P,
            lambda c, p: detect_by_process_choice(c, as_cnf(p)).holds,
            applies=_has_cnf_view,
        ),
        EngineSpec(
            "chain-choice-parallel2",
            P,
            lambda c, p: detect_by_chain_choice(
                c, as_cnf(p), parallel=2
            ).holds,
            applies=_has_cnf_view,
        ),
        EngineSpec(
            "enumeration",
            P,
            lambda c, p: possibly_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "sat",
            P,
            lambda c, p: possibly_via_sat(c, as_cnf(p)) is not None,
            max_events=ORACLE_MAX_EVENTS,
            applies=_has_cnf_view,
        ),
        EngineSpec(
            "brute",
            P,
            oracle_possibly,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-enum",
            P,
            run_sliced_possibly,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec("anchors", D, run_anchors),
        EngineSpec("anchors-noslice", D, run_anchors_noslice),
        EngineSpec(
            "lattice",
            D,
            lambda c, p: definitely_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-lattice",
            D,
            run_sliced_definitely,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute-runs",
            D,
            oracle_definitely,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
    ]:
        registry.register_engine("conjunctive", engine)

    # -- singular k-CNF (k >= 2) ----------------------------------------
    def is_singular_cnf(pred: GlobalPredicate) -> bool:
        return (
            isinstance(pred, CNFPredicate)
            and pred.is_singular()
            and not pred.is_conjunctive()
        )

    registry.register_class("singular-cnf", is_singular_cnf)
    for engine in [
        EngineSpec(
            "auto", P, lambda c, p: detect_singular(c, p, "auto").holds
        ),
        EngineSpec(
            "chain-choice",
            P,
            lambda c, p: detect_by_chain_choice(c, p).holds,
        ),
        EngineSpec(
            "process-choice",
            P,
            lambda c, p: detect_by_process_choice(c, p).holds,
        ),
        EngineSpec(
            "chain-choice-parallel2",
            P,
            lambda c, p: detect_by_chain_choice(c, p, parallel=2).holds,
        ),
        EngineSpec(
            "literal-choice",
            P,
            lambda c, p: detect_cnf_by_literal_choice(c, p).holds,
        ),
        EngineSpec(
            "enumeration",
            P,
            lambda c, p: possibly_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "sat",
            P,
            lambda c, p: possibly_via_sat(c, p) is not None,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute",
            P,
            oracle_possibly,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-enum",
            P,
            run_sliced_possibly,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "lattice",
            D,
            lambda c, p: definitely_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-lattice",
            D,
            run_sliced_definitely,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute-runs",
            D,
            oracle_definitely,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
    ]:
        registry.register_engine("singular-cnf", engine)

    # -- general (non-singular) CNF -------------------------------------
    registry.register_class(
        "general-cnf", lambda p: isinstance(p, CNFPredicate)
    )
    for engine in [
        EngineSpec(
            "literal-choice",
            P,
            lambda c, p: detect_cnf_by_literal_choice(c, p).holds,
        ),
        EngineSpec(
            "enumeration",
            P,
            lambda c, p: possibly_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "sat",
            P,
            lambda c, p: possibly_via_sat(c, p) is not None,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-enum",
            P,
            run_sliced_possibly,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute",
            P,
            oracle_possibly,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "lattice",
            D,
            lambda c, p: definitely_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-lattice",
            D,
            run_sliced_definitely,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute-runs",
            D,
            oracle_definitely,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
    ]:
        registry.register_engine("general-cnf", engine)

    # -- relational sums ------------------------------------------------
    registry.register_class(
        "relational-sum", lambda p: isinstance(p, RelationalSumPredicate)
    )
    for engine in [
        EngineSpec(
            "sum-dispatch", P, lambda c, p: possibly_sum(c, p).holds
        ),
        EngineSpec(
            "sum-exact",
            P,
            lambda c, p: possibly_sum_eq_exact(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
            applies=_is_sum_eq,
        ),
        EngineSpec(
            "enumeration",
            P,
            lambda c, p: possibly_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute",
            P,
            oracle_possibly,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-enum",
            P,
            run_sliced_possibly,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "sum-definitely", D, lambda c, p: definitely_sum(c, p).holds
        ),
        EngineSpec(
            "sum-definitely-noslice",
            D,
            lambda c, p: definitely_sum(c, p, use_slice=False).holds,
        ),
        EngineSpec(
            "lattice",
            D,
            lambda c, p: definitely_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-lattice",
            D,
            run_sliced_definitely,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute-runs",
            D,
            oracle_definitely,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
    ]:
        registry.register_engine("relational-sum", engine)

    # -- symmetric predicates -------------------------------------------
    registry.register_class(
        "symmetric", lambda p: isinstance(p, SymmetricPredicate)
    )
    for engine in [
        EngineSpec(
            "count-algorithm", P, lambda c, p: possibly_symmetric(c, p).holds
        ),
        EngineSpec(
            "enumeration",
            P,
            lambda c, p: possibly_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute",
            P,
            oracle_possibly,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "count-definitely",
            D,
            lambda c, p: definitely_symmetric(c, p).holds,
        ),
        EngineSpec(
            "count-definitely-noslice",
            D,
            lambda c, p: definitely_symmetric(
                c, p, use_slice=False
            ).holds,
        ),
        EngineSpec(
            "lattice",
            D,
            lambda c, p: definitely_enumerate(c, p).holds,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "slice-lattice",
            D,
            run_sliced_definitely,
            max_events=ORACLE_MAX_EVENTS,
        ),
        EngineSpec(
            "brute-runs",
            D,
            oracle_definitely,
            is_oracle=True,
            max_events=ORACLE_MAX_EVENTS,
        ),
    ]:
        registry.register_engine("symmetric", engine)

    # -- classifier-dispatched opaque variants --------------------------
    def make_classify(modality: Modality) -> EngineFn:
        """Opaque-wrapped variant of every structured family: render the
        predicate as Python source, wrap it in a ``FunctionPredicate``,
        and let ``detect(..., infer=True)`` recover the class statically.
        Asserts the classifier actually engaged (``classify:`` algorithm
        prefix), verdict parity against the directly dispatched engine,
        and witness validity.  A broken parity raises, which the fuzzer
        records as a crash finding."""

        def run(comp: Computation, pred: GlobalPredicate) -> bool:
            from repro.analysis.classify import opaquify
            from repro.detection import detect

            opaque = opaquify(pred)
            inferred = detect(comp, opaque, modality)
            assert inferred.algorithm.startswith("classify:"), (
                f"classifier fell back to {inferred.algorithm!r} on "
                f"{pred.description()}"
            )
            direct = detect(comp, pred, modality, infer=False)
            assert inferred.holds == direct.holds, (
                f"verdict mismatch: classified={inferred.holds} "
                f"direct={direct.holds}"
            )
            if inferred.holds and inferred.witness is not None:
                assert inferred.witness.is_consistent()
                assert pred.evaluate(inferred.witness), (
                    "classified witness fails the original predicate"
                )
            return inferred.holds

        return run

    classify_engines = [
        EngineSpec(
            "classify-opaque", P, make_classify(P), applies=_opaquifiable
        ),
        EngineSpec(
            "classify-opaque", D, make_classify(D), applies=_opaquifiable
        ),
    ]
    for class_name in (
        "conjunctive",
        "singular-cnf",
        "general-cnf",
        "relational-sum",
        "symmetric",
    ):
        for engine in classify_engines:
            registry.register_engine(class_name, engine)

    return registry
