"""Fluent assertions over traces — predicate detection for test suites.

Wraps the detection facade in the vocabulary protocol tests actually use::

    from repro import TraceChecker
    from repro.predicates import conjunctive, local

    TraceChecker(trace).never(
        conjunctive(local(1, "cs"), local(2, "cs")),
        "mutual exclusion",
    ).inevitably(
        conjunctive(local(1, "committed"), local(2, "committed")),
        "commit point",
    )

Each assertion returns the checker (chaining) and raises
:class:`TraceAssertionError` with the witness/modality details on failure,
so a CI log shows *which global state* violated the property.

Vocabulary (B a global predicate):

* ``sometimes(B)`` — possibly(B): some consistent cut satisfies B;
* ``never(B)`` — ¬possibly(B): no reachable global state satisfies B;
* ``inevitably(B)`` — definitely(B): every run passes through B;
* ``avoidably(B)`` — ¬definitely(B): some run never sees B;
* ``finally_(B)`` — B holds at the final cut (the right form for stable
  conditions such as termination or deadlock);
* ``initially(B)`` — B holds at the initial cut.
"""

from __future__ import annotations

from typing import Optional

from repro.computation import Computation, final_cut, initial_cut
from repro.detection import detect
from repro.predicates.base import GlobalPredicate
from repro.predicates.modalities import Modality

__all__ = ["TraceChecker", "TraceAssertionError"]


class TraceAssertionError(AssertionError):
    """A trace property assertion failed."""


class TraceChecker:
    """Chainable property assertions over one computation."""

    def __init__(self, computation: Computation):
        self._comp = computation
        self.checked = 0

    # ------------------------------------------------------------------
    def sometimes(
        self, predicate: GlobalPredicate, label: Optional[str] = None
    ) -> "TraceChecker":
        """Assert possibly(B): some consistent cut satisfies B."""
        result = detect(self._comp, predicate, Modality.POSSIBLY)
        if not result.holds:
            raise TraceAssertionError(
                self._message("sometimes", predicate, label,
                              "no consistent cut satisfies it")
            )
        return self._passed()

    def never(
        self, predicate: GlobalPredicate, label: Optional[str] = None
    ) -> "TraceChecker":
        """Assert ¬possibly(B): no reachable global state satisfies B."""
        result = detect(self._comp, predicate, Modality.POSSIBLY)
        if result.holds:
            where = (
                f" (witness global state {result.witness.frontier})"
                if result.witness is not None
                else ""
            )
            raise TraceAssertionError(
                self._message("never", predicate, label,
                              f"a consistent cut satisfies it{where}")
            )
        return self._passed()

    def inevitably(
        self, predicate: GlobalPredicate, label: Optional[str] = None
    ) -> "TraceChecker":
        """Assert definitely(B): every run passes through a B-state."""
        result = detect(self._comp, predicate, Modality.DEFINITELY)
        if not result.holds:
            raise TraceAssertionError(
                self._message("inevitably", predicate, label,
                              "some run avoids it entirely")
            )
        return self._passed()

    def avoidably(
        self, predicate: GlobalPredicate, label: Optional[str] = None
    ) -> "TraceChecker":
        """Assert ¬definitely(B): some run never sees B."""
        result = detect(self._comp, predicate, Modality.DEFINITELY)
        if result.holds:
            raise TraceAssertionError(
                self._message("avoidably", predicate, label,
                              "every run passes through it")
            )
        return self._passed()

    def finally_(
        self, predicate: GlobalPredicate, label: Optional[str] = None
    ) -> "TraceChecker":
        """Assert B at the final cut (stable conditions)."""
        cut = final_cut(self._comp)
        if not predicate.evaluate(cut):
            raise TraceAssertionError(
                self._message("finally", predicate, label,
                              f"the final cut {cut.frontier} violates it")
            )
        return self._passed()

    def initially(
        self, predicate: GlobalPredicate, label: Optional[str] = None
    ) -> "TraceChecker":
        """Assert B at the initial cut."""
        cut = initial_cut(self._comp)
        if not predicate.evaluate(cut):
            raise TraceAssertionError(
                self._message("initially", predicate, label,
                              "the initial cut violates it")
            )
        return self._passed()

    # ------------------------------------------------------------------
    def _passed(self) -> "TraceChecker":
        self.checked += 1
        return self

    @staticmethod
    def _message(
        mode: str,
        predicate: GlobalPredicate,
        label: Optional[str],
        reason: str,
    ) -> str:
        name = f"{label!r} " if label else ""
        return (
            f"trace property {name}failed: {mode}({predicate.description()})"
            f" — {reason}"
        )
