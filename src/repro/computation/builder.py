"""Incremental construction of computations.

:class:`ComputationBuilder` offers the ergonomic way to write down a trace by
hand (tests, examples, reduction gadgets) or programmatically (trace
generator, simulator).  Initial events are created automatically; events are
appended per process; messages may reference events by id or by label.

Example — the paper's Figure 2 skeleton::

    b = ComputationBuilder(4)
    e = b.internal(0, label="e", x=True)
    f = b.send(1, label="f", x=True)
    ...
    b.message(f, g)
    comp = b.build()
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.computation.computation import Computation, MessageEdge
from repro.computation.errors import ComputationError
from repro.events import Event, EventId, EventKind

__all__ = ["ComputationBuilder"]

EventRef = Union[EventId, str]


class ComputationBuilder:
    """Builds a :class:`Computation` event by event.

    Local variable values persist between events of a process: an event's
    value map is the previous map updated with the keyword arguments given
    for that event, mirroring how a real process's state evolves.
    """

    def __init__(self, num_processes: int):
        if num_processes <= 0:
            raise ComputationError("need at least one process")
        self._events: List[List[Event]] = []
        self._state: List[Dict[str, Any]] = []
        self._messages: List[MessageEdge] = []
        self._labels: Dict[str, EventId] = {}
        for p in range(num_processes):
            self._events.append(
                [Event(process=p, index=0, kind=EventKind.INITIAL, values={})]
            )
            self._state.append({})

    @property
    def num_processes(self) -> int:
        """Number of processes being built."""
        return len(self._events)

    # ------------------------------------------------------------------
    # Initial state
    # ------------------------------------------------------------------
    def init_values(self, process: int, **values: Any) -> None:
        """Set the variable values carried by the initial event of ``process``.

        Must be called before any event is appended to that process.
        """
        self._check_process(process)
        if len(self._events[process]) > 1:
            raise ComputationError(
                "initial values must be set before appending events"
            )
        self._state[process].update(values)
        self._events[process][0] = Event(
            process=process,
            index=0,
            kind=EventKind.INITIAL,
            values=dict(self._state[process]),
        )

    # ------------------------------------------------------------------
    # Event appenders
    # ------------------------------------------------------------------
    def event(
        self,
        process: int,
        kind: EventKind = EventKind.INTERNAL,
        label: Optional[str] = None,
        **values: Any,
    ) -> EventId:
        """Append an event of the given kind; returns its id."""
        self._check_process(process)
        if kind is EventKind.INITIAL:
            raise ComputationError("cannot append an INITIAL event")
        self._state[process].update(values)
        index = len(self._events[process])
        ev = Event(
            process=process,
            index=index,
            kind=kind,
            values=dict(self._state[process]),
            label=label,
        )
        self._events[process].append(ev)
        if label is not None:
            if label in self._labels:
                raise ComputationError(f"duplicate label {label!r}")
            self._labels[label] = ev.event_id
        return ev.event_id

    def internal(self, process: int, label: Optional[str] = None, **values: Any) -> EventId:
        """Append an internal event."""
        return self.event(process, EventKind.INTERNAL, label, **values)

    def send(self, process: int, label: Optional[str] = None, **values: Any) -> EventId:
        """Append a send event (pair it later with :meth:`message`)."""
        return self.event(process, EventKind.SEND, label, **values)

    def receive(self, process: int, label: Optional[str] = None, **values: Any) -> EventId:
        """Append a receive event (pair it later with :meth:`message`)."""
        return self.event(process, EventKind.RECEIVE, label, **values)

    def send_receive(
        self, process: int, label: Optional[str] = None, **values: Any
    ) -> EventId:
        """Append an event that both sends and receives."""
        return self.event(process, EventKind.SEND_RECEIVE, label, **values)

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def message(self, send: EventRef, receive: EventRef) -> None:
        """Record a message from a send event to a receive event."""
        self._messages.append((self._resolve(send), self._resolve(receive)))

    def transmit(
        self,
        sender: int,
        receiver: int,
        send_label: Optional[str] = None,
        receive_label: Optional[str] = None,
        send_values: Optional[Dict[str, Any]] = None,
        receive_values: Optional[Dict[str, Any]] = None,
    ) -> Tuple[EventId, EventId]:
        """Append a fresh send on ``sender``, a fresh receive on ``receiver``,
        and the message between them.  Returns both event ids."""
        send_id = self.send(sender, send_label, **(send_values or {}))
        recv_id = self.receive(receiver, receive_label, **(receive_values or {}))
        self._messages.append((send_id, recv_id))
        return send_id, recv_id

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(
        self, meta: Optional[Dict[str, Any]] = None
    ) -> Computation:
        """Validate and freeze into an immutable :class:`Computation`.

        Args:
            meta: Optional provenance metadata to attach (see
                :attr:`Computation.meta`).
        """
        return Computation(self._events, self._messages, meta=meta)

    def resolve_label(self, label: str) -> EventId:
        """Event id previously assigned to ``label``."""
        if label not in self._labels:
            raise ComputationError(f"unknown label {label!r}")
        return self._labels[label]

    def _resolve(self, ref: EventRef) -> EventId:
        if isinstance(ref, str):
            return self.resolve_label(ref)
        return ref

    def _check_process(self, process: int) -> None:
        if not 0 <= process < len(self._events):
            raise ComputationError(f"process {process} out of range")
