"""The distributed computation poset (substrate S2).

A :class:`Computation` is the finite trace object every algorithm in this
library consumes: for each process a sequence of events (beginning with a
fictitious initial event), plus the message edges relating send events to
their receive events.  The induced irreflexive partial order *precedes*
(happened-before) is the transitive closure of

* the local order on each process,
* the message edges, and
* "every initial event precedes every non-initial event" (paper, Section 2.1).

The class precomputes Fidge–Mattern vector clocks in one topological pass,
which simultaneously verifies acyclicity.  All causality and consistency
queries then run in O(n) (n = number of processes) or better.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.computation.errors import (
    ComputationError,
    CyclicComputationError,
    UnknownEventError,
)
from repro.events import Event, EventId, EventKind, VectorClock

__all__ = ["Computation", "MessageEdge"]

#: A message edge relates a send event to its receive event.
MessageEdge = Tuple[EventId, EventId]


class Computation:
    """An immutable distributed computation.

    Construct directly from per-process event lists and message edges, or use
    :class:`repro.computation.builder.ComputationBuilder` for incremental
    construction, or record one from the simulator
    (:mod:`repro.simulation`).

    Args:
        process_events: For each process, its events in local order.  The
            first event of each process must be its initial event (index 0,
            kind ``INITIAL``); builders insert it automatically.
        messages: Send/receive event-id pairs.  Both endpoints must exist,
            the endpoints must be on different processes or at least be
            distinct events, and neither endpoint may be an initial event.

    Raises:
        ComputationError: On malformed inputs.
        CyclicComputationError: If local order plus message edges is cyclic.
    """

    def __init__(
        self,
        process_events: Sequence[Sequence[Event]],
        messages: Iterable[MessageEdge] = (),
        *,
        meta: Optional[Mapping[str, object]] = None,
    ):
        if not process_events:
            raise ComputationError("a computation needs at least one process")
        self._meta: Dict[str, object] = dict(meta) if meta else {}
        self._events: Tuple[Tuple[Event, ...], ...] = tuple(
            tuple(seq) for seq in process_events
        )
        self._messages: Tuple[MessageEdge, ...] = tuple(messages)
        self._validate_events()
        self._validate_messages()
        # Message adjacency by event id.
        self._sent_from: Dict[EventId, List[EventId]] = {}
        self._received_at: Dict[EventId, List[EventId]] = {}
        for send_id, recv_id in self._messages:
            self._sent_from.setdefault(send_id, []).append(recv_id)
            self._received_at.setdefault(recv_id, []).append(send_id)
        self._clocks: Dict[EventId, VectorClock] = {}
        self._compute_clocks()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        """Number of processes in the computation."""
        return len(self._events)

    @property
    def messages(self) -> Tuple[MessageEdge, ...]:
        """All (send-id, receive-id) message edges."""
        return self._messages

    @property
    def meta(self) -> Mapping[str, object]:
        """Structured provenance metadata (e.g. injected faults).

        Carries information *about* the recording — such as the fault plan
        and the faults actually injected by the simulator — that is not
        part of the event structure itself.  Algorithms never read it; it
        exists so results can be cross-referenced with how the trace was
        produced.  Round-trips through the JSON trace format.
        """
        return self._meta

    def events_of(self, process: int) -> Tuple[Event, ...]:
        """All events of ``process`` in local order (initial event first)."""
        self._check_process(process)
        return self._events[process]

    def num_events(self, process: int) -> int:
        """Number of events of ``process`` *excluding* the initial event."""
        self._check_process(process)
        return len(self._events[process]) - 1

    def total_events(self) -> int:
        """Total number of non-initial events in the computation."""
        return sum(len(seq) - 1 for seq in self._events)

    def event(self, event_id: EventId) -> Event:
        """The event with the given ``(process, index)`` id."""
        process, index = event_id
        self._check_process(process)
        if not 0 <= index < len(self._events[process]):
            raise UnknownEventError(event_id)
        return self._events[process][index]

    def has_event(self, event_id: EventId) -> bool:
        """True iff ``event_id`` denotes an event of this computation."""
        process, index = event_id
        return (
            0 <= process < len(self._events)
            and 0 <= index < len(self._events[process])
        )

    def all_events(self, include_initial: bool = False) -> Iterator[Event]:
        """Iterate over every event, process by process."""
        for seq in self._events:
            start = 0 if include_initial else 1
            yield from seq[start:]

    def initial_event(self, process: int) -> Event:
        """The fictitious initial event of ``process``."""
        return self.events_of(process)[0]

    def final_event(self, process: int) -> Event:
        """The last event of ``process`` (its initial event if it has none)."""
        return self.events_of(process)[-1]

    def predecessor(self, event_id: EventId) -> Optional[EventId]:
        """Local predecessor ``pred(e)`` or None for an initial event."""
        process, index = event_id
        if not self.has_event(event_id):
            raise UnknownEventError(event_id)
        if index == 0:
            return None
        return (process, index - 1)

    def successor(self, event_id: EventId) -> Optional[EventId]:
        """Local successor ``succ(e)`` or None for a final event."""
        process, index = event_id
        if not self.has_event(event_id):
            raise UnknownEventError(event_id)
        if index + 1 >= len(self._events[process]):
            return None
        return (process, index + 1)

    def message_targets(self, event_id: EventId) -> Tuple[EventId, ...]:
        """Receive events of the messages sent at ``event_id``."""
        return tuple(self._sent_from.get(event_id, ()))

    def message_sources(self, event_id: EventId) -> Tuple[EventId, ...]:
        """Send events of the messages received at ``event_id``."""
        return tuple(self._received_at.get(event_id, ()))

    def clock(self, event_id: EventId) -> VectorClock:
        """The Fidge–Mattern vector clock of the event."""
        if event_id not in self._clocks:
            raise UnknownEventError(event_id)
        return self._clocks[event_id]

    # ------------------------------------------------------------------
    # Causality queries
    # ------------------------------------------------------------------
    def happened_before(self, e: EventId, f: EventId) -> bool:
        """True iff event ``e`` precedes event ``f`` (irreflexive).

        O(1): component ``p(e)`` of ``f``'s clock counts the events of
        ``e``'s process (including its initial event) in ``f``'s causal
        past, so ``e -> f`` iff that count reaches ``index(e) + 1``.
        """
        if e == f:
            return False
        if not self.has_event(e):
            raise UnknownEventError(e)
        if f not in self._clocks:
            raise UnknownEventError(f)
        # Initial events precede all non-initial events (paper, Section 2.1);
        # distinct initial events are incomparable.
        if e[1] == 0:
            return f[1] != 0
        if f[1] == 0:
            return False
        return self._clocks[f][e[0]] >= e[1] + 1

    def leq(self, e: EventId, f: EventId) -> bool:
        """Reflexive causal order: ``e == f`` or ``e`` precedes ``f``."""
        return e == f or self.happened_before(e, f)

    def concurrent(self, e: EventId, f: EventId) -> bool:
        """True iff ``e`` and ``f`` are independent (incomparable)."""
        return (
            e != f
            and not self.happened_before(e, f)
            and not self.happened_before(f, e)
        )

    def pairwise_consistent(self, e: EventId, f: EventId) -> bool:
        """True iff some consistent cut passes through both events.

        Per the paper (Section 2.2), events ``e`` and ``f`` are *inconsistent*
        iff ``succ(e) -> f`` or ``succ(f) -> e`` (where a missing successor
        cannot cause inconsistency).  Two events on the same process are
        consistent only if they are the same event.
        """
        if e == f:
            return True
        if e[0] == f[0]:
            return False
        succ_e = self.successor(e)
        if succ_e is not None and self.leq(succ_e, f):
            return False
        succ_f = self.successor(f)
        if succ_f is not None and self.leq(succ_f, e):
            return False
        return True

    def causal_past_frontier(self, e: EventId) -> Tuple[int, ...]:
        """Frontier vector of the least consistent cut containing ``e``.

        Component ``j`` is the number of events of process ``j`` (counting the
        initial event) in the downward closure of ``e``; this equals the
        vector clock of ``e`` with every component clamped to at least 1
        (initial events belong to every cut).
        """
        clk = self.clock(e)
        return tuple(max(1, c) for c in clk)

    # ------------------------------------------------------------------
    # Structural classification (paper, Section 3.2)
    # ------------------------------------------------------------------
    def receive_events(self, process: int) -> List[EventId]:
        """Ids of the receive events of ``process`` in local order."""
        return [
            ev.event_id
            for ev in self.events_of(process)
            if ev.kind.is_receive
        ]

    def send_events(self, process: int) -> List[EventId]:
        """Ids of the send events of ``process`` in local order."""
        return [ev.event_id for ev in self.events_of(process) if ev.kind.is_send]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_process(self, process: int) -> None:
        if not 0 <= process < len(self._events):
            raise ComputationError(f"process {process} out of range")

    def _validate_events(self) -> None:
        for p, seq in enumerate(self._events):
            if not seq:
                raise ComputationError(f"process {p} has no initial event")
            for i, ev in enumerate(seq):
                if ev.process != p or ev.index != i:
                    raise ComputationError(
                        f"event at position ({p}, {i}) carries id "
                        f"({ev.process}, {ev.index})"
                    )
            if seq[0].kind is not EventKind.INITIAL:
                raise ComputationError(
                    f"first event of process {p} must have kind INITIAL"
                )
            if any(ev.kind is EventKind.INITIAL for ev in seq[1:]):
                raise ComputationError(
                    f"process {p} has an INITIAL event at a non-zero index"
                )

    def _validate_messages(self) -> None:
        for send_id, recv_id in self._messages:
            if not self.has_event(send_id):
                raise ComputationError(f"message send endpoint {send_id} unknown")
            if not self.has_event(recv_id):
                raise ComputationError(
                    f"message receive endpoint {recv_id} unknown"
                )
            if send_id == recv_id:
                raise ComputationError(
                    f"message with identical endpoints {send_id}"
                )
            if send_id[1] == 0 or recv_id[1] == 0:
                raise ComputationError("initial events cannot exchange messages")
            if not self.event(send_id).kind.is_send:
                raise ComputationError(
                    f"event {send_id} sends a message but has kind "
                    f"{self.event(send_id).kind.value}"
                )
            if not self.event(recv_id).kind.is_receive:
                raise ComputationError(
                    f"event {recv_id} receives a message but has kind "
                    f"{self.event(recv_id).kind.value}"
                )

    def _compute_clocks(self) -> None:
        """One Kahn-style topological pass computing all vector clocks.

        Each non-initial event depends on its local predecessor and on the
        send events of the messages it receives.  Initial events are given
        the clock with 1 in their own component; the running clock of each
        process starts at all-ones so that every non-initial event dominates
        every initial event, matching the paper's convention that initial
        events precede all other events.
        """
        n = self.num_processes
        indegree: Dict[EventId, int] = {}
        dependents: Dict[EventId, List[EventId]] = {}
        for p, seq in enumerate(self._events):
            for ev in seq[1:]:
                eid = ev.event_id
                deps = 1  # local predecessor (possibly the initial event)
                for src in self._received_at.get(eid, ()):
                    deps += 1
                    dependents.setdefault(src, []).append(eid)
                pred = (p, eid[1] - 1)
                dependents.setdefault(pred, []).append(eid)
                indegree[eid] = deps

        # Initial events are sources.
        ready: deque[EventId] = deque()
        running: List[VectorClock] = []
        ones = VectorClock((1,) * n)
        for p, seq in enumerate(self._events):
            init_id = seq[0].event_id
            self._clocks[init_id] = VectorClock(
                1 if j == p else 0 for j in range(n)
            )
            running.append(ones)
            for dep in dependents.get(init_id, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        # The initial event's clock above is only its *identity* timestamp for
        # comparisons among initial events; propagation uses ``running``.

        processed = 0
        per_process_clock: List[VectorClock] = list(running)
        while ready:
            eid = ready.popleft()
            p = eid[0]
            clk = per_process_clock[p]
            for src in self._received_at.get(eid, ()):
                clk = clk.merge(self._clocks[src])
            clk = clk.tick(p)
            self._clocks[eid] = clk
            per_process_clock[p] = clk
            processed += 1
            for dep in dependents.get(eid, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)

        if processed != self.total_events():
            raise CyclicComputationError(
                "event dependencies contain a cycle; "
                f"only {processed} of {self.total_events()} events orderable"
            )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Computation(processes={self.num_processes}, "
            f"events={self.total_events()}, messages={len(self._messages)})"
        )

    def label_index(self) -> Mapping[str, EventId]:
        """Map from event label to event id for all labelled events."""
        index: Dict[str, EventId] = {}
        for ev in self.all_events(include_initial=True):
            if ev.label is not None:
                if ev.label in index:
                    raise ComputationError(f"duplicate event label {ev.label!r}")
                index[ev.label] = ev.event_id
        return index
