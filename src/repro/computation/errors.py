"""Errors raised by the computation substrate."""

from __future__ import annotations

__all__ = [
    "ComputationError",
    "CyclicComputationError",
    "InvalidCutError",
    "UnknownEventError",
]


class ComputationError(Exception):
    """Base class for errors in the computation substrate."""


class CyclicComputationError(ComputationError):
    """The event dependencies contain a cycle, so no valid execution exists."""


class InvalidCutError(ComputationError):
    """A cut vector is malformed or does not denote a consistent cut."""


class UnknownEventError(ComputationError, KeyError):
    """An event id does not denote an event of this computation."""
