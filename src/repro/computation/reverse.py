"""Reversal of a computation.

Reversing a computation flips the partial order: each process's events are
listed backwards, every message edge swaps endpoints, and send/receive kinds
swap.  Consistent cuts of the reversed computation are exactly the
complements of consistent cuts of the original.

The detection layer uses reversal to solve the *send-ordered* special case
of singular-CNF detection (paper, Section 3.2) with the *receive-ordered*
scan: sends of the original are receives of the reversal, and pairwise
consistency transfers through the successor map — events ``e, f`` are
consistent in the original iff ``sigma(e), sigma(f)`` are consistent in the
reversal, where ``sigma(e)`` is the reversed image of ``succ(e)`` (the
reversed initial event when ``e`` is final).  See
:func:`reverse_event_partner` and the tests in
``tests/test_reverse.py`` which verify the correspondence exhaustively.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.computation.computation import Computation
from repro.events import Event, EventId, EventKind

__all__ = ["reverse_computation", "reverse_event_id", "reverse_event_partner"]

_REVERSED_KIND = {
    EventKind.INTERNAL: EventKind.INTERNAL,
    EventKind.SEND: EventKind.RECEIVE,
    EventKind.RECEIVE: EventKind.SEND,
    EventKind.SEND_RECEIVE: EventKind.SEND_RECEIVE,
}


def reverse_computation(computation: Computation) -> Computation:
    """The computation with the direction of time flipped.

    The original event ``(p, j)`` (j >= 1) becomes reversed event
    ``(p, m_p - j + 1)`` where ``m_p`` is the number of non-initial events of
    process ``p``; a fresh initial event heads each reversed process.
    """
    process_events: List[List[Event]] = []
    for p in range(computation.num_processes):
        original = computation.events_of(p)
        m = len(original) - 1
        reversed_events: List[Event] = [
            Event(process=p, index=0, kind=EventKind.INITIAL)
        ]
        for r in range(1, m + 1):
            src = original[m - r + 1]
            reversed_events.append(
                Event(
                    process=p,
                    index=r,
                    kind=_REVERSED_KIND[src.kind],
                    values=src.values,
                )
            )
        process_events.append(reversed_events)

    messages = [
        (reverse_event_id(computation, recv), reverse_event_id(computation, send))
        for send, recv in computation.messages
    ]
    return Computation(process_events, messages)


def reverse_event_id(computation: Computation, event_id: EventId) -> EventId:
    """Reversed id of a non-initial event of the original computation."""
    p, j = event_id
    if j == 0:
        raise ValueError("initial events have no reversed image")
    m = computation.num_events(p)
    return (p, m - j + 1)


def reverse_event_partner(computation: Computation, event_id: EventId) -> EventId:
    """The reversed event standing in for original event ``event_id``.

    A cut passes through ``e`` iff the complementary reversed cut passes
    through the reversed image of ``succ(e)`` — or through the reversed
    initial event when ``e`` is the final event of its process.  Pairwise
    consistency is preserved under this map.
    """
    succ = computation.successor(event_id)
    if succ is None:
        return (event_id[0], 0)
    return reverse_event_id(computation, succ)
