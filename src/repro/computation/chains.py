"""Chain covers of event sets (substrate S4).

Section 3.3 of the paper proposes covering the true events of each clause
group with *chains* (sets of events totally ordered by happened-before) and
enumerating one chain per group instead of one process per group.  The
fewer chains needed, the larger the exponential reduction; the minimum
number of chains covering a set equals, by Dilworth's theorem, the size of
its largest antichain, and is computed exactly by Fulkerson's reduction to
maximum bipartite matching.

This module implements:

* :func:`minimum_chain_cover` — exact minimum chain partition of a set of
  events of a computation, via Hopcroft–Karp matching (implemented here,
  no external dependency);
* :func:`greedy_chain_cover` — the cheap per-process cover (each process's
  true events are trivially a chain), used as the baseline the paper's
  subset-enumeration algorithm corresponds to;
* :class:`HopcroftKarp` — the matching engine, exposed because the tests
  cross-check it against a reference implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.computation.computation import Computation
from repro.events import EventId

__all__ = ["HopcroftKarp", "minimum_chain_cover", "greedy_chain_cover"]

_INF = float("inf")


class HopcroftKarp:
    """Maximum matching in a bipartite graph in O(E * sqrt(V)).

    Left vertices are ``0..n_left-1``; ``adjacency[u]`` lists the right
    vertices (``0..n_right-1``) adjacent to left vertex ``u``.
    """

    def __init__(self, n_left: int, n_right: int, adjacency: Sequence[Sequence[int]]):
        if len(adjacency) != n_left:
            raise ValueError("adjacency must have one entry per left vertex")
        for u, nbrs in enumerate(adjacency):
            for v in nbrs:
                if not 0 <= v < n_right:
                    raise ValueError(f"edge ({u}, {v}) out of range")
        self._n_left = n_left
        self._n_right = n_right
        self._adj = [list(nbrs) for nbrs in adjacency]
        #: match_left[u] = matched right vertex or -1; analogous match_right.
        self.match_left: List[int] = [-1] * n_left
        self.match_right: List[int] = [-1] * n_right
        self._dist: List[float] = [0.0] * n_left

    def solve(self) -> int:
        """Compute a maximum matching; returns its size."""
        matching = 0
        while self._bfs():
            for u in range(self._n_left):
                if self.match_left[u] == -1 and self._dfs(u):
                    matching += 1
        return matching

    def _bfs(self) -> bool:
        queue: deque[int] = deque()
        for u in range(self._n_left):
            if self.match_left[u] == -1:
                self._dist[u] = 0.0
                queue.append(u)
            else:
                self._dist[u] = _INF
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                w = self.match_right[v]
                if w == -1:
                    found_augmenting = True
                elif self._dist[w] == _INF:
                    self._dist[w] = self._dist[u] + 1
                    queue.append(w)
        return found_augmenting

    def _dfs(self, u: int) -> bool:
        for v in self._adj[u]:
            w = self.match_right[v]
            if w == -1 or (self._dist[w] == self._dist[u] + 1 and self._dfs(w)):
                self.match_left[u] = v
                self.match_right[v] = u
                return True
        self._dist[u] = _INF
        return False


def minimum_chain_cover(
    computation: Computation, event_ids: Iterable[EventId]
) -> List[List[EventId]]:
    """Partition ``event_ids`` into the minimum number of causal chains.

    Each returned chain is sorted by happened-before (which is a total order
    within a chain).  Uses Fulkerson's construction: build the bipartite
    graph with an edge (u, v) whenever ``u`` happened-before ``v``; a maximum
    matching of size m yields a partition into ``len(events) - m`` chains by
    following matched successor pointers.
    """
    events = list(dict.fromkeys(event_ids))  # dedupe, keep order
    n = len(events)
    if n == 0:
        return []
    index = {eid: i for i, eid in enumerate(events)}
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for i, e in enumerate(events):
        for j, f in enumerate(events):
            if i != j and computation.happened_before(e, f):
                adjacency[i].append(j)
    matcher = HopcroftKarp(n, n, adjacency)
    matcher.solve()

    # Chain heads are events that are not the matched successor of anyone.
    is_successor = [False] * n
    for u in range(n):
        v = matcher.match_left[u]
        if v != -1:
            is_successor[v] = True
    chains: List[List[EventId]] = []
    for start in range(n):
        if is_successor[start]:
            continue
        chain = [events[start]]
        u = start
        while matcher.match_left[u] != -1:
            u = matcher.match_left[u]
            chain.append(events[u])
        chains.append(chain)
    assert sum(len(c) for c in chains) == n
    return chains


def greedy_chain_cover(
    computation: Computation, event_ids: Iterable[EventId]
) -> List[List[EventId]]:
    """Per-process chain cover: events of one process form one chain.

    This is the trivial cover underlying the paper's one-process-per-group
    enumeration; its size equals the number of distinct processes hosting
    the events, an upper bound on the minimum cover.
    """
    by_process: Dict[int, List[EventId]] = {}
    for eid in dict.fromkeys(event_ids):
        by_process.setdefault(eid[0], []).append(eid)
    chains = []
    for process in sorted(by_process):
        chain = sorted(by_process[process], key=lambda eid: eid[1])
        chains.append(chain)
    return chains
