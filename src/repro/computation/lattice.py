"""The lattice of consistent cuts (substrate S3).

The consistent cuts of a computation, ordered by inclusion, form a
distributive lattice whose size is exponential in the number of processes in
general — the "combinatorial explosion" that motivates the paper.  This
module provides:

* breadth-first enumeration of all consistent cuts (by level = cut size),
  which is the engine of the Cooper–Marzullo baseline detector;
* restricted reachability (can the final cut be reached from the initial cut
  through cuts avoiding a predicate?), the engine of exact ``definitely``
  detection;
* linearizations (runs) of the computation;
* lattice statistics used by the benchmarks.

All functions treat the computation as immutable and never materialize more
state than a BFS frontier requires.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.computation.computation import Computation
from repro.computation.cut import Cut, final_cut, initial_cut
from repro.events import EventId

__all__ = [
    "iter_consistent_cuts",
    "iter_levels",
    "count_consistent_cuts",
    "reachable_avoiding",
    "find_path",
    "some_linearization",
    "iter_linearizations",
    "lattice_width",
]

CutPredicate = Callable[[Cut], bool]


def iter_consistent_cuts(computation: Computation) -> Iterator[Cut]:
    """Enumerate every consistent cut, in non-decreasing size order."""
    for level in iter_levels(computation):
        yield from level


def iter_levels(
    computation: Computation,
    bounds: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None,
) -> Iterator[List[Cut]]:
    """Enumerate the level sets of the lattice.

    Level *k* contains the consistent cuts with exactly *k* non-initial
    events.  Every run visits exactly one cut per level, which is why the
    Cooper–Marzullo ``definitely`` algorithm walks the lattice level by
    level.

    Successor expansion and level dedup run on plain frontier tuples via
    the computation's memoized causality index; each distinct cut is
    materialized once through the shared interner.

    With ``bounds`` — a ``(least, greatest)`` frontier pair, typically a
    slice box from :mod:`repro.slicing.dispatch` — the walk starts at the
    least frontier and never expands past the greatest, enumerating the
    levels of the box sublattice only.
    """
    from repro.obs.progress import tracker
    from repro.perf.causality import CausalityIndex

    index = CausalityIndex.of(computation)
    interner = index.interner
    if bounds is None:
        start, greatest = initial_cut(computation).frontier, None
    else:
        start, greatest = bounds
    current: List[Tuple[int, ...]] = [start]
    trk = tracker("lattice.cuts")
    while current:
        trk.step(len(current))
        yield [interner.get(frontier) for frontier in current]
        next_level: Set[Tuple[int, ...]] = set()
        for successors in index.successor_frontiers_batch(current):
            for nxt in successors:
                if greatest is not None and any(
                    c > g for c, g in zip(nxt, greatest)
                ):
                    continue
                next_level.add(nxt)
        current = sorted(next_level)


def count_consistent_cuts(computation: Computation) -> int:
    """Number of consistent cuts (size of the lattice)."""
    return sum(len(level) for level in iter_levels(computation))


def reachable_avoiding(
    computation: Computation,
    avoid: CutPredicate,
    start: Optional[Cut] = None,
    goal: Optional[Cut] = None,
    bounds: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None,
) -> bool:
    """Is ``goal`` reachable from ``start`` through cuts where ``avoid`` is false?

    Both endpoints must themselves avoid the predicate for the answer to be
    True.  Defaults: ``start`` = initial cut, ``goal`` = final cut.  This is
    exactly the complement query of ``definitely``: ``definitely(B)`` holds
    iff the final cut is *not* reachable from the initial cut while avoiding
    ``B`` (a run is a lattice path visiting one cut per level).

    ``bounds`` — a ``(least, greatest)`` frontier box that must
    over-approximate the avoided region (``avoid(C) ⟹ C`` inside the box,
    e.g. the slice box of :func:`repro.slicing.dispatch.avoidance_bounds`)
    — lets the search skip evaluating ``avoid`` on cuts below the box and
    declare success the moment it climbs above the box while staying
    inside ``[start, goal]``: every cut of the remaining interval
    dominates the escaped cut, so none of them can be avoided-region
    members.
    """
    start = start if start is not None else initial_cut(computation)
    goal = goal if goal is not None else final_cut(computation)
    if avoid(start) or avoid(goal):
        return False
    if start == goal:
        return True
    if not goal.subset_of(start) and not start.subset_of(goal):
        pass  # incomparable cuts can never reach each other; caught below
    from repro.obs.progress import tracker

    least, greatest = bounds if bounds is not None else (None, None)
    seen: Set[Cut] = {start}
    queue: deque[Cut] = deque([start])
    trk = tracker("detect.cuts", check_every=64)
    while queue:
        cut = queue.popleft()
        trk.step()
        for nxt in cut.successors():
            if nxt in seen:
                continue
            if not nxt.subset_of(goal):
                continue  # moved outside the interval [start, goal]
            if nxt == goal:
                return True
            if greatest is not None and any(
                c > g for c, g in zip(nxt.frontier, greatest)
            ):
                # Escaped above the box: every cut of [nxt, goal] keeps
                # that component above the box and cannot be avoided, so
                # any completion of the current path reaches the goal.
                return True
            if least is not None and any(
                c < l for c, l in zip(nxt.frontier, least)
            ):
                pass  # below the box: avoid() is false for free
            elif avoid(nxt):
                continue
            seen.add(nxt)
            queue.append(nxt)
    return False


def find_path(
    computation: Computation,
    start: Cut,
    goal: Cut,
    avoid: Optional[CutPredicate] = None,
) -> Optional[List[Cut]]:
    """A lattice path from ``start`` to ``goal`` (optionally avoiding cuts).

    Returns the list of cuts along one shortest path, inclusive of both
    endpoints, or None when no such path exists.  Used by the ±1 sum
    algorithm's witness extraction (paper, Theorem 4).
    """
    if avoid is not None and (avoid(start) or avoid(goal)):
        return None
    if not start.subset_of(goal):
        return None
    if start == goal:
        return [start]
    parent: Dict[Cut, Cut] = {}
    seen: Set[Cut] = {start}
    queue: deque[Cut] = deque([start])
    while queue:
        cut = queue.popleft()
        for nxt in cut.successors():
            if nxt in seen or not nxt.subset_of(goal):
                continue
            if avoid is not None and avoid(nxt):
                continue
            parent[nxt] = cut
            if nxt == goal:
                path = [nxt]
                while path[-1] != start:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            seen.add(nxt)
            queue.append(nxt)
    return None


def some_linearization(computation: Computation) -> List[EventId]:
    """One run of the computation: a total order consistent with causality.

    Produced greedily by always executing the lowest-numbered enabled
    process, so the result is deterministic.  Initial events are not listed
    (they precede everything by definition).
    """
    order: List[EventId] = []
    cut = initial_cut(computation)
    target = final_cut(computation)
    while cut != target:
        for p in range(computation.num_processes):
            if cut.is_enabled(p):
                cut = cut.advance(p)
                order.append(cut.last_event_id(p))
                break
        else:  # pragma: no cover - impossible for acyclic computations
            raise RuntimeError("no enabled event but final cut not reached")
    return order


def iter_linearizations(
    computation: Computation, limit: Optional[int] = None
) -> Iterator[List[EventId]]:
    """Enumerate runs (total orders) of the computation.

    The number of runs is exponential; pass ``limit`` to stop early.  Runs
    are produced in lexicographic order of the process choices.
    """
    produced = 0
    target = final_cut(computation)

    def extend(
        cut: Cut, prefix: List[EventId]
    ) -> Iterator[List[EventId]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if cut == target:
            produced += 1
            yield list(prefix)
            return
        for p in range(computation.num_processes):
            if cut.is_enabled(p):
                nxt = cut.advance(p)
                prefix.append(nxt.last_event_id(p))
                yield from extend(nxt, prefix)
                prefix.pop()
                if limit is not None and produced >= limit:
                    return

    yield from extend(initial_cut(computation), [])


def lattice_width(computation: Computation) -> int:
    """Maximum number of consistent cuts in any single level.

    A proxy for the per-level work of level-by-level algorithms; grows
    exponentially with the number of truly concurrent processes.
    """
    return max(len(level) for level in iter_levels(computation))
