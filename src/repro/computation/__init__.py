"""Computation poset, cuts, lattice and chain machinery (substrates S2–S4)."""

from repro.computation.builder import ComputationBuilder
from repro.computation.chains import (
    HopcroftKarp,
    greedy_chain_cover,
    minimum_chain_cover,
)
from repro.computation.computation import Computation, MessageEdge
from repro.computation.cut import (
    Cut,
    final_cut,
    initial_cut,
    least_consistent_cut,
)
from repro.computation.errors import (
    ComputationError,
    CyclicComputationError,
    InvalidCutError,
    UnknownEventError,
)
from repro.computation.reverse import (
    reverse_computation,
    reverse_event_id,
    reverse_event_partner,
)
from repro.computation.lattice import (
    count_consistent_cuts,
    find_path,
    iter_consistent_cuts,
    iter_levels,
    iter_linearizations,
    lattice_width,
    reachable_avoiding,
    some_linearization,
)

__all__ = [
    "Computation",
    "ComputationBuilder",
    "ComputationError",
    "Cut",
    "CyclicComputationError",
    "HopcroftKarp",
    "InvalidCutError",
    "MessageEdge",
    "UnknownEventError",
    "count_consistent_cuts",
    "final_cut",
    "find_path",
    "greedy_chain_cover",
    "initial_cut",
    "iter_consistent_cuts",
    "iter_levels",
    "iter_linearizations",
    "lattice_width",
    "least_consistent_cut",
    "minimum_chain_cover",
    "reachable_avoiding",
    "reverse_computation",
    "reverse_event_id",
    "reverse_event_partner",
    "some_linearization",
]
