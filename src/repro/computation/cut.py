"""Cuts and consistent cuts (global states).

A *cut* of a computation assigns to each process a prefix of its local
computation (always containing the initial event).  We represent a cut by its
*frontier vector* ``(c_1, ..., c_n)`` where ``c_i`` is the number of events of
process *i* in the cut, counting the initial event, so ``1 <= c_i <=
len(events of i)``.  The cut *passes through* event ``(i, c_i - 1)`` on each
process — exactly the paper's notion.

A cut is *consistent* iff it is downward closed under happened-before: every
event it contains has all its causal predecessors inside the cut.  With
vector clocks this is an O(n^2) check (n frontier events, O(n) comparison
each).

The set of consistent cuts ordered by inclusion forms a distributive lattice;
:mod:`repro.computation.lattice` provides enumeration and reachability over
it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.computation.computation import Computation
from repro.computation.errors import InvalidCutError
from repro.events import Event, EventId

__all__ = [
    "Cut",
    "initial_cut",
    "final_cut",
    "least_consistent_cut",
]


class Cut:
    """A cut of a computation in frontier-vector form.

    Instances are immutable and hashable; they compare equal iff they denote
    the same frontier of the same computation (computation identity is by
    object, as computations are immutable).
    """

    __slots__ = ("_computation", "_frontier", "_hash")

    def __init__(self, computation: Computation, frontier: Sequence[int]):
        frontier_t = tuple(int(c) for c in frontier)
        if len(frontier_t) != computation.num_processes:
            raise InvalidCutError(
                f"frontier has {len(frontier_t)} components for "
                f"{computation.num_processes} processes"
            )
        for p, c in enumerate(frontier_t):
            limit = len(computation.events_of(p))
            if not 1 <= c <= limit:
                raise InvalidCutError(
                    f"frontier component {c} for process {p} outside [1, {limit}]"
                )
        self._computation = computation
        self._frontier = frontier_t
        self._hash = hash(frontier_t)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def computation(self) -> Computation:
        """The computation this cut belongs to."""
        return self._computation

    @property
    def frontier(self) -> Tuple[int, ...]:
        """The frontier vector (events per process, counting initial)."""
        return self._frontier

    def last_event_id(self, process: int) -> EventId:
        """Id of the event the cut passes through on ``process``."""
        return (process, self._frontier[process] - 1)

    def last_event(self, process: int) -> Event:
        """The event the cut passes through on ``process``."""
        return self._computation.event(self.last_event_id(process))

    def frontier_events(self) -> List[Event]:
        """The events the cut passes through, one per process."""
        return [
            self.last_event(p) for p in range(self._computation.num_processes)
        ]

    def contains(self, event_id: EventId) -> bool:
        """True iff the event is inside the cut."""
        process, index = event_id
        if not self._computation.has_event(event_id):
            raise InvalidCutError(f"event {event_id} not in computation")
        return index < self._frontier[process]

    def passes_through(self, event_id: EventId) -> bool:
        """True iff the event is the last cut event on its process."""
        process, index = event_id
        if not self._computation.has_event(event_id):
            raise InvalidCutError(f"event {event_id} not in computation")
        return index == self._frontier[process] - 1

    def size(self) -> int:
        """Number of non-initial events inside the cut."""
        return sum(c - 1 for c in self._frontier)

    # ------------------------------------------------------------------
    # Consistency and lattice structure
    # ------------------------------------------------------------------
    def is_consistent(self) -> bool:
        """True iff the cut is downward closed under happened-before."""
        comp = self._computation
        for p in range(comp.num_processes):
            if self._frontier[p] == 1:
                continue  # only the initial event; nothing to check
            clk = comp.clock(self.last_event_id(p))
            for q in range(comp.num_processes):
                if clk[q] > self._frontier[q]:
                    return False
        return True

    def is_enabled(self, process: int) -> bool:
        """True iff appending the next event of ``process`` stays consistent.

        Only meaningful for consistent cuts: for those, the next event of
        ``process`` is *enabled* iff all its causal predecessors are already
        in the cut.
        """
        comp = self._computation
        next_index = self._frontier[process]
        if next_index >= len(comp.events_of(process)):
            return False
        clk = comp.clock((process, next_index))
        for q in range(comp.num_processes):
            if q == process:
                continue
            if clk[q] > self._frontier[q]:
                return False
        return True

    def advance(self, process: int) -> "Cut":
        """The cut with the next event of ``process`` appended."""
        comp = self._computation
        if self._frontier[process] >= len(comp.events_of(process)):
            raise InvalidCutError(
                f"process {process} already at its final event"
            )
        frontier = list(self._frontier)
        frontier[process] += 1
        return Cut(comp, frontier)

    def retreat(self, process: int) -> "Cut":
        """The cut with the last event of ``process`` removed."""
        if self._frontier[process] <= 1:
            raise InvalidCutError(
                f"process {process} already at its initial event"
            )
        frontier = list(self._frontier)
        frontier[process] -= 1
        return Cut(self._computation, frontier)

    def successors(self) -> Iterator["Cut"]:
        """Consistent cuts that immediately succeed this consistent cut."""
        for p in range(self._computation.num_processes):
            if self.is_enabled(p):
                yield self.advance(p)

    def predecessors(self) -> Iterator["Cut"]:
        """Consistent cuts that immediately precede this consistent cut.

        Removing the last event of process ``p`` keeps the cut consistent iff
        no other frontier event causally depends on it.
        """
        comp = self._computation
        for p in range(comp.num_processes):
            if self._frontier[p] == 1:
                continue
            removed = self.last_event_id(p)
            blocked = False
            for q in range(comp.num_processes):
                if q == p or self._frontier[q] == 1:
                    continue
                clk = comp.clock(self.last_event_id(q))
                if clk[p] >= self._frontier[p]:
                    blocked = True
                    break
            if not blocked:
                yield self.retreat(p)

    def union(self, other: "Cut") -> "Cut":
        """Componentwise maximum (join in the cut lattice)."""
        self._check_same(other)
        return Cut(
            self._computation,
            [max(a, b) for a, b in zip(self._frontier, other._frontier)],
        )

    def intersection(self, other: "Cut") -> "Cut":
        """Componentwise minimum (meet in the cut lattice)."""
        self._check_same(other)
        return Cut(
            self._computation,
            [min(a, b) for a, b in zip(self._frontier, other._frontier)],
        )

    def subset_of(self, other: "Cut") -> bool:
        """True iff every event of this cut is in ``other`` (reachability)."""
        self._check_same(other)
        return all(a <= b for a, b in zip(self._frontier, other._frontier))

    # ------------------------------------------------------------------
    # Predicate-evaluation support
    # ------------------------------------------------------------------
    def value(self, process: int, name: str, default: Any = None) -> Any:
        """Value of local variable ``name`` of ``process`` at this cut."""
        return self.last_event(process).value(name, default)

    def values(self, name: str, default: Any = None) -> List[Any]:
        """Value of ``name`` on every process at this cut, in process order."""
        return [
            self.value(p, name, default)
            for p in range(self._computation.num_processes)
        ]

    def variable_sum(self, name: str) -> int:
        """Sum over processes of integer variable ``name`` at this cut."""
        total = 0
        for p in range(self._computation.num_processes):
            total += int(self.value(p, name, 0))
        return total

    def crossing_messages(self) -> List[Tuple[EventId, EventId]]:
        """Messages in flight at this cut (sent inside, received outside).

        The channel state of the global state this cut denotes — what a
        Chandy–Lamport snapshot records as channel contents.
        """
        return [
            (send, recv)
            for send, recv in self._computation.messages
            if self.contains(send) and not self.contains(recv)
        ]

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def _check_same(self, other: "Cut") -> None:
        if self._computation is not other._computation:
            raise InvalidCutError("cuts belong to different computations")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cut):
            return NotImplemented
        return (
            self._computation is other._computation
            and self._frontier == other._frontier
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Cut{self._frontier}"


def initial_cut(computation: Computation) -> Cut:
    """The least consistent cut: only the initial events."""
    return Cut(computation, (1,) * computation.num_processes)


def final_cut(computation: Computation) -> Cut:
    """The greatest consistent cut: all events."""
    return Cut(
        computation,
        [len(computation.events_of(p)) for p in range(computation.num_processes)],
    )


def least_consistent_cut(
    computation: Computation, event_ids: Iterable[EventId]
) -> Optional[Cut]:
    """Least consistent cut passing through all given events, if one exists.

    This realizes the paper's Observation 1: pairwise-consistent events
    (not necessarily one per process) always admit a consistent cut passing
    through all of them — namely the union of their causal pasts, raised to
    include every process's initial event.  Returns None when no consistent
    cut passes through every listed event (i.e. some pair is inconsistent or
    two distinct events share a process).
    """
    ids = list(event_ids)
    frontier: List[int] = [1] * computation.num_processes
    required: Dict[int, int] = {}
    for eid in ids:
        past = computation.causal_past_frontier(eid)
        for q, c in enumerate(past):
            if c > frontier[q]:
                frontier[q] = c
        p, idx = eid
        want = idx + 1
        if p in required and required[p] != want:
            return None  # two distinct events on the same process
        required[p] = want
    cut = Cut(computation, frontier)
    if not cut.is_consistent():
        return None
    for p, want in required.items():
        if cut.frontier[p] != want:
            return None  # some event was overtaken by another's causal past
    return cut
