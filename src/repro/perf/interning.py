"""Cut interning keyed on frontier tuples.

The lattice-walking engines (Cooper–Marzullo, ``iter_levels``) used to
build a fresh :class:`~repro.computation.cut.Cut` per *edge* of the BFS —
each construction re-validating the frontier against every process and
re-hashing it for ``seen``-set membership.  A :class:`CutInterner` keeps
one canonical ``Cut`` per frontier tuple, so

* ``seen``-set membership happens on plain tuples (hashed once by the
  dict machinery, no object construction on the duplicate path), and
* each distinct consistent cut is materialized exactly once per
  computation, however many queries or BFS edges reach it.

The interner is obtained from
:attr:`repro.perf.causality.CausalityIndex.interner` (shared, living as
long as the computation) or constructed standalone for query-local use.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.computation.computation import Computation
from repro.computation.cut import Cut

__all__ = ["CutInterner"]


class CutInterner:
    """Canonical ``Cut`` instances keyed by frontier tuple."""

    __slots__ = ("_computation", "_cuts", "hits", "misses")

    def __init__(self, computation: Computation):
        self._computation = computation
        self._cuts: Dict[Tuple[int, ...], Cut] = {}
        self.hits = 0
        self.misses = 0

    def get(self, frontier: Tuple[int, ...]) -> Cut:
        """The canonical cut with this frontier (constructed on first use)."""
        cut = self._cuts.get(frontier)
        if cut is None:
            self.misses += 1
            cut = Cut(self._computation, frontier)
            self._cuts[frontier] = cut
        else:
            self.hits += 1
        return cut

    def intern(self, cut: Cut) -> Cut:
        """The canonical instance equal to ``cut`` (registering it if new)."""
        canonical = self._cuts.get(cut.frontier)
        if canonical is None:
            self.misses += 1
            self._cuts[cut.frontier] = cut
            return cut
        self.hits += 1
        return canonical

    def __len__(self) -> int:
        return len(self._cuts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CutInterner(cuts={len(self._cuts)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
