"""Per-computation memoized causality index (the detection hot path).

Every engine in :mod:`repro.detection` ultimately spends its time on the
same three questions: *what is the local successor of this event*, *does
this event causally precede that one*, and *which events make this clause
true*.  The paper's Section 3.3 enumeration engines ask them once per
CPDHB scan — and run up to ``prod c_j`` scans over the **same immutable
computation**, re-deriving identical answers on every scan.

:class:`CausalityIndex` hoists those answers into flat per-computation
structures built once and shared by every scan (and, through the
module-level weak cache, by every query against the same computation):

* raw vector-clock tuples (``_clk[p][i]``), giving a ``leq`` fast path
  with no :class:`~repro.events.vector_clock.VectorClock` indirection and
  no per-call id validation;
* precomputed local-successor arrays (``successor`` becomes a list
  lookup);
* memoized per-clause true-event lists and minimum chain covers, so the
  process-choice/chain-choice engines and the auto dispatcher stop
  recomputing them;
* memoized receive-/send-orderedness verdicts per group structure;
* consistent-successor frontier expansion for lattice walks
  (:meth:`successor_frontiers`), letting BFS engines track plain frontier
  tuples instead of constructing and re-hashing :class:`Cut` objects per
  edge.

Indices are cached per computation in a :class:`weakref.WeakKeyDictionary`
— they live exactly as long as the computation they describe.  All cache
hit/miss tallies are kept as plain integers (always cheap) and mirrored
into the metrics registry as ``perf.*`` counters by
:meth:`maybe_flush_metrics` when observability is enabled.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

from repro.computation.chains import minimum_chain_cover
from repro.computation.computation import Computation
from repro.events import EventId
from repro.obs.config import STATE
from repro.obs.metrics import registry

__all__ = ["CausalityIndex"]

#: Chains of a cover, as immutable event-id tuples.
ChainCover = Tuple[Tuple[EventId, ...], ...]

_INDEX_CACHE: "weakref.WeakKeyDictionary[Computation, CausalityIndex]" = (
    weakref.WeakKeyDictionary()
)


class CausalityIndex:
    """Flat, memoized causality structures for one immutable computation.

    Obtain through :meth:`of` (cached per computation) rather than the
    constructor; building the index costs one pass over all events, and
    the point is to pay it once.
    """

    __slots__ = (
        "computation",
        "num_processes",
        "_lengths",
        "_clk",
        "_succ",
        "_true_on",
        "_true_all",
        "_covers",
        "_orderedness",
        "_interner",
        "_matrix",
        "counters",
        "_flushed",
        "__weakref__",
    )

    #: Tally of `of()` lookups served from / missing the weak cache.
    index_hits: int = 0
    index_misses: int = 0

    def __init__(self, computation: Computation):
        self.computation = computation
        n = computation.num_processes
        self.num_processes = n
        lengths = [len(computation.events_of(p)) for p in range(n)]
        self._lengths: List[int] = lengths
        # Raw clock tuples: _clk[p][i] is the component tuple of event (p, i).
        self._clk: List[List[Tuple[int, ...]]] = [
            [
                computation.clock((p, i)).components
                for i in range(lengths[p])
            ]
            for p in range(n)
        ]
        # Local-successor array: _succ[p][i] is succ((p, i)) or None.
        self._succ: List[List[Optional[EventId]]] = [
            [
                (p, i + 1) if i + 1 < lengths[p] else None
                for i in range(lengths[p])
            ]
            for p in range(n)
        ]
        self._true_on: Dict[object, Tuple[EventId, ...]] = {}
        self._true_all: Dict[object, Tuple[EventId, ...]] = {}
        self._covers: Dict[object, ChainCover] = {}
        self._orderedness: Dict[object, bool] = {}
        self._interner = None
        self._matrix = None
        self.counters: Dict[str, int] = {
            "clause_cache.hits": 0,
            "clause_cache.misses": 0,
            "chain_cover.hits": 0,
            "chain_cover.misses": 0,
            "orderedness.hits": 0,
            "orderedness.misses": 0,
        }
        self._flushed: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, computation: Computation) -> "CausalityIndex":
        """The (weakly cached) index of ``computation``."""
        index = _INDEX_CACHE.get(computation)
        if index is None:
            cls.index_misses += 1
            index = cls(computation)
            _INDEX_CACHE[computation] = index
        else:
            cls.index_hits += 1
        return index

    # ------------------------------------------------------------------
    # Causality fast paths
    # ------------------------------------------------------------------
    def successor(self, e: EventId) -> Optional[EventId]:
        """Local successor ``succ(e)`` or None, as a list lookup."""
        return self._succ[e[0]][e[1]]

    def clock_tuple(self, e: EventId) -> Tuple[int, ...]:
        """The raw Fidge–Mattern component tuple of ``e``."""
        return self._clk[e[0]][e[1]]

    def happened_before(self, e: EventId, f: EventId) -> bool:
        """Irreflexive causal order, without per-call id validation."""
        if e == f:
            return False
        ei = e[1]
        if ei == 0:
            return f[1] != 0
        if f[1] == 0:
            return False
        return self._clk[f[0]][f[1]][e[0]] > ei

    def leq(self, e: EventId, f: EventId) -> bool:
        """Reflexive causal order (``e == f`` or ``e`` precedes ``f``)."""
        if e == f:
            return True
        ei = e[1]
        if ei == 0:
            return f[1] != 0
        if f[1] == 0:
            return False
        return self._clk[f[0]][f[1]][e[0]] > ei

    def concurrent(self, e: EventId, f: EventId) -> bool:
        """True iff the events are incomparable."""
        return (
            e != f
            and not self.happened_before(e, f)
            and not self.happened_before(f, e)
        )

    def pairwise_consistent(self, e: EventId, f: EventId) -> bool:
        """Some consistent cut passes through both events (Section 2.2)."""
        if e == f:
            return True
        if e[0] == f[0]:
            return False
        succ_e = self._succ[e[0]][e[1]]
        if succ_e is not None and self.leq(succ_e, f):
            return False
        succ_f = self._succ[f[0]][f[1]]
        if succ_f is not None and self.leq(succ_f, e):
            return False
        return True

    def successor_frontiers(
        self, frontier: Tuple[int, ...]
    ) -> List[Tuple[int, ...]]:
        """Frontiers of the consistent cuts immediately above ``frontier``.

        Equivalent to ``[c.frontier for c in Cut(comp, frontier).successors()]``
        for a consistent frontier, but works on plain tuples: no ``Cut``
        construction, no frontier re-validation, no clock-object indexing.
        """
        out: List[Tuple[int, ...]] = []
        lengths = self._lengths
        clk_all = self._clk
        for p in range(self.num_processes):
            nxt = frontier[p]
            if nxt >= lengths[p]:
                continue
            clk = clk_all[p][nxt]
            enabled = True
            for q, have in enumerate(frontier):
                if q != p and clk[q] > have:
                    enabled = False
                    break
            if enabled:
                out.append(frontier[:p] + (nxt + 1,) + frontier[p + 1 :])
        return out

    def successor_frontiers_batch(
        self, frontiers: Sequence[Tuple[int, ...]]
    ) -> List[List[Tuple[int, ...]]]:
        """Per-input successor frontiers for a batch of frontiers.

        Equivalent to ``[self.successor_frontiers(f) for f in frontiers]``
        but routed through the :class:`ClockMatrix` frontier-consistency
        kernel when numpy is active and the batch is worth one array
        round trip.
        """
        if len(frontiers) >= 4:
            matrix = self.matrix
            if matrix.use_numpy:
                return matrix.successor_frontiers_batch(frontiers)
        return [self.successor_frontiers(f) for f in frontiers]

    # ------------------------------------------------------------------
    # Per-clause memoization (singular k-CNF engines)
    # ------------------------------------------------------------------
    def clause_true_events_on(self, cl, process: int) -> Tuple[EventId, ...]:
        """Memoized events of ``process`` making some literal of ``cl`` true."""
        key = (cl, process)
        cached = self._true_on.get(key)
        if cached is not None:
            self.counters["clause_cache.hits"] += 1
            return cached
        self.counters["clause_cache.misses"] += 1
        literals = [lit for lit in cl.literals if lit.process == process]
        if literals:
            result = tuple(
                event.event_id
                for event in self.computation.events_of(process)
                if any(lit.holds_after(event) for lit in literals)
            )
        else:
            result = ()
        self._true_on[key] = result
        return result

    def clause_true_events(self, cl) -> Tuple[EventId, ...]:
        """Memoized true events of the clause across its whole group."""
        cached = self._true_all.get(cl)
        if cached is not None:
            self.counters["clause_cache.hits"] += 1
            return cached
        self.counters["clause_cache.misses"] += 1
        result: List[EventId] = []
        for process in sorted(cl.processes()):
            result.extend(self.clause_true_events_on(cl, process))
        out = tuple(result)
        self._true_all[cl] = out
        return out

    def chain_cover(self, cl) -> ChainCover:
        """Memoized minimum chain cover of the clause's true events."""
        cached = self._covers.get(cl)
        if cached is not None:
            self.counters["chain_cover.hits"] += 1
            return cached
        self.counters["chain_cover.misses"] += 1
        trues = self.clause_true_events(cl)
        cover = tuple(
            tuple(chain)
            for chain in minimum_chain_cover(self.computation, list(trues))
        )
        self._covers[cl] = cover
        return cover

    # ------------------------------------------------------------------
    # Memoized structural classification (Section 3.2 dispatch)
    # ------------------------------------------------------------------
    def _totally_ordered(self, ids: Sequence[EventId]) -> bool:
        for i, e in enumerate(ids):
            for f in ids[i + 1 :]:
                if not self.leq(e, f) and not self.leq(f, e):
                    return False
        return True

    def is_receive_ordered(self, groups: Sequence[Sequence[int]]) -> bool:
        """Memoized receive-orderedness with respect to ``groups``."""
        key = ("recv", tuple(tuple(g) for g in groups))
        cached = self._orderedness.get(key)
        if cached is not None:
            self.counters["orderedness.hits"] += 1
            return cached
        self.counters["orderedness.misses"] += 1
        result = all(
            self._totally_ordered(
                [
                    eid
                    for p in group
                    for eid in self.computation.receive_events(p)
                ]
            )
            for group in groups
        )
        self._orderedness[key] = result
        return result

    def is_send_ordered(self, groups: Sequence[Sequence[int]]) -> bool:
        """Memoized send-orderedness with respect to ``groups``."""
        key = ("send", tuple(tuple(g) for g in groups))
        cached = self._orderedness.get(key)
        if cached is not None:
            self.counters["orderedness.hits"] += 1
            return cached
        self.counters["orderedness.misses"] += 1
        result = all(
            self._totally_ordered(
                [
                    eid
                    for p in group
                    for eid in self.computation.send_events(p)
                ]
            )
            for group in groups
        )
        self._orderedness[key] = result
        return result

    # ------------------------------------------------------------------
    # Struct-of-arrays clock matrix
    # ------------------------------------------------------------------
    @property
    def matrix(self):
        """The computation's shared :class:`~repro.perf.clockmatrix.ClockMatrix`.

        Built lazily from the raw clock table; pure-Python kernels when
        numpy is unavailable (callers never branch on the backend).
        """
        if self._matrix is None:
            from repro.perf.clockmatrix import ClockMatrix

            self._matrix = ClockMatrix(self._clk, self._lengths)
        return self._matrix

    # ------------------------------------------------------------------
    # Cut interning
    # ------------------------------------------------------------------
    @property
    def interner(self):
        """The computation's shared :class:`~repro.perf.interning.CutInterner`."""
        if self._interner is None:
            from repro.perf.interning import CutInterner

            self._interner = CutInterner(self.computation)
        return self._interner

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def maybe_flush_metrics(self) -> None:
        """Mirror tally deltas into ``perf.*`` registry counters.

        Engines call this once per query; with observability disabled it
        is a single attribute check.  Deltas (not totals) are pushed so
        repeated flushes never double-count.
        """
        if not STATE.enabled:
            return
        reg = registry()
        for key, value in self.counters.items():
            delta = value - self._flushed.get(key, 0)
            if delta:
                reg.counter(f"perf.{key}").inc(delta)
                self._flushed[key] = value
        if self._interner is not None:
            for key, value in (
                ("cut_intern.hits", self._interner.hits),
                ("cut_intern.misses", self._interner.misses),
            ):
                delta = value - self._flushed.get(key, 0)
                if delta:
                    reg.counter(f"perf.{key}").inc(delta)
                    self._flushed[key] = value
        if self._matrix is not None:
            for short, value in self._matrix.counters.items():
                key = f"clockmatrix.{short}"
                delta = value - self._flushed.get(key, 0)
                if delta:
                    reg.counter(f"perf.{key}").inc(delta)
                    self._flushed[key] = value
        cls = type(self)
        for key, value in (
            ("index.hits", cls.index_hits),
            ("index.misses", cls.index_misses),
        ):
            # Class-wide tallies: flush the global delta through gauges to
            # avoid cross-index double counting of a shared total.
            reg.gauge(f"perf.{key}").set(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CausalityIndex(processes={self.num_processes}, "
            f"clauses_cached={len(self._true_all)}, "
            f"covers_cached={len(self._covers)})"
        )
