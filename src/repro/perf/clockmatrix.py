"""Struct-of-arrays vector-clock matrix with batched causality kernels.

Every hot comparison in the detection engines reduces to reading one
component of one Fidge–Mattern clock: with the repo's clock convention
(initial events carry unit vectors, the running clock of each process
starts at all-ones) the *reflexive* causal order is, uniformly and with
no initial-event special cases,

    ``e = (p, i) ⊑ f``   ⟺   ``clk(f)[p] >= i + 1``

and Section 2.2 pairwise consistency of ``e = (p, i)`` and ``f = (q, j)``
is

    ``clk(f)[p] <= i + 1``  ∧  ``clk(e)[q] <= j + 1``

(again with no edge cases: a last event can never be overtaken because no
clock component exceeds the process length, and same-process pairs reduce
to index equality).

:class:`ClockMatrix` stores **all** clocks of a computation in one dense
``(total_events, n)`` integer matrix — rows in process-major order, plus
flat per-row ``proc``/``pos`` arrays (``pos`` is the own-component
``i + 1``) — so those formulas become *batched* array expressions instead
of per-pair Python calls:

* :meth:`leq_rows` / :meth:`happened_before_rows` — element-wise causal
  order over row vectors;
* :meth:`consistent_rows` — element-wise pairwise consistency;
* :meth:`advance_enabled` / :meth:`successor_frontiers_batch` — the
  frontier-consistency kernel: which processes may advance from each of a
  batch of consistent frontiers (the inner loop of every lattice walk);
* :meth:`join_rows` — componentwise clock join (the *need* vector of the
  work-optimal elimination rounds, :mod:`repro.detection.work_optimal`);
* :meth:`closure_at_least` — least consistent cut above a frontier with a
  per-process floor, as a vectorized fixpoint.

When numpy is unavailable (or ``REPRO_NO_NUMPY`` is set) every kernel
falls back to pure-Python loops over the same flat arrays, bit-identical
by construction; callers never branch.  Obtain the matrix through
:attr:`repro.perf.causality.CausalityIndex.matrix` so it is built once
per computation; kernel usage is tallied in :attr:`counters` and mirrored
to ``perf.clockmatrix.*`` metrics by the index.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

__all__ = ["ClockMatrix", "numpy_available", "HAVE_NUMPY"]

EventId = Tuple[int, int]
Frontier = Tuple[int, ...]

try:  # pragma: no cover - exercised via the no-numpy CI job
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None


def numpy_available() -> bool:
    """True iff the vectorized kernels are active in this process."""
    return HAVE_NUMPY


class ClockMatrix:
    """Dense clock matrix of one computation plus batched kernels.

    Args:
        clocks: ``clocks[p][i]`` is the component tuple of event ``(p, i)``
            (exactly the raw-clock table of
            :class:`~repro.perf.causality.CausalityIndex`).
        lengths: Events per process, initial event included.
        use_numpy: Force the pure-Python kernels with ``False``; default
            follows :func:`numpy_available`.
    """

    __slots__ = (
        "num_processes",
        "lengths",
        "offsets",
        "total_rows",
        "use_numpy",
        "clk",
        "proc",
        "pos",
        "counters",
    )

    def __init__(
        self,
        clocks: Sequence[Sequence[Tuple[int, ...]]],
        lengths: Sequence[int],
        use_numpy: Optional[bool] = None,
    ):
        n = len(lengths)
        self.num_processes = n
        self.lengths: List[int] = list(lengths)
        offsets: List[int] = []
        total = 0
        for length in self.lengths:
            offsets.append(total)
            total += length
        self.offsets = offsets
        self.total_rows = total
        self.use_numpy = HAVE_NUMPY if use_numpy is None else bool(use_numpy)
        self.counters = {"batch_calls": 0, "rows": 0}
        flat_proc: List[int] = []
        flat_pos: List[int] = []
        for p, length in enumerate(self.lengths):
            flat_proc.extend([p] * length)
            flat_pos.extend(range(1, length + 1))
        if self.use_numpy:
            matrix = _np.empty((total, n), dtype=_np.int64)
            for p in range(n):
                base = offsets[p]
                for i, components in enumerate(clocks[p]):
                    matrix[base + i] = components
            self.clk = matrix
            self.proc = _np.asarray(flat_proc, dtype=_np.int64)
            self.pos = _np.asarray(flat_pos, dtype=_np.int64)
        else:
            self.clk = [
                tuple(clocks[p][i])
                for p in range(n)
                for i in range(self.lengths[p])
            ]
            self.proc = flat_proc
            self.pos = flat_pos

    # ------------------------------------------------------------------
    # Row addressing
    # ------------------------------------------------------------------
    def row(self, event: EventId) -> int:
        """Matrix row of one event id."""
        return self.offsets[event[0]] + event[1]

    def rows_of(self, events: Sequence[EventId]):
        """Matrix rows of a batch of event ids (array / list)."""
        offsets = self.offsets
        rows = [offsets[p] + i for p, i in events]
        if self.use_numpy:
            return _np.asarray(rows, dtype=_np.int64)
        return rows

    def event_of(self, row: int) -> EventId:
        """Event id of one matrix row."""
        p = int(self.proc[row])
        return (p, row - self.offsets[p])

    def _tally(self, rows: int) -> None:
        self.counters["batch_calls"] += 1
        self.counters["rows"] += rows

    # ------------------------------------------------------------------
    # Pairwise kernels (element-wise over equal-length row vectors)
    # ------------------------------------------------------------------
    def leq_rows(self, rows_a, rows_b):
        """Element-wise reflexive causal order ``a[k] ⊑ b[k]``."""
        if self.use_numpy:
            a = _np.asarray(rows_a, dtype=_np.int64)
            b = _np.asarray(rows_b, dtype=_np.int64)
            self._tally(a.size)
            return self.clk[b, self.proc[a]] >= self.pos[a]
        self._tally(len(rows_a))
        clk, proc, pos = self.clk, self.proc, self.pos
        return [
            clk[rb][proc[ra]] >= pos[ra] for ra, rb in zip(rows_a, rows_b)
        ]

    def happened_before_rows(self, rows_a, rows_b):
        """Element-wise irreflexive causal order ``a[k] → b[k]``."""
        if self.use_numpy:
            a = _np.asarray(rows_a, dtype=_np.int64)
            b = _np.asarray(rows_b, dtype=_np.int64)
            return self.leq_rows(a, b) & (a != b)
        leq = self.leq_rows(rows_a, rows_b)
        return [
            ok and ra != rb for ok, ra, rb in zip(leq, rows_a, rows_b)
        ]

    def consistent_rows(self, rows_a, rows_b):
        """Element-wise pairwise consistency (Section 2.2)."""
        if self.use_numpy:
            a = _np.asarray(rows_a, dtype=_np.int64)
            b = _np.asarray(rows_b, dtype=_np.int64)
            self._tally(a.size)
            clk, proc, pos = self.clk, self.proc, self.pos
            return (clk[b, proc[a]] <= pos[a]) & (clk[a, proc[b]] <= pos[b])
        self._tally(len(rows_a))
        clk, proc, pos = self.clk, self.proc, self.pos
        return [
            clk[rb][proc[ra]] <= pos[ra] and clk[ra][proc[rb]] <= pos[rb]
            for ra, rb in zip(rows_a, rows_b)
        ]

    # ------------------------------------------------------------------
    # Clock gathers and joins (work-optimal rounds)
    # ------------------------------------------------------------------
    def gather_clocks(self, rows):
        """Clock vectors of the given rows, shape ``rows.shape + (n,)``."""
        if self.use_numpy:
            return self.clk[_np.asarray(rows, dtype=_np.int64)]
        return [self.clk[r] for r in rows]

    def join_rows(self, rows) -> Tuple[int, ...]:
        """Componentwise max (join) of the given rows' clocks."""
        if self.use_numpy:
            self._tally(len(rows))
            return tuple(
                int(v)
                for v in self.clk[
                    _np.asarray(rows, dtype=_np.int64)
                ].max(axis=0)
            )
        self._tally(len(rows))
        need = [0] * self.num_processes
        for r in rows:
            for q, value in enumerate(self.clk[r]):
                if value > need[q]:
                    need[q] = value
        return tuple(need)

    # ------------------------------------------------------------------
    # Frontier-consistency kernel (lattice walks)
    # ------------------------------------------------------------------
    def advance_enabled(self, frontiers: Sequence[Frontier]):
        """Which process advances keep each frontier consistent.

        Returns a ``(B, n)`` boolean matrix: entry ``[b, p]`` is True iff
        process ``p`` has a next event at ``frontiers[b]`` and appending
        it yields a consistent frontier again (the next event's clock is
        covered on every *other* component).
        """
        n = self.num_processes
        if self.use_numpy:
            F = _np.asarray(frontiers, dtype=_np.int64)
            self._tally(F.shape[0] * n)
            enabled = _np.zeros(F.shape, dtype=bool)
            for p in range(n):
                exists = F[:, p] < self.lengths[p]
                if not exists.any():
                    continue
                rows = self.offsets[p] + _np.minimum(
                    F[:, p], self.lengths[p] - 1
                )
                covered = self.clk[rows] <= F
                covered[:, p] = True
                enabled[:, p] = exists & covered.all(axis=1)
            return enabled
        self._tally(len(frontiers) * n)
        out = []
        for frontier in frontiers:
            row_flags = []
            for p in range(n):
                nxt = frontier[p]
                if nxt >= self.lengths[p]:
                    row_flags.append(False)
                    continue
                clock = self.clk[self.offsets[p] + nxt]
                row_flags.append(
                    all(
                        clock[q] <= frontier[q]
                        for q in range(n)
                        if q != p
                    )
                )
            out.append(row_flags)
        return out

    def successor_frontiers_batch(
        self, frontiers: Sequence[Frontier]
    ) -> List[List[Frontier]]:
        """Per-input successor frontiers, in process order.

        Batched equivalent of
        :meth:`repro.perf.causality.CausalityIndex.successor_frontiers`
        applied to each input independently.
        """
        enabled = self.advance_enabled(frontiers)
        out: List[List[Frontier]] = []
        for b, frontier in enumerate(frontiers):
            flags = enabled[b]
            out.append(
                [
                    frontier[:p] + (frontier[p] + 1,) + frontier[p + 1 :]
                    for p in range(self.num_processes)
                    if flags[p]
                ]
            )
        return out

    # ------------------------------------------------------------------
    # Closure kernel (interval-anchor handoffs)
    # ------------------------------------------------------------------
    def closure_at_least(
        self, base: Frontier, process: int, minimum: int
    ) -> Frontier:
        """Least consistent frontier >= base with ``f[process] >= minimum``.

        The fixpoint joins, per pass, the clocks of all current frontier
        events into the frontier itself (initial events contribute nothing
        beyond their own unit component, so no rows are skipped).
        """
        if not self.use_numpy:
            frontier = list(base)
            if frontier[process] < minimum:
                frontier[process] = minimum
            clk, offsets = self.clk, self.offsets
            n = self.num_processes
            changed = True
            while changed:
                changed = False
                for p in range(n):
                    clock = clk[offsets[p] + frontier[p] - 1]
                    for q in range(n):
                        if clock[q] > frontier[q]:
                            frontier[q] = clock[q]
                            changed = True
            return tuple(frontier)
        frontier = _np.asarray(base, dtype=_np.int64).copy()
        if frontier[process] < minimum:
            frontier[process] = minimum
        offsets = _np.asarray(self.offsets, dtype=_np.int64)
        while True:
            self._tally(self.num_processes)
            joined = self.clk[offsets + frontier - 1].max(axis=0)
            merged = _np.maximum(frontier, joined)
            if (merged == frontier).all():
                return tuple(int(v) for v in frontier)
            frontier = merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backend = "numpy" if self.use_numpy else "python"
        return (
            f"ClockMatrix(processes={self.num_processes}, "
            f"rows={self.total_rows}, backend={backend})"
        )
