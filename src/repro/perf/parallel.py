"""Parallel batch driver for the Section 3.3 combination sweeps.

The process-choice and chain-choice engines pay for NP-hardness with
``prod c_j`` *independent* CPDHB scans — an embarrassingly parallel sweep
that the serial driver walks one combination at a time.  This module fans
contiguous rank chunks of the combination space across a
``multiprocessing`` pool while preserving the serial engine's exact
semantics:

* **Deterministic first witness.**  Combinations are ranked in
  ``itertools.product`` order (last group varies fastest).  Chunks
  partition the rank space contiguously and results are consumed in
  submission order (``imap``), so the first successful chunk observed
  contains the globally minimal successful rank, and within a chunk the
  scan stops at its first success.  The selection returned is therefore
  the one the serial loop would have found — verdict *and* witness are
  identical by construction.
* **Early cancellation.**  Once a success is consumed, the pool is
  terminated; in-flight later chunks are abandoned.
* **Fork-friendly distribution.**  Workers receive the computation via
  the pool initializer (inherited by ``fork`` on POSIX — no per-task
  pickling of the trace) and build the shared
  :class:`~repro.perf.causality.CausalityIndex` once at startup.

If a pool cannot be created (sandboxes without process spawning,
interpreter shutdown), :func:`run_combination_search` returns ``None``
and the caller falls back to the serial loop — behaviour, again,
identical.

Pool telemetry lands in the ``perf.pool.*`` metrics when observability
is enabled.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.events import EventId
from repro.obs.config import STATE
from repro.obs.metrics import registry
from repro.obs.progress import PROGRESS, tracker
from repro.obs.spans import span, take_roots
from repro.perf.causality import CausalityIndex

__all__ = [
    "ParallelOutcome",
    "combination_at",
    "resolve_workers",
    "run_combination_search",
]

#: Upper bound on ranks per chunk: small enough for early cancellation to
#: bite, large enough to amortize one IPC round trip over many scans.
MAX_CHUNK = 64


@dataclass(frozen=True)
class ParallelOutcome:
    """Aggregate result of a parallel combination sweep."""

    selection: Optional[List[EventId]]  #: witness selection, or None
    rank: Optional[int]  #: rank of the winning combination, or None
    invocations: int  #: CPDHB scans actually executed (across workers)
    advances: int  #: eliminations across all executed scans
    workers: int  #: pool size used
    chunks: int  #: chunks consumed before returning


def resolve_workers(parallel: Optional[int], total: int) -> int:
    """Effective worker count for a sweep of ``total`` combinations.

    ``None``, ``0`` and ``1`` mean serial; a negative value means "one
    worker per available CPU".  The result is clamped to ``total`` — more
    workers than combinations would only fork idle processes.
    """
    if parallel is None or parallel == 0 or parallel == 1:
        return 1
    workers = os.cpu_count() or 1 if parallel < 0 else parallel
    return max(1, min(workers, total))


def combination_at(
    per_group_chains: Sequence[Sequence[Sequence[EventId]]], rank: int
) -> List[Sequence[EventId]]:
    """The ``rank``-th combination in ``itertools.product`` order.

    Mixed-radix decode with the last group as the fastest-varying digit,
    matching ``itertools.product(*per_group_chains)`` exactly.
    """
    combo: List[Sequence[EventId]] = []
    for chains in reversed(per_group_chains):
        rank, digit = divmod(rank, len(chains))
        combo.append(chains[digit])
    combo.reverse()
    return combo


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_WORKER_STATE: Optional[Tuple[object, Sequence[Sequence[Sequence[EventId]]]]] = None
_WORKER_SWEEP = None


def _init_worker(computation, per_group_chains) -> None:
    """Pool initializer: pin the shared inputs and prebuild the index."""
    global _WORKER_STATE, _WORKER_SWEEP
    _WORKER_STATE = (computation, per_group_chains)
    _WORKER_SWEEP = None
    # Progress pacing and deadline enforcement belong to the driving
    # process; a forked worker must not tick the parent's sink or raise
    # DeadlineExceeded where nobody catches it.
    PROGRESS.active = None
    CausalityIndex.of(computation)


def _scan_chunk(bounds: Tuple[int, int]):
    """Scan ranks ``[start, stop)``; stop at the chunk's first success.

    Returns ``(winning_rank_or_None, selection_or_None, invocations,
    advances, metrics_snapshot_or_None)``.

    When observability is enabled the worker registry is reset at chunk
    start and snapshotted at chunk end, so the driver can merge each
    chunk's counter/histogram deltas into the parent registry — without
    this, instrument updates made inside fork-pool workers would die with
    the worker.  Span trees stay worker-local (only their histogram
    aggregates cross the process boundary).
    """
    from repro.detection.garg_waldecker import SelectionScan
    from repro.detection.work_optimal import (
        CombinationSweep,
        use_batched_sweep,
    )

    assert _WORKER_STATE is not None, "worker used before initialization"
    computation, per_group_chains = _WORKER_STATE
    start, stop = bounds
    collect = STATE.enabled
    if collect:
        registry().reset()
        take_roots()
    index = CausalityIndex.of(computation)
    invocations = 0
    advances = 0
    winning_rank: Optional[int] = None
    selection = None
    total = math.prod(len(chains) for chains in per_group_chains)
    if use_batched_sweep(total):
        # Mirror the serial driver's batched path: the whole block runs to
        # its verdict in one vectorized call and counts every rank as an
        # invocation, so serial and pooled sweeps report identical stats.
        global _WORKER_SWEEP
        if _WORKER_SWEEP is None:
            _WORKER_SWEEP = CombinationSweep(
                computation, per_group_chains, index=index
            )
        with span("scan.batch", ranks=stop - start) as scan_sp:
            winning_rank, selection, advances, rounds = (
                _WORKER_SWEEP.scan_block(start, stop)
            )
            scan_sp.set(advances=advances, rounds=rounds)
        invocations = stop - start
    else:
        for rank in range(start, stop):
            with span("scan.cpdhb") as scan_sp:
                scan = SelectionScan(
                    computation, combination_at(per_group_chains, rank),
                    index=index,
                )
                selection = scan.run()
                scan_sp.set(advances=scan.advances)
            invocations += 1
            advances += scan.advances
            if selection is not None:
                winning_rank = rank
                break
    snapshot = None
    if collect:
        index.maybe_flush_metrics()
        take_roots()
        snapshot = registry().snapshot()
    return winning_rank, selection, invocations, advances, snapshot


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def _chunk_bounds(total: int, workers: int) -> List[Tuple[int, int]]:
    from repro.detection.work_optimal import VEC_CHUNK, use_batched_sweep

    if use_batched_sweep(total):
        # Fixed, worker-count-independent blocks: the batched kernel
        # scores a whole block per call, and using the serial driver's
        # exact block boundaries keeps the two drivers' invocation and
        # advance counters bit-identical regardless of pool size.
        chunk = VEC_CHUNK
    else:
        chunk = max(1, min(MAX_CHUNK, math.ceil(total / (workers * 4))))
    return [(i, min(i + chunk, total)) for i in range(0, total, chunk)]


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def run_combination_search(
    computation,
    per_group_chains: Sequence[Sequence[Sequence[EventId]]],
    workers: int,
    chunk_bounds: Optional[List[Tuple[int, int]]] = None,
) -> Optional[ParallelOutcome]:
    """Sweep all chain combinations over a worker pool.

    Returns the :class:`ParallelOutcome` (selection ``None`` when no
    combination admits a consistent selection), or ``None`` when no pool
    could be created — the caller must then run the serial sweep.
    """
    total = math.prod(len(chains) for chains in per_group_chains)
    if total == 0:
        return ParallelOutcome(None, None, 0, 0, workers, 0)
    bounds = chunk_bounds or _chunk_bounds(total, workers)
    frozen = [
        [list(chain) for chain in chains] for chains in per_group_chains
    ]
    ctx = _pool_context()
    try:
        pool = ctx.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(computation, frozen),
        )
    except (OSError, ValueError, RuntimeError):
        if STATE.enabled:
            registry().counter("perf.pool.fallbacks").inc()
        return None
    invocations = 0
    advances = 0
    consumed = 0
    outcome: Optional[ParallelOutcome] = None
    trk = tracker("detect.combinations", total=total)
    try:
        for rank, selection, chunk_inv, chunk_adv, chunk_metrics in pool.imap(
            _scan_chunk, bounds
        ):
            consumed += 1
            invocations += chunk_inv
            advances += chunk_adv
            if chunk_metrics is not None and STATE.enabled:
                registry().merge_snapshot(chunk_metrics)
            trk.step(chunk_inv)
            if selection is not None:
                outcome = ParallelOutcome(
                    selection=[tuple(eid) for eid in selection],
                    rank=rank,
                    invocations=invocations,
                    advances=advances,
                    workers=workers,
                    chunks=consumed,
                )
                break
    finally:
        pool.terminate()
        pool.join()
    trk.finish()
    if outcome is None:
        outcome = ParallelOutcome(
            None, None, invocations, advances, workers, consumed
        )
    if STATE.enabled:
        reg = registry()
        reg.gauge("perf.pool.workers").set(workers)
        reg.counter("perf.pool.chunks").inc(outcome.chunks)
        reg.counter("perf.pool.scans").inc(outcome.invocations)
        if outcome.selection is not None and outcome.chunks < len(bounds):
            reg.counter("perf.pool.early_cancels").inc()
    return outcome
