"""Performance core for the detection engines (substrate S13).

Three pieces, layered under :mod:`repro.detection`:

* :class:`~repro.perf.causality.CausalityIndex` — per-computation
  memoized causality queries (raw-clock ``leq`` fast path, precomputed
  successor arrays, cached per-clause true events / chain covers /
  orderedness verdicts);
* :class:`~repro.perf.interning.CutInterner` — one canonical ``Cut``
  per frontier tuple, so lattice walks track plain tuples;
* :mod:`repro.perf.parallel` — a chunked ``multiprocessing`` driver for
  the Section 3.3 combination sweeps with deterministic first-witness
  semantics and early cancellation.

This package deliberately does **not** import ``repro.perf.parallel``
here: that module depends on :mod:`repro.detection` (for the CPDHB scan)
and importing it at package level would cycle through the detection
engines, which themselves import the causality index.  Import it
explicitly as ``from repro.perf.parallel import run_combination_search``.

Cache behaviour is observable through the ``perf.*`` metrics documented
in ``docs/OBSERVABILITY.md``.
"""

from repro.perf.causality import CausalityIndex
from repro.perf.interning import CutInterner

__all__ = ["CausalityIndex", "CutInterner"]
