"""Zero-dependency metrics registry: counters, gauges, latency histograms.

The registry is a named bag of three instrument kinds:

* :class:`Counter` — monotonically increasing totals (events ingested,
  CPDHB invocations, eliminations performed);
* :class:`Gauge` — last-written values (chain counts, min/max sums,
  anything set rather than accumulated);
* :class:`Histogram` — value distributions with exact percentiles over a
  bounded, deterministically decimated sample reservoir (latencies).

Exporters: :meth:`MetricsRegistry.snapshot` (plain dicts),
:meth:`MetricsRegistry.to_json`, and :meth:`MetricsRegistry.to_prometheus`
(Prometheus text exposition format, counters/gauges plus ``summary``
quantiles for histograms).

Everything here is process-local and lock-free: instruments are plain
attribute updates, safe under the GIL for the increment patterns used by
the detection engines.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "registry"]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Value distribution with exact min/max/sum and reservoir percentiles.

    Keeps at most ``max_samples`` observations.  When full, the reservoir
    is deterministically decimated (every second sample kept) and the
    record stride doubles, so long runs keep an evenly spaced subsample —
    percentiles stay representative without unbounded memory and without
    nondeterministic sampling.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_stride", "_skip", "max_samples")

    def __init__(self, name: str, max_samples: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._stride = 1
        self._skip = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._skip += 1
        if self._skip < self._stride:
            return
        self._skip = 0
        self._samples.append(value)
        if len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def percentile(self, q: float) -> float:
        """Exact percentile of the retained samples (q in [0, 100]).

        An empty reservoir yields 0.0 — queries on untouched histograms
        normalize to zeros rather than None/ZeroDivisionError.
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = (q / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, Any]:
        """Full stats dict; an untouched histogram is all zeros."""
        if self.count == 0:
            return {
                "count": 0,
                "sum": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "p99": 0.0,
            }
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def merge_summary(self, summary: Dict[str, Any]) -> None:
        """Fold another histogram's summary into this one.

        Count, sum and the min/max envelope merge exactly; the sample
        reservoir is left untouched, so percentiles keep describing the
        locally recorded observations only.  Used to aggregate worker
        snapshots from the parallel sweep back into the parent registry.
        """
        other_count = int(summary.get("count", 0))
        if other_count <= 0:
            return
        self.count += other_count
        self.total += float(summary.get("sum", 0.0))
        for bound, better in (("min", min), ("max", max)):
            value = summary.get(bound)
            if value is None:
                continue
            ours = getattr(self, bound)
            setattr(
                self, bound, value if ours is None else better(ours, value)
            )


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def reset(self) -> None:
        """Drop every instrument (used by Capture for scoped snapshots)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict from another registry into this one.

        Counters add, gauges take the incoming value (last write wins),
        histograms merge via :meth:`Histogram.merge_summary`.  This is the
        parent side of parallel-sweep metric aggregation: workers snapshot
        their process-local registries and the driver merges them here.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_summary(summary)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view: counters, gauges, histogram summaries."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        # Imported lazily: export renders spans too, and spans import the
        # registry from this module.
        from repro.obs.export import format_prometheus

        return format_prometheus(self.snapshot())


_GLOBAL = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every instrumented call site writes to."""
    return _GLOBAL
