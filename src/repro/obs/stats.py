"""The shared stat-counter helper for detection engines.

Every engine used to hand-roll ``stats["x"] = int(stats["x"]) + 1`` into a
private dict.  :class:`StatCounters` unifies that idiom: it keeps the
per-query dict that :class:`~repro.detection.result.DetectionResult.stats`
has always exposed (backward compatible), and — when observability is
enabled — mirrors the same values into the global metrics registry under
``<namespace>.<key>``:

* :meth:`inc` mirrors to a **counter** (cumulative across queries within a
  capture);
* :meth:`set` mirrors numeric values to a **gauge** (last write wins) and
  leaves non-numeric values (e.g. the CPDSC ``variant`` string) local.

The canonical key names per engine are documented in
``docs/ALGORITHMS.md`` ("Canonical stat keys").
"""

from __future__ import annotations

from typing import Any, Dict

from repro.obs.config import STATE
from repro.obs.metrics import registry

__all__ = ["StatCounters"]


class StatCounters:
    """Per-query stats dict with a registry mirror.

    Args:
        namespace: Metric-name prefix, conventionally ``engine.<name>``.
        **initial: Starting values, applied through :meth:`set`.
    """

    __slots__ = ("namespace", "data")

    def __init__(self, namespace: str, **initial: Any) -> None:
        self.namespace = namespace
        self.data: Dict[str, Any] = {}
        for key, value in initial.items():
            self.set(key, value)

    def inc(self, key: str, amount: int = 1) -> None:
        """Add to a cumulative count (registry mirror: counter)."""
        self.data[key] = int(self.data.get(key, 0)) + amount
        if STATE.enabled:
            registry().counter(f"{self.namespace}.{key}").inc(amount)

    def set(self, key: str, value: Any) -> None:
        """Record a non-cumulative value (registry mirror: gauge)."""
        self.data[key] = value
        if STATE.enabled and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            registry().gauge(f"{self.namespace}.{key}").set(value)

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def as_dict(self) -> Dict[str, Any]:
        """The dict placed into ``DetectionResult.stats`` (not a copy)."""
        return self.data
