"""The run ledger: one durable ``repro-run-v1`` record per CLI invocation.

``repro.obs`` is process-local and evaporates when the CLI exits.  The
ledger makes a run's observability durable: every work command
(``detect``, ``profile``, ``generate``, ``simulate``, ``fuzz``,
``lint``, ``render``, ``info`` — and the benchmark report) appends one
schema-versioned JSON line to ``.repro/runs.jsonl`` capturing

* the command, its argv and a SHA-256 **args fingerprint**;
* the **trace digest** (SHA-256 of the input/output trace file);
* the verdict and exit code, plus the engine's ``DetectionResult.stats``;
* the full **metrics snapshot** and **span trees** of the run;
* wall/CPU time and a UTC start timestamp.

Records are read back by ``repro runs list|show|last|diff`` (see
``docs/RUNS.md``).  The ledger path resolves flag > ``REPRO_RUNS`` env >
``.repro/runs.jsonl`` in the working directory; ``REPRO_RUNS=off`` (or
``0``/``none``) disables recording, which is how the test suite keeps
scratch directories clean.

Ledger I/O must never break the command it observes: append failures
print a one-line warning to stderr (and count ``runs.write_errors``)
without changing the exit code.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import registry
from repro.obs.spans import Capture

__all__ = [
    "RUN_SCHEMA",
    "RunRecorder",
    "annotate",
    "append_record",
    "current_recorder",
    "diff_records",
    "fingerprint_args",
    "format_diff",
    "read_records",
    "resolve_ledger_path",
    "resolve_ref",
    "validate_record",
]

RUN_SCHEMA = "repro-run-v1"

DEFAULT_LEDGER = os.path.join(".repro", "runs.jsonl")

#: Values of ``REPRO_RUNS`` (or the ``--runs-ledger`` flag) that disable
#: recording outright.
_OFF_VALUES = ("off", "0", "none", "disabled")

#: Fields every valid record must carry, with their accepted types.
_REQUIRED_FIELDS = {
    "schema": str,
    "id": str,
    "command": str,
    "argv": list,
    "args_fingerprint": str,
    "started_at": str,
    "wall_ms": (int, float),
    "cpu_ms": (int, float),
    "exit_code": int,
    "stats": dict,
    "metrics": dict,
    "spans": list,
}


# ----------------------------------------------------------------------
# Path resolution and fingerprints
# ----------------------------------------------------------------------
def resolve_ledger_path(flag_value: Optional[str] = None) -> Optional[str]:
    """The ledger file to append to, or None when recording is disabled.

    Precedence: explicit flag > ``REPRO_RUNS`` environment variable >
    the ``.repro/runs.jsonl`` default.  Either layer may disable the
    ledger with one of ``off``/``0``/``none``/``disabled``.
    """
    value = flag_value
    if value is None:
        value = os.environ.get("REPRO_RUNS")
    if value is None:
        return DEFAULT_LEDGER
    if value.strip().lower() in _OFF_VALUES or not value.strip():
        return None
    return value


def fingerprint_args(command: str, argv: Sequence[str]) -> str:
    """Stable SHA-256 fingerprint of a parsed invocation."""
    payload = json.dumps([command, list(argv)], separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def digest_file(path: str) -> Optional[str]:
    """``sha256:<hex>`` digest of a file, or None when unreadable."""
    try:
        with open(path, "rb") as handle:
            return "sha256:" + hashlib.sha256(handle.read()).hexdigest()
    except OSError:
        return None


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


# ----------------------------------------------------------------------
# Append / read / validate
# ----------------------------------------------------------------------
#: Transient-failure retry budget for one ledger append.
_APPEND_ATTEMPTS = 3


def _append_line(path: str, line: str) -> None:
    """Write one record as a single ``O_APPEND`` ``write(2)`` call.

    Concurrent appenders (service workers sharing one ledger) each issue
    one atomic append, so records from different threads or processes
    interleave whole-line, never byte-wise.  Transient ``OSError``\\ s
    (EINTR, momentary EAGAIN on shared filesystems) are retried a
    bounded number of times — but only when nothing reached the file: a
    raising ``write(2)`` transferred zero bytes, and a zero-length short
    write appended nothing.  A *non-zero* short write (e.g. ENOSPC
    mid-record) already left a partial line on disk, so retrying would
    append a torn prefix followed by a duplicate record; that case fails
    immediately.  The final failure propagates so callers keep their
    ``runs.write_errors`` semantics.
    """
    data = (line + "\n").encode("utf-8")
    for attempt in range(_APPEND_ATTEMPTS):
        fd = None
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666)
            written = os.write(fd, data)
        except OSError:
            if attempt == _APPEND_ATTEMPTS - 1:
                raise
            continue
        finally:
            if fd is not None:
                os.close(fd)
        if written == len(data):
            return
        if written == 0:
            if attempt == _APPEND_ATTEMPTS - 1:
                raise OSError(
                    f"could not append to {path}: "
                    f"wrote 0/{len(data)} bytes"
                )
            continue
        raise OSError(
            f"short write to {path}: {written}/{len(data)} bytes; "
            "partial record on disk, not retrying"
        )


def append_record(path: str, record: Dict[str, Any]) -> Dict[str, Any]:
    """Assign schema + id, append one JSON line, return the full record.

    The line itself is written with a single atomic append (see
    :func:`_append_line`), so many workers may share one ledger file.
    The 1-based sequence prefix of the ``id`` is advisory under
    concurrency — two simultaneous appenders may count the same length —
    but the fingerprint suffix keeps ids distinguishable and every line
    stays a complete, valid record.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    seq = 0
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            seq = sum(1 for line in handle if line.strip())
    full = dict(record)
    full["schema"] = RUN_SCHEMA
    full["id"] = f"{seq + 1:06d}-{full['args_fingerprint'][:8]}"
    line = json.dumps(_jsonable(full), sort_keys=True, separators=(",", ":"))
    _append_line(path, line)
    return full


def read_records(path: str) -> List[Dict[str, Any]]:
    """All valid records of a ledger file, in append order.

    Raises:
        ValueError: On a line that is not valid JSON or not a valid
            ``repro-run-v1`` record.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: invalid JSON in run ledger: {exc}"
                ) from exc
            validate_record(record, source=f"{path}:{lineno}")
            records.append(record)
    return records


def validate_record(record: Any, source: str = "record") -> None:
    """Raise ValueError unless ``record`` is a valid ``repro-run-v1``."""
    if not isinstance(record, dict):
        raise ValueError(f"{source}: run record must be an object")
    schema = record.get("schema")
    if schema != RUN_SCHEMA:
        raise ValueError(
            f"{source}: unsupported run record schema {schema!r} "
            f"(expected {RUN_SCHEMA!r})"
        )
    for field, types in _REQUIRED_FIELDS.items():
        if field not in record:
            raise ValueError(f"{source}: run record missing field {field!r}")
        if not isinstance(record[field], types):
            raise ValueError(
                f"{source}: run record field {field!r} has wrong type"
            )


def resolve_ref(records: Sequence[Dict[str, Any]], ref: str) -> Dict[str, Any]:
    """A record by reference: ``last``, ``prev``, an index, or an id prefix.

    Indices are 1-based from the start; negative indices count from the
    end (``-1`` = latest).
    """
    if not records:
        raise ValueError("run ledger is empty")
    token = ref.strip().lower()
    if token == "last":
        return records[-1]
    if token == "prev":
        if len(records) < 2:
            raise ValueError("run ledger has no previous record")
        return records[-2]
    try:
        index = int(token)
    except ValueError:
        matches = [r for r in records if r["id"].startswith(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ValueError(f"no run record matches {ref!r}") from None
        raise ValueError(f"run reference {ref!r} is ambiguous") from None
    if index == 0:
        raise ValueError("run indices are 1-based (or negative from the end)")
    pos = index - 1 if index > 0 else index
    try:
        return records[pos]
    except IndexError:
        raise ValueError(
            f"run index {index} out of range (ledger has {len(records)})"
        ) from None


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def _num_delta(a: Any, b: Any) -> Optional[Dict[str, Any]]:
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return None
    if isinstance(a, bool) or isinstance(b, bool):
        return None
    return {"a": a, "b": b, "delta": b - a}


def _numeric_map_diff(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Dict[str, Any]]:
    out: Dict[str, Dict[str, Any]] = {}
    for key in sorted(set(a) | set(b)):
        entry = _num_delta(a.get(key, 0), b.get(key, 0))
        if entry is not None and entry["delta"] != 0:
            out[key] = entry
    return out


def diff_records(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    """Structured delta between two run records (``a`` → ``b``)."""
    metrics_a, metrics_b = a.get("metrics", {}), b.get("metrics", {})
    hist_a = metrics_a.get("histograms", {})
    hist_b = metrics_b.get("histograms", {})
    histograms: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(hist_a) | set(hist_b)):
        sa = hist_a.get(name, {})
        sb = hist_b.get(name, {})
        entry = {
            "count": _num_delta(sa.get("count", 0), sb.get("count", 0)),
            "mean_ms": _num_delta(sa.get("mean", 0.0), sb.get("mean", 0.0)),
            "p95_ms": _num_delta(sa.get("p95", 0.0), sb.get("p95", 0.0)),
        }
        if any(v and v["delta"] for v in entry.values()):
            histograms[name] = entry
    stats_a = {
        k: v for k, v in a.get("stats", {}).items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    stats_b = {
        k: v for k, v in b.get("stats", {}).items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    return {
        "a": {"id": a["id"], "command": a["command"]},
        "b": {"id": b["id"], "command": b["command"]},
        "verdict": {"a": a.get("verdict"), "b": b.get("verdict")},
        "wall_ms": _num_delta(a.get("wall_ms", 0.0), b.get("wall_ms", 0.0)),
        "cpu_ms": _num_delta(a.get("cpu_ms", 0.0), b.get("cpu_ms", 0.0)),
        "stats": _numeric_map_diff(stats_a, stats_b),
        "counters": _numeric_map_diff(
            metrics_a.get("counters", {}), metrics_b.get("counters", {})
        ),
        "gauges": _numeric_map_diff(
            metrics_a.get("gauges", {}), metrics_b.get("gauges", {})
        ),
        "histograms": histograms,
    }


def _fmt_num(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_diff(diff: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`diff_records`."""
    lines = [
        f"runs diff: {diff['a']['id']} ({diff['a']['command']}) -> "
        f"{diff['b']['id']} ({diff['b']['command']})",
        f"verdict: {diff['verdict']['a']} -> {diff['verdict']['b']}",
    ]
    for label in ("wall_ms", "cpu_ms"):
        entry = diff.get(label)
        if entry:
            lines.append(
                f"{label}: {_fmt_num(entry['a'])} -> {_fmt_num(entry['b'])} "
                f"({entry['delta']:+.2f})"
            )
    for section in ("stats", "counters", "gauges"):
        entries = diff.get(section, {})
        if entries:
            lines.append(f"{section}:")
            for key, entry in entries.items():
                lines.append(
                    f"  {key}  {_fmt_num(entry['a'])} -> "
                    f"{_fmt_num(entry['b'])} ({_fmt_num(entry['delta'])})"
                )
    histograms = diff.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, entry in histograms.items():
            parts = []
            for label, sub in entry.items():
                if sub and sub["delta"]:
                    parts.append(
                        f"{label} {_fmt_num(sub['a'])} -> "
                        f"{_fmt_num(sub['b'])}"
                    )
            lines.append(f"  {name}  " + ", ".join(parts))
    if not (diff.get("stats") or diff.get("counters") or diff.get("gauges")
            or histograms):
        lines.append("no metric deltas")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Recording a live run
# ----------------------------------------------------------------------
_CURRENT: Optional["RunRecorder"] = None


def current_recorder() -> Optional["RunRecorder"]:
    """The recorder of the in-flight CLI invocation, if any."""
    return _CURRENT


def annotate(**fields: Any) -> None:
    """Attach command-level fields (verdict, stats, trace, …) to the
    in-flight run record; a silent no-op when no recorder is active."""
    if _CURRENT is not None:
        _CURRENT.annotations.update(fields)


class RunRecorder:
    """Context manager wrapping one CLI invocation for the ledger.

    Enters an :class:`~repro.obs.spans.Capture` so the run's metrics and
    span trees are collected even without ``--profile``; on exit it
    appends exactly one record.  Commands annotate verdict/stats/trace
    through :func:`annotate`.
    """

    def __init__(self, path: str, command: str, argv: Sequence[str]) -> None:
        self.path = path
        self.command = command
        self.argv = list(argv)
        self.annotations: Dict[str, Any] = {}
        self.exit_code: Optional[int] = None
        self.record: Optional[Dict[str, Any]] = None
        self._capture = Capture()
        self._wall_start = 0.0
        self._cpu_start = 0.0
        self._started_at = ""

    def __enter__(self) -> "RunRecorder":
        global _CURRENT
        # Wall-clock timestamp is record metadata, never control flow.
        started = time.gmtime()  # repro: lint-ignore[DET102]
        self._started_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", started)
        self._capture.__enter__()
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        _CURRENT = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _CURRENT
        _CURRENT = None
        wall_ms = (time.perf_counter() - self._wall_start) * 1000.0
        cpu_ms = (time.process_time() - self._cpu_start) * 1000.0
        registry().counter("runs.recorded").inc()
        self._capture.__exit__(exc_type, exc, tb)
        spans = self.annotations.pop(
            "spans", [root.to_dict() for root in self._capture.roots]
        )
        trace_path = self.annotations.pop("trace", None)
        trace = None
        if trace_path is not None:
            trace = {
                "path": str(trace_path),
                "digest": digest_file(str(trace_path)),
            }
        exit_code = self.exit_code
        if exit_code is None:
            # The command raised through us without a mapped exit code.
            exit_code = 70
        record = {
            "command": self.command,
            "argv": self.argv,
            "args_fingerprint": fingerprint_args(self.command, self.argv),
            "started_at": self._started_at,
            "wall_ms": wall_ms,
            "cpu_ms": cpu_ms,
            "exit_code": exit_code,
            "verdict": self.annotations.pop("verdict", None),
            "trace": trace,
            "stats": self.annotations.pop("stats", {}),
            "metrics": self._capture.registry.snapshot(),
            "spans": spans,
            "extra": self.annotations,
        }
        try:
            self.record = append_record(self.path, record)
        except OSError as exc2:
            registry().counter("runs.write_errors").inc()
            import sys

            print(
                f"repro: warning: could not append run record to "
                f"{self.path}: {exc2}",
                file=sys.stderr,
            )
        return False
