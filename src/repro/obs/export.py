"""Human-readable rendering of span trees and metrics snapshots.

Used by ``repro detect --profile`` and ``repro profile`` to print to
stderr; the machine-readable paths are
:meth:`~repro.obs.metrics.MetricsRegistry.to_json`,
:meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`, and
:meth:`~repro.obs.spans.Span.to_dict`.
"""

from __future__ import annotations

from itertools import groupby
from typing import Any, Dict, List, Sequence

from repro.obs.spans import Span

__all__ = ["format_span_tree", "format_metrics"]

# Runs of more than this many same-named sibling spans (e.g. thousands of
# per-combination CPDHB scans) collapse into an aggregate line.
_MAX_SIBLINGS = 6


def _format_attrs(attributes: Dict[str, Any]) -> str:
    if not attributes:
        return ""
    # Sorted so renderings are byte-identical run to run, whatever order
    # the span's attributes were set in.
    parts = ", ".join(f"{k}={v!r}" for k, v in sorted(attributes.items()))
    return f"  [{parts}]"


def _render(span: Span, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    lines.append(
        f"{pad}{span.name}  {span.duration_ms:.3f} ms"
        f"{_format_attrs(span.attributes)}"
    )
    for name, group_iter in groupby(span.children, key=lambda s: s.name):
        group = list(group_iter)
        if len(group) <= _MAX_SIBLINGS:
            for child in group:
                _render(child, indent + 1, lines)
        else:
            for child in group[:_MAX_SIBLINGS]:
                _render(child, indent + 1, lines)
            rest = group[_MAX_SIBLINGS:]
            total_ms = sum(child.duration_ms for child in rest)
            lines.append(
                f"{'  ' * (indent + 1)}{name}  "
                f"... {len(rest)} more siblings, {total_ms:.3f} ms total"
            )


def format_span_tree(roots: Sequence[Span]) -> str:
    """Indented tree: one line per span (long same-name runs collapsed)."""
    lines: List[str] = []
    for root in roots:
        _render(root, 0, lines)
    return "\n".join(lines)


def format_metrics(snapshot: Dict[str, Any]) -> str:
    """Compact text table of a registry snapshot."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    # Registry snapshots arrive pre-sorted; sort here as well so any
    # hand-built snapshot renders deterministically too.
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name} = {value}")
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name} = {value}")
    if histograms:
        lines.append("histograms:")
        for name, summary in sorted(histograms.items()):
            if summary.get("count", 0) == 0:
                lines.append(f"  {name}: empty")
                continue
            lines.append(
                f"  {name}: count={summary['count']}"
                f" mean={summary['mean']:.3f}"
                f" p50={summary['p50']:.3f}"
                f" p95={summary['p95']:.3f}"
                f" max={summary['max']:.3f}"
            )
    return "\n".join(lines)
