"""Exporters: human-readable rendering, Prometheus text, OTLP-JSON spans.

Three audiences:

* people — :func:`format_span_tree` / :func:`format_metrics` back the
  ``--profile`` stderr reports;
* scrapers — :func:`format_prometheus` renders a registry snapshot in
  the Prometheus text exposition format (0.0.4), with metric names
  sanitized (dots → underscores) and one ``# TYPE`` line per family;
* trace viewers — :func:`otlp_json` serializes span trees as
  OTLP/JSON (the OpenTelemetry ``resourceSpans`` shape) and
  :func:`otlp_to_spans` loads that payload back into
  :class:`~repro.obs.spans.Span` trees, so exported records round-trip.

OTLP requires 128-bit trace ids, 64-bit span ids and absolute
nanosecond timestamps; ``repro`` spans have none of those (only
relative durations, by determinism design).  The exporter therefore
*derives* them: ids are SHA-256 prefixes of a caller-supplied run seed
plus the span's tree path, and timestamps lay the tree out on a
synthetic timeline starting at zero — byte-identical output for a
fixed seed, no wall-clock entropy.
"""

from __future__ import annotations

import hashlib
import json
import re
from itertools import groupby
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import Span

__all__ = [
    "format_span_tree",
    "format_metrics",
    "format_prometheus",
    "otlp_json",
    "otlp_to_spans",
    "span_from_dict",
    "spans_to_otlp",
]


def span_from_dict(tree: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` tree from :meth:`Span.to_dict` output.

    Only durations are stored in the dict form, so each rebuilt span
    starts at t=0 with ``end_time = duration``; that is all the OTLP
    exporter's synthetic timeline needs.
    """
    span = Span(str(tree["name"]), dict(tree.get("attributes", {})))
    span.start_time = 0.0
    span.end_time = float(tree.get("duration_ms", 0.0)) / 1000.0
    span.children = [span_from_dict(c) for c in tree.get("children", [])]
    return span

# Runs of more than this many same-named sibling spans (e.g. thousands of
# per-combination CPDHB scans) collapse into an aggregate line.
_MAX_SIBLINGS = 6


def _format_attrs(attributes: Dict[str, Any]) -> str:
    if not attributes:
        return ""
    # Sorted so renderings are byte-identical run to run, whatever order
    # the span's attributes were set in.
    parts = ", ".join(f"{k}={v!r}" for k, v in sorted(attributes.items()))
    return f"  [{parts}]"


def _render(span: Span, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    lines.append(
        f"{pad}{span.name}  {span.duration_ms:.3f} ms"
        f"{_format_attrs(span.attributes)}"
    )
    for name, group_iter in groupby(span.children, key=lambda s: s.name):
        group = list(group_iter)
        if len(group) <= _MAX_SIBLINGS:
            for child in group:
                _render(child, indent + 1, lines)
        else:
            for child in group[:_MAX_SIBLINGS]:
                _render(child, indent + 1, lines)
            rest = group[_MAX_SIBLINGS:]
            total_ms = sum(child.duration_ms for child in rest)
            lines.append(
                f"{'  ' * (indent + 1)}{name}  "
                f"... {len(rest)} more siblings, {total_ms:.3f} ms total"
            )


def format_span_tree(roots: Sequence[Span]) -> str:
    """Indented tree: one line per span (long same-name runs collapsed)."""
    lines: List[str] = []
    for root in roots:
        _render(root, 0, lines)
    return "\n".join(lines)


def format_metrics(snapshot: Dict[str, Any]) -> str:
    """Compact text table of a registry snapshot."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    # Registry snapshots arrive pre-sorted; sort here as well so any
    # hand-built snapshot renders deterministically too.
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name} = {value}")
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name} = {value}")
    if histograms:
        lines.append("histograms:")
        for name, summary in sorted(histograms.items()):
            if summary.get("count", 0) == 0:
                lines.append(f"  {name}: empty")
                continue
            lines.append(
                f"  {name}: count={summary['count']}"
                f" mean={summary['mean']:.3f}"
                f" p50={summary['p50']:.3f}"
                f" p95={summary['p95']:.3f}"
                f" max={summary['max']:.3f}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Sanitize a dotted metric key into a Prometheus metric name."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def format_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a registry snapshot in Prometheus text format (0.0.4).

    Dotted keys become underscore names with a ``repro_`` prefix; every
    family gets a ``# TYPE`` line (histograms expose as ``summary`` with
    p50/p95/p99 quantiles plus ``_sum``/``_count``).
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        if summary.get("count", 0):
            for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                lines.append(
                    f'{prom}{{quantile="{q}"}} '
                    f"{_prom_value(summary[key])}"
                )
        lines.append(f"{prom}_sum {_prom_value(summary.get('sum', 0.0))}")
        lines.append(f"{prom}_count {summary.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# OTLP-JSON span export and loading
# ----------------------------------------------------------------------
def _trace_id(seed: str) -> str:
    digest = hashlib.sha256(f"repro-trace:{seed}".encode("utf-8"))
    return digest.hexdigest()[:32]


def _span_id(seed: str, path: str) -> str:
    digest = hashlib.sha256(f"repro-span:{seed}:{path}".encode("utf-8"))
    return digest.hexdigest()[:16]


def _attr_to_otlp(key: str, value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        body: Dict[str, Any] = {"boolValue": value}
    elif isinstance(value, int):
        # OTLP/JSON encodes 64-bit integers as decimal strings.
        body = {"intValue": str(value)}
    elif isinstance(value, float):
        body = {"doubleValue": value}
    else:
        body = {"stringValue": str(value)}
    return {"key": key, "value": body}


def _attr_from_otlp(entry: Any) -> Tuple[str, Any]:
    if not isinstance(entry, dict) or "key" not in entry:
        raise ValueError("OTLP attribute entry missing 'key'")
    value = entry.get("value", {})
    if not isinstance(value, dict):
        raise ValueError("OTLP attribute entry missing 'value' object")
    if "boolValue" in value:
        return entry["key"], bool(value["boolValue"])
    if "intValue" in value:
        return entry["key"], int(value["intValue"])
    if "doubleValue" in value:
        return entry["key"], float(value["doubleValue"])
    if "stringValue" in value:
        return entry["key"], str(value["stringValue"])
    raise ValueError(
        f"OTLP attribute {entry['key']!r} has no supported value kind"
    )


def _flatten_otlp(
    span: Span,
    seed: str,
    path: str,
    parent_id: Optional[str],
    start_ns: int,
    trace_id: str,
    out: List[Dict[str, Any]],
) -> int:
    """Emit ``span`` and its subtree depth-first; return the span's end."""
    duration_ns = int(round(span.duration_ms * 1e6))
    end_ns = start_ns + duration_ns
    span_id = _span_id(seed, path)
    record: Dict[str, Any] = {
        "traceId": trace_id,
        "spanId": span_id,
        "name": span.name,
        "kind": 1,  # SPAN_KIND_INTERNAL
        "startTimeUnixNano": str(start_ns),
        "endTimeUnixNano": str(end_ns),
        "attributes": [
            _attr_to_otlp(k, v) for k, v in sorted(span.attributes.items())
        ],
    }
    if parent_id is not None:
        record["parentSpanId"] = parent_id
    out.append(record)
    child_start = start_ns
    for index, child in enumerate(span.children):
        child_start = _flatten_otlp(
            child, seed, f"{path}.{index}", span_id, child_start,
            trace_id, out,
        )
    return end_ns


def spans_to_otlp(roots: Sequence[Span], seed: str) -> Dict[str, Any]:
    """OTLP/JSON ``resourceSpans`` payload for the given span trees.

    All identifiers and timestamps are derived from ``seed`` and the
    trees themselves: trace/span ids are SHA-256 prefixes and the
    timeline is synthetic (roots laid out back to back from t=0,
    children from their parent's start), so a fixed seed yields
    byte-identical output.
    """
    trace_id = _trace_id(seed)
    spans: List[Dict[str, Any]] = []
    cursor = 0
    for index, root in enumerate(roots):
        cursor = _flatten_otlp(
            root, seed, str(index), None, cursor, trace_id, spans
        )
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        _attr_to_otlp("service.name", "repro"),
                        _attr_to_otlp("repro.seed", seed),
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": "repro.obs", "version": "1"},
                        "spans": spans,
                    }
                ],
            }
        ]
    }


def otlp_json(roots: Sequence[Span], seed: str) -> str:
    """Canonical single-line JSON encoding of :func:`spans_to_otlp`."""
    return json.dumps(
        spans_to_otlp(roots, seed), sort_keys=True, separators=(",", ":")
    )


def otlp_to_spans(payload: Any) -> List[Span]:
    """Load an OTLP/JSON payload (dict or JSON string) back into trees.

    The inverse of :func:`spans_to_otlp`: rebuilds parent/child links
    from ``parentSpanId`` and orders siblings by start timestamp, so an
    exported tree round-trips structurally and byte-identically when
    re-exported with the same seed.

    Raises:
        ValueError: On malformed payloads (bad JSON, missing fields,
            dangling parent ids).
    """
    if isinstance(payload, str):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid OTLP JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("OTLP payload must be a JSON object")
    flat: List[Dict[str, Any]] = []
    for resource in payload.get("resourceSpans", []):
        for scope in resource.get("scopeSpans", []):
            flat.extend(scope.get("spans", []))
    by_id: Dict[str, Span] = {}
    meta: List[Tuple[Dict[str, Any], Span]] = []
    for record in flat:
        if not isinstance(record, dict):
            raise ValueError("OTLP span entry must be an object")
        for field in ("spanId", "name", "startTimeUnixNano",
                      "endTimeUnixNano"):
            if field not in record:
                raise ValueError(f"OTLP span missing field {field!r}")
        attributes = dict(
            _attr_from_otlp(entry) for entry in record.get("attributes", [])
        )
        span = Span(record["name"], attributes)
        span.start_time = int(record["startTimeUnixNano"]) / 1e9
        span.end_time = int(record["endTimeUnixNano"]) / 1e9
        span_id = record["spanId"]
        if span_id in by_id:
            raise ValueError(f"duplicate OTLP span id {span_id!r}")
        by_id[span_id] = span
        meta.append((record, span))
    roots: List[Span] = []
    for record, span in meta:
        parent_id = record.get("parentSpanId")
        if parent_id is None:
            roots.append(span)
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            raise ValueError(
                f"OTLP span {record['spanId']!r} references unknown "
                f"parent {parent_id!r}"
            )
        parent.children.append(span)
    # The flat list is depth-first, so insertion order already reflects
    # sibling order; sorting by start time keeps loaders of re-ordered
    # payloads correct too (Python's sort is stable).
    for span in by_id.values():
        span.children.sort(key=lambda s: s.start_time)
    roots.sort(key=lambda s: s.start_time)
    return roots
