"""Tracing spans: nested wall-time measurements with structured attributes.

A span measures one region of work::

    with span("engine.cpdhb", chains=len(chains)) as sp:
        ...
        sp.set(advances=scan.advances)

Spans nest through a thread-local stack, so engine dispatch (e.g.
``detect`` → ``detect_singular`` → per-combination CPDHB scans) yields a
real call tree; finished top-level spans land in the thread's root list,
harvested by :class:`Capture`.

When observability is disabled (the default) :func:`span` returns a shared
:data:`NOOP` object whose ``__enter__``/``__exit__``/``set`` do nothing —
the only per-call-site cost is the ``STATE.enabled`` attribute check.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.obs.config import STATE
from repro.obs.metrics import registry

__all__ = ["Span", "span", "current_span", "Capture", "NOOP"]


class _NoopSpan:
    """Shared do-nothing stand-in used when observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attributes: Any) -> None:
        pass


NOOP = _NoopSpan()

_local = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def _roots() -> List["Span"]:
    roots = getattr(_local, "roots", None)
    if roots is None:
        roots = _local.roots = []
    return roots


class Span:
    """One timed region.  Acts as its own context manager."""

    __slots__ = ("name", "attributes", "start_time", "end_time", "children")

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.start_time: float = 0.0
        self.end_time: Optional[float] = None
        self.children: List[Span] = []

    def set(self, **attributes: Any) -> None:
        """Attach structured attributes to the span."""
        self.attributes.update(attributes)

    @property
    def duration_ms(self) -> float:
        end = self.end_time if self.end_time is not None else perf_counter()
        return (end - self.start_time) * 1000.0

    def __enter__(self) -> "Span":
        _stack().append(self)
        self.start_time = perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.end_time = perf_counter()
        stack = _stack()
        # Tolerate foreign frames: pop self wherever it is (normally last).
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - misnested exit
            stack.remove(self)
        if stack:
            stack[-1].children.append(self)
        else:
            _roots().append(self)
        registry().histogram("span." + self.name + ".ms").record(
            self.duration_ms
        )
        return False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly tree form."""
        return {
            "name": self.name,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
            f"{len(self.children)} children)"
        )


def span(name: str, **attributes: Any):
    """Open a span (use as a context manager); no-op when disabled."""
    if not STATE.enabled:
        return NOOP
    return Span(name, attributes)


def current_span():
    """The innermost open span of this thread, or the no-op stand-in."""
    if not STATE.enabled:
        return NOOP
    stack = getattr(_local, "stack", None)
    if not stack:
        return NOOP
    return stack[-1]


def take_roots() -> List[Span]:
    """Drain and return this thread's finished top-level spans."""
    roots = _roots()
    _local.roots = []
    return roots


class Capture:
    """Scoped profiling session: enable, record, restore.

    Resets the global metrics registry and this thread's span roots on
    entry so the snapshot covers exactly the captured region::

        with Capture() as cap:
            detect(computation, predicate)
        print(cap.registry.to_json())
        for root in cap.roots: ...

    On exit the previous enabled/disabled state is restored; the registry
    object stays readable (it is the live global registry).
    """

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self.registry = registry()
        self._prev_enabled = False

    def __enter__(self) -> "Capture":
        self._prev_enabled = STATE.enabled
        self.registry.reset()
        take_roots()
        _stack().clear()
        STATE.enabled = True
        return self

    def __exit__(self, *exc: object) -> bool:
        STATE.enabled = self._prev_enabled
        self.roots = take_roots()
        # An exception inside the capture can leave open spans on the
        # thread-local stack; drop them so consecutive captures in one
        # process never inherit residual frames.
        _stack().clear()
        return False
