"""Global on/off switch for the observability layer.

Observability is **disabled by default**: every instrumented call site
guards its work behind a single attribute read (``STATE.enabled``), so the
cost of carrying the instrumentation in production paths is one Python
attribute check — no allocation, no dict lookups, no time syscalls.

Enable it explicitly (``repro.obs.enable()``), or scoped via
:class:`repro.obs.spans.Capture`, which is what ``repro detect --profile``
and ``repro profile`` use.
"""

from __future__ import annotations

import os

__all__ = ["STATE", "enable", "disable", "is_enabled"]


class _ObsState:
    """Mutable singleton holding the enabled flag.

    An object attribute (rather than a module global) so call sites can
    bind ``STATE`` once at import time and still observe later toggles.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


STATE = _ObsState()

# Opt-in via environment for processes that cannot reach the API (e.g.
# benchmark subprocesses).
if os.environ.get("REPRO_OBS", "").lower() in ("1", "true", "on"):
    STATE.enabled = True


def enable() -> None:
    """Turn the observability layer on (spans recorded, metrics mirrored)."""
    STATE.enabled = True


def disable() -> None:
    """Turn the observability layer off (the default no-op fast path)."""
    STATE.enabled = False


def is_enabled() -> bool:
    """Is the observability layer currently recording?"""
    return STATE.enabled
