"""Live progress telemetry: heartbeats and deadlines for long loops.

Detecting ``possibly(B)`` is NP-complete in general, so a detection run
can legitimately take minutes — or forever, from the caller's point of
view.  This module threads a *rate-limited heartbeat* through the long
loops (combination sweeps, Cooper–Marzullo BFS, lattice enumeration,
fuzz iterations) without touching their disabled-path cost profile:

* :func:`tracker` returns a shared no-op object unless a
  :class:`ProgressContext` is active, so an un-instrumented run pays one
  attribute check per loop entry (the same contract as ``obs.span``);
* an active tracker batches its bookkeeping (``check_every`` steps per
  clock read) and rate-limits sink emissions, so even per-cut ticking in
  a million-cut BFS stays cheap;
* progress events are **monotonic**: ``done`` never decreases within a
  tracker, and every event carries units done/total, elapsed seconds and
  an ETA estimate when a total is known;
* an optional **deadline** converts a blown budget into a clean
  :class:`DeadlineExceeded` (caught by the CLI and turned into an
  ``inconclusive`` verdict, exit code 7) instead of a hang.

Activation is scoped::

    with progress_context(sink=print_event, deadline_ms=5000):
        detect(computation, predicate)     # long loops now tick

The context is installed process-globally (mirroring ``obs.STATE``);
worker processes of the parallel sweep clear it on startup, so pacing
and deadline enforcement stay in the driving process.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Iterator, Optional

from repro.obs.config import STATE
from repro.obs.metrics import registry

__all__ = [
    "DeadlineExceeded",
    "NOOP_TRACKER",
    "PROGRESS",
    "ProgressContext",
    "ProgressEvent",
    "Tracker",
    "format_event",
    "progress_context",
    "stderr_sink",
    "tracker",
]


class DeadlineExceeded(Exception):
    """A progress deadline fired inside an instrumented loop.

    Carries enough of the loop's state for the caller to report a
    partial/inconclusive result: which loop blew the budget, how many
    units it had completed, the (optional) total, and the elapsed time.
    """

    def __init__(
        self,
        name: str,
        done: int,
        total: Optional[int],
        elapsed_ms: float,
        deadline_ms: float,
    ) -> None:
        self.name = name
        self.done = done
        self.total = total
        self.elapsed_ms = elapsed_ms
        self.deadline_ms = deadline_ms
        super().__init__(
            f"deadline of {deadline_ms:.0f} ms exceeded in {name} "
            f"after {done} unit(s)"
        )


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat from an instrumented loop."""

    name: str  #: loop identifier, e.g. ``detect.cuts``
    done: int  #: units completed so far (monotonic per tracker)
    total: Optional[int]  #: known unit total, or None for open-ended loops
    elapsed_s: float  #: seconds since the progress context was entered
    eta_s: Optional[float]  #: estimated seconds remaining, when computable


def format_event(event: ProgressEvent) -> str:
    """The one-line rendering the CLI prints per tick."""
    if event.total:
        pct = 100.0 * event.done / event.total
        line = f"progress: {event.name} {event.done}/{event.total} ({pct:.1f}%)"
    else:
        line = f"progress: {event.name} {event.done}"
    line += f" elapsed={event.elapsed_s:.1f}s"
    if event.eta_s is not None:
        line += f" eta={event.eta_s:.1f}s"
    return line


def stderr_sink(event: ProgressEvent) -> None:
    """Default CLI sink: one ``progress:`` line per tick on stderr."""
    import sys

    print(format_event(event), file=sys.stderr, flush=True)


class _NoopTracker:
    """Shared do-nothing tracker used when no context is active."""

    __slots__ = ()

    def step(self, n: int = 1) -> None:
        pass

    def finish(self) -> None:
        pass


NOOP_TRACKER = _NoopTracker()


class Tracker:
    """Progress bookkeeping for one loop under an active context.

    ``step(n)`` is the only hot call: it adds to a countdown and only
    touches the clock every ``check_every`` units, keeping per-iteration
    cost at two integer ops for heavily ticked loops.
    """

    __slots__ = ("_ctx", "name", "total", "done", "_countdown",
                 "_check_every", "_last_emit")

    def __init__(
        self,
        ctx: "ProgressContext",
        name: str,
        total: Optional[int],
        check_every: int,
    ) -> None:
        self._ctx = ctx
        self.name = name
        self.total = total
        self.done = 0
        self._check_every = max(1, check_every)
        self._countdown = self._check_every
        # Rate-limit epoch starts *now*: perf_counter() is an arbitrary
        # origin (host uptime on Linux), so seeding with 0.0 would make
        # the first tick bypass the interval on any long-lived host.
        self._last_emit = perf_counter()

    def step(self, n: int = 1) -> None:
        """Advance by ``n`` units; may emit a tick or raise at a deadline.

        Raises:
            DeadlineExceeded: When the context's deadline has passed.
        """
        self.done += n
        self._countdown -= n
        if self._countdown <= 0:
            self._countdown = self._check_every
            self._checkpoint()

    def finish(self) -> None:
        """Emit one final event (ignoring the rate limit), if sinking."""
        if self._ctx.sink is not None:
            self._ctx.emit(self, perf_counter(), force=True)

    def _checkpoint(self) -> None:
        now = perf_counter()
        self._ctx.check_deadline(self, now)
        if self._ctx.sink is not None:
            self._ctx.emit(self, now)


class ProgressContext:
    """One active progress session: sink, pacing, and deadline."""

    def __init__(
        self,
        sink: Optional[Callable[[ProgressEvent], None]] = None,
        deadline_ms: Optional[float] = None,
        interval_s: float = 0.25,
    ) -> None:
        self.sink = sink
        self.interval_s = interval_s
        self.started = perf_counter()
        self.deadline: Optional[float] = (
            self.started + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        self._deadline_ms = deadline_ms

    def tracker(
        self, name: str, total: Optional[int] = None, check_every: int = 1
    ) -> Tracker:
        return Tracker(self, name, total, check_every)

    def check_deadline(self, trk: Tracker, now: float) -> None:
        if self.deadline is not None and now >= self.deadline:
            if STATE.enabled:
                registry().counter("progress.deadline_hits").inc()
            assert self._deadline_ms is not None
            raise DeadlineExceeded(
                name=trk.name,
                done=trk.done,
                total=trk.total,
                elapsed_ms=(now - self.started) * 1000.0,
                deadline_ms=self._deadline_ms,
            )

    def emit(self, trk: Tracker, now: float, force: bool = False) -> None:
        if not force and now - trk._last_emit < self.interval_s:
            return
        trk._last_emit = now
        elapsed = now - self.started
        eta: Optional[float] = None
        if trk.total and trk.done and trk.done < trk.total:
            eta = elapsed / trk.done * (trk.total - trk.done)
        if STATE.enabled:
            registry().counter("progress.ticks").inc()
        assert self.sink is not None
        self.sink(
            ProgressEvent(
                name=trk.name,
                done=trk.done,
                total=trk.total,
                elapsed_s=elapsed,
                eta_s=eta,
            )
        )


class _ProgressState:
    """Mutable singleton holding the active context (or None).

    Mirrors ``repro.obs.config.STATE``: call sites bind ``PROGRESS`` at
    import time and pay one attribute read per loop entry when inactive.
    """

    __slots__ = ("active",)

    def __init__(self) -> None:
        self.active: Optional[ProgressContext] = None


PROGRESS = _ProgressState()


def tracker(name: str, total: Optional[int] = None, check_every: int = 1):
    """A progress tracker for one loop; shared no-op when inactive.

    ``check_every`` bounds how often the tracker reads the clock: pass a
    larger value for very hot loops (per-cut BFS ticks) and leave it at 1
    when each unit is already substantial (one CPDHB scan).
    """
    ctx = PROGRESS.active
    if ctx is None:
        return NOOP_TRACKER
    return ctx.tracker(name, total, check_every)


@contextmanager
def progress_context(
    sink: Optional[Callable[[ProgressEvent], None]] = None,
    deadline_ms: Optional[float] = None,
    interval_s: float = 0.25,
) -> Iterator[ProgressContext]:
    """Install a progress context for the duration of the block.

    Non-reentrant in spirit (the innermost context wins) but safe to
    nest: the previous context is restored on exit.
    """
    prev = PROGRESS.active
    ctx = ProgressContext(
        sink=sink, deadline_ms=deadline_ms, interval_s=interval_s
    )
    PROGRESS.active = ctx
    try:
        yield ctx
    finally:
        PROGRESS.active = prev
