"""Observability layer (substrate S12): spans, metrics, profiling hooks.

Unified instrumentation across the detection engines, the online monitor,
and the protocol simulator:

* **Metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges, and
  latency histograms with JSON and Prometheus-text exporters;
* **Tracing spans** (:mod:`repro.obs.spans`) — nested wall-time regions
  with structured attributes, forming a per-query call tree;
* **Stat counters** (:mod:`repro.obs.stats`) — the shared helper behind
  every engine's ``DetectionResult.stats`` dict, mirroring into the
  registry when enabled;
* **Progress telemetry** (:mod:`repro.obs.progress`) — rate-limited
  heartbeats and deadlines for the long detection/fuzz loops;
* **Run ledger** (:mod:`repro.obs.ledger`) — durable per-invocation
  ``repro-run-v1`` records behind ``repro runs`` (see ``docs/RUNS.md``).

Disabled by default; the only cost carried by production paths is a
single attribute check per instrumented call site.  Enable globally with
:func:`enable` (or ``REPRO_OBS=1``), or scoped with :class:`Capture`::

    from repro import obs

    with obs.Capture() as cap:
        detect(computation, predicate)
    print(obs.format_span_tree(cap.roots))
    print(cap.registry.to_prometheus())

See ``docs/OBSERVABILITY.md`` for concepts, exporters, and overhead notes.
"""

from repro.obs.config import STATE, disable, enable, is_enabled
from repro.obs.export import (
    format_metrics,
    format_prometheus,
    format_span_tree,
    otlp_json,
    otlp_to_spans,
    spans_to_otlp,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.progress import (
    NOOP_TRACKER,
    PROGRESS,
    DeadlineExceeded,
    ProgressEvent,
    Tracker,
    format_event,
    progress_context,
    stderr_sink,
    tracker,
)
from repro.obs.spans import NOOP, Capture, Span, current_span, span, take_roots
from repro.obs.stats import StatCounters

__all__ = [
    "Capture",
    "Counter",
    "DeadlineExceeded",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP",
    "NOOP_TRACKER",
    "PROGRESS",
    "ProgressEvent",
    "STATE",
    "Span",
    "StatCounters",
    "Tracker",
    "current_span",
    "disable",
    "enable",
    "format_event",
    "format_metrics",
    "format_prometheus",
    "format_span_tree",
    "is_enabled",
    "otlp_json",
    "otlp_to_spans",
    "progress_context",
    "registry",
    "span",
    "spans_to_otlp",
    "stderr_sink",
    "take_roots",
    "tracker",
]
