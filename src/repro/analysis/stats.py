"""Structural statistics of computations.

Detection cost is governed by a trace's *shape* — how concurrent it is,
how densely messages couple the processes, which variable regime its
values follow.  This module quantifies that shape; the benchmark harness
uses it to characterize workloads, and ``python -m repro info --deep``
exposes it to users.

* :func:`concurrency_width` — size of the largest antichain of events
  (Dilworth: the minimum number of causal chains covering the trace); the
  lattice of consistent cuts has dimension-like growth in this width.
* :func:`causal_density` — fraction of ordered (non-initial) event pairs;
  0 means fully concurrent processes, 1 a totally ordered execution.
* :func:`message_statistics` — counts and per-process fan-in/out.
* :func:`variable_profile` — value range and per-event step bound of a
  monitored variable (decides whether the ±1 algorithms of Section 4.2
  apply).
* :func:`summarize` — everything above in one JSON-ready dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.computation import Computation, minimum_chain_cover

__all__ = [
    "MessageStatistics",
    "VariableProfile",
    "concurrency_width",
    "count_runs",
    "causal_density",
    "message_statistics",
    "variable_profile",
    "summarize",
]


def concurrency_width(computation: Computation) -> int:
    """Largest antichain of non-initial events (0 for an empty trace)."""
    ids = [ev.event_id for ev in computation.all_events()]
    if not ids:
        return 0
    return len(minimum_chain_cover(computation, ids))


def causal_density(computation: Computation) -> float:
    """Ordered pairs / all pairs, over distinct non-initial events.

    1.0 for a totally ordered execution (e.g. a single process), 0.0 when
    every pair of events is concurrent.  Returns 0.0 for traces with fewer
    than two events.
    """
    ids = [ev.event_id for ev in computation.all_events()]
    n = len(ids)
    if n < 2:
        return 0.0
    ordered = 0
    for i, e in enumerate(ids):
        for f in ids[i + 1 :]:
            if computation.happened_before(e, f) or computation.happened_before(
                f, e
            ):
                ordered += 1
    return ordered / (n * (n - 1) / 2)


@dataclass(frozen=True)
class MessageStatistics:
    """Message-level shape of a trace."""

    total: int
    senders: Dict[int, int]  # process -> messages sent
    receivers: Dict[int, int]  # process -> messages received
    max_fan_out: int  # most messages sent by a single event


def message_statistics(computation: Computation) -> MessageStatistics:
    """Counts of messages and their distribution over processes/events."""
    senders: Dict[int, int] = {}
    receivers: Dict[int, int] = {}
    per_event: Dict[tuple, int] = {}
    for send, recv in computation.messages:
        senders[send[0]] = senders.get(send[0], 0) + 1
        receivers[recv[0]] = receivers.get(recv[0], 0) + 1
        per_event[send] = per_event.get(send, 0) + 1
    return MessageStatistics(
        total=len(computation.messages),
        senders=senders,
        receivers=receivers,
        max_fan_out=max(per_event.values(), default=0),
    )


@dataclass(frozen=True)
class VariableProfile:
    """Value regime of one monitored variable."""

    name: str
    present: bool
    minimum: Optional[Any]
    maximum: Optional[Any]
    max_step: Optional[int]  # None for non-numeric variables
    unit_step: Optional[bool]
    boolean: bool


def variable_profile(computation: Computation, name: str) -> VariableProfile:
    """Range and per-event step bound of ``name`` across all processes.

    ``unit_step`` is the hypothesis of the paper's Section 4.2 algorithms;
    booleans always satisfy it.
    """
    values: List[Any] = []
    numeric = True
    boolean = True
    max_step: Optional[int] = 0
    for p in range(computation.num_processes):
        events = computation.events_of(p)
        previous: Optional[Any] = None
        for ev in events:
            if name not in ev.values:
                continue
            value = ev.values[name]
            values.append(value)
            if not isinstance(value, bool):
                boolean = False
            if isinstance(value, bool):
                value = int(value)
            if not isinstance(value, (int, float)):
                numeric = False
            elif previous is not None and max_step is not None:
                max_step = max(max_step, abs(int(value) - int(previous)))
            if isinstance(value, (int, float)):
                previous = value
    if not values:
        return VariableProfile(name, False, None, None, None, None, False)
    if not numeric:
        return VariableProfile(
            name, True, None, None, None, None, boolean
        )
    numeric_values = [int(v) if isinstance(v, bool) else v for v in values]
    return VariableProfile(
        name=name,
        present=True,
        minimum=min(numeric_values),
        maximum=max(numeric_values),
        max_step=max_step,
        unit_step=(max_step is not None and max_step <= 1),
        boolean=boolean,
    )


def count_runs(computation: Computation) -> int:
    """Number of runs (linearizations) of the computation.

    Dynamic program over the cut lattice: the number of maximal chains
    reaching a cut is the sum over its predecessors.  Exact; cost is the
    lattice size, which grows exponentially with concurrency — use on
    small traces (this is the very explosion the paper quantifies, now as
    a number of *runs* rather than states).
    """
    from repro.computation import iter_levels

    counts: Dict[tuple, int] = {}
    levels = list(iter_levels(computation))
    for level_index, level in enumerate(levels):
        for cut in level:
            if level_index == 0:
                counts[cut.frontier] = 1
            else:
                counts[cut.frontier] = sum(
                    counts[prev.frontier] for prev in cut.predecessors()
                )
    final_level = levels[-1]
    assert len(final_level) == 1
    return counts[final_level[0].frontier]


def summarize(computation: Computation) -> Dict[str, Any]:
    """One JSON-ready dictionary with the full structural profile."""
    variables = sorted(
        {
            key
            for ev in computation.all_events(include_initial=True)
            for key in ev.values
        }
    )
    messages = message_statistics(computation)
    return {
        "processes": computation.num_processes,
        "events": computation.total_events(),
        "events_per_process": [
            computation.num_events(p)
            for p in range(computation.num_processes)
        ],
        "messages": messages.total,
        "max_fan_out": messages.max_fan_out,
        "concurrency_width": concurrency_width(computation),
        "causal_density": round(causal_density(computation), 4),
        "variables": {
            name: {
                "min": profile.minimum,
                "max": profile.maximum,
                "max_step": profile.max_step,
                "unit_step": profile.unit_step,
                "boolean": profile.boolean,
            }
            for name in variables
            for profile in [variable_profile(computation, name)]
        },
    }
