"""Protocol-program lint rules (PROT2xx).

Online detection trusts user-written :class:`ProcessProgram` subclasses to
behave like isolated distributed processes: no state shared across
instances, no channels other than ``ctx.send``, and crash-restart hooks
that actually wipe volatile state.  These rules inspect every
``ProcessProgram`` subclass (direct, or transitively within a file) for
the simulated-process races and fault-tolerance bugs that the fault
injector would otherwise only expose dynamically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Rule,
    Severity,
    register_rule,
)
from repro.analysis.lint.determinism import MUTABLE_FACTORIES, clock_call

#: Callback names the simulator invokes; state they mutate is volatile.
HANDLER_METHODS = ("on_start", "on_message", "on_timer")

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "insert", "pop", "popitem", "popleft", "remove", "reverse",
        "rotate", "setdefault", "sort", "update",
    }
)


def _base_names(class_def: ast.ClassDef) -> List[str]:
    names = []
    for base in class_def.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def process_program_classes(tree: ast.Module) -> List[ast.ClassDef]:
    """Every class subclassing ProcessProgram, directly or via a class
    defined earlier in the same file."""
    subclasses: Set[str] = {"ProcessProgram"}
    found: List[ast.ClassDef] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if any(base in subclasses for base in _base_names(node)):
            subclasses.add(node.name)
            found.append(node)
    return found


def _self_attr(node: ast.expr) -> Optional[str]:
    """``x`` for ``self.x`` (possibly behind subscripts), else None."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class _MethodFacts:
    """Per-method: attributes written and self-methods called."""

    mutated: Set[str] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)
    first_mutation_line: Dict[str, int] = field(default_factory=dict)


def _method_facts(method: ast.FunctionDef) -> _MethodFacts:
    facts = _MethodFacts()

    def note(attr: Optional[str], line: int) -> None:
        if attr is None:
            return
        facts.mutated.add(attr)
        facts.first_mutation_line.setdefault(attr, line)

    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                note(_self_attr(target), node.lineno)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            note(_self_attr(node.target), node.lineno)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in MUTATING_METHODS:
                    note(_self_attr(func.value), node.lineno)
                elif (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    facts.calls.add(func.attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                note(_self_attr(target), node.lineno)
    return facts


def _closure(
    start: List[str], facts: Dict[str, _MethodFacts]
) -> Dict[str, int]:
    """Attr -> first mutation line, reachable from ``start`` methods."""
    mutated: Dict[str, int] = {}
    seen: Set[str] = set()
    queue = list(start)
    while queue:
        name = queue.pop()
        if name in seen or name not in facts:
            continue
        seen.add(name)
        for attr in facts[name].mutated:
            line = facts[name].first_mutation_line[attr]
            if attr not in mutated or line < mutated[attr]:
                mutated[attr] = line
        queue.extend(sorted(facts[name].calls))
    return mutated


@register_rule
class MutableClassAttrRule(Rule):
    code = "PROT201"
    name = "mutable-class-attr"
    severity = Severity.ERROR
    description = (
        "mutable class-level attribute on a ProcessProgram subclass is "
        "shared by every simulated process instance — hidden cross-"
        "process channel; initialize per-instance state in __init__"
    )

    @staticmethod
    def _is_mutable_value(node: Optional[ast.expr]) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in MUTABLE_FACTORIES
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_def in process_program_classes(ctx.tree):
            for stmt in class_def.body:
                value = None
                target = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    value, target = stmt.value, stmt.targets[0]
                elif isinstance(stmt, ast.AnnAssign):
                    value, target = stmt.value, stmt.target
                if not isinstance(target, ast.Name):
                    continue
                if self._is_mutable_value(value):
                    yield self.finding(
                        ctx,
                        stmt,
                        f"class attribute {class_def.name}.{target.id} is "
                        "a mutable container shared across all process "
                        "instances; move it into __init__",
                    )


@register_rule
class SharedGlobalStateRule(Rule):
    code = "PROT202"
    name = "shared-global-state"
    severity = Severity.ERROR
    description = (
        "ProcessProgram handler reads/writes module-level mutable state — "
        "cross-process communication that bypasses the message channels "
        "and breaks under crash/restart faults"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_names: Set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                module_names.add(stmt.target.id)

        for class_def in process_program_classes(ctx.tree):
            for node in ast.walk(class_def):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        ctx,
                        node,
                        f"global statement in {class_def.name} shares "
                        "state across process instances; use instance "
                        "attributes and messages",
                    )
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    base = node.func.value
                    if (
                        node.func.attr in MUTATING_METHODS
                        and isinstance(base, ast.Name)
                        and base.id in module_names
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"mutating module-level {base.id!r} from "
                            f"{class_def.name} bypasses the message "
                            "channels",
                        )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        inner = target
                        while isinstance(inner, ast.Subscript):
                            inner = inner.value
                        if (
                            isinstance(inner, ast.Name)
                            and isinstance(target, ast.Subscript)
                            and inner.id in module_names
                        ):
                            yield self.finding(
                                ctx,
                                node,
                                f"writing module-level {inner.id!r} from "
                                f"{class_def.name} bypasses the message "
                                "channels",
                            )


@register_rule
class RestartMissingResetRule(Rule):
    code = "PROT203"
    name = "restart-missing-reset"
    severity = Severity.ERROR
    description = (
        "on_restart override leaves some attribute mutated by the "
        "on_start/on_message/on_timer handlers untouched — a recovered "
        "process would resurrect volatile pre-crash state"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_def in process_program_classes(ctx.tree):
            methods = {
                stmt.name: stmt
                for stmt in class_def.body
                if isinstance(stmt, ast.FunctionDef)
            }
            if "on_restart" not in methods:
                continue
            facts = {
                name: _method_facts(node) for name, node in methods.items()
            }
            handlers = [m for m in HANDLER_METHODS if m in methods]
            volatile = _closure(handlers, facts)
            reset = _closure(["on_restart"], facts)
            missing = sorted(set(volatile) - set(reset))
            for attr in missing:
                yield self.finding(
                    ctx,
                    methods["on_restart"],
                    f"{class_def.name}.on_restart does not re-initialize "
                    f"self.{attr} (mutated at line {volatile[attr]}); a "
                    "restarted process would keep pre-crash state",
                )


@register_rule
class ProtocolDirectRandomRule(Rule):
    code = "PROT204"
    name = "protocol-direct-random"
    severity = Severity.ERROR
    description = (
        "ProcessProgram method uses the `random` module or a wall clock "
        "directly; use the simulator-seeded `ctx.random` stream and "
        "`ctx.now` so runs stay reproducible per seed"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_def in process_program_classes(ctx.tree):
            for node in ast.walk(class_def):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"random.{func.attr}(...) inside "
                        f"{class_def.name}; simulated processes must "
                        "draw from ctx.random",
                    )
                    continue
                name = clock_call(node)
                if name is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() inside {class_def.name}; simulated "
                        "processes must read ctx.now",
                    )
