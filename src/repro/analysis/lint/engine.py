"""Lint driver: collect files, run rules, apply suppressions.

:func:`run_lint` is the programmatic entrypoint behind ``repro lint``::

    from repro.analysis import LintConfig, run_lint

    report = run_lint(["src/repro", "examples"], LintConfig())
    for finding in report.findings:
        print(finding.location(), finding.message)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.lint.core import (
    AnalysisError,
    FileContext,
    Finding,
    LintConfig,
    Rule,
    Severity,
    all_rules,
    parse_suppressions,
    register_rule,
    resolve_rule_ids,
)
from repro.analysis.lint.keys import CanonicalKeys, load_canonical_keys

# Import for side effect: rule registration.
from repro.analysis.lint import classify_rules as _classify  # noqa: F401
from repro.analysis.lint import conformance as _conformance  # noqa: F401
from repro.analysis.lint import determinism as _determinism  # noqa: F401
from repro.analysis.lint import protocol as _protocol  # noqa: F401

__all__ = ["LintReport", "collect_files", "discover_docs", "run_lint"]

#: The two canonical-key documents, relative to a repo root.
DOC_FILES = ("docs/ALGORITHMS.md", "docs/OBSERVABILITY.md")


@register_rule
class ParseErrorRule(Rule):
    """Placeholder rule for unparseable files (reported by the driver)."""

    code = "GEN001"
    name = "parse-error"
    severity = Severity.ERROR
    description = "file could not be parsed as Python"

    def check(self, ctx: FileContext):
        return iter(())


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    rules_run: Sequence[str] = ()
    #: True when the conformance rules were skipped (docs not found).
    docs_skipped: bool = False
    docs_paths: Sequence[str] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "rules_run": list(self.rules_run),
            "docs_skipped": self.docs_skipped,
            "docs_paths": list(self.docs_paths),
        }


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    unique = sorted({str(p) for p in files})
    if not unique:
        raise AnalysisError(f"no Python files found under {list(paths)}")
    return [Path(p) for p in unique]


def discover_docs(paths: Sequence[str]) -> Optional[List[str]]:
    """Locate the canonical-key docs near the linted paths.

    Walks upward from each path (and the current directory) until a
    directory containing every file in :data:`DOC_FILES` is found.
    """
    candidates: List[Path] = [Path.cwd()]
    for raw in paths:
        path = Path(raw).resolve()
        candidates.append(path if path.is_dir() else path.parent)
    for start in candidates:
        for root in (start, *start.parents):
            docs = [root / rel for rel in DOC_FILES]
            if all(doc.is_file() for doc in docs):
                return [str(doc) for doc in docs]
    return None


def _selected_rules(config: LintConfig) -> List[Rule]:
    rules = all_rules()
    if config.select:
        chosen = resolve_rule_ids(config.select)
        rules = [r for r in rules if r.code in chosen]
    if config.ignore:
        dropped = resolve_rule_ids(config.ignore)
        rules = [r for r in rules if r.code not in dropped]
    if not rules:
        raise AnalysisError("rule selection left nothing to run")
    return rules


def run_lint(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> LintReport:
    """Run every selected rule over the given paths.

    Raises:
        AnalysisError: On usage errors — unknown paths, unknown rule ids,
            unreadable docs, or (with ``require_docs``) missing docs.
    """
    config = config or LintConfig()
    rules = _selected_rules(config)
    files = collect_files(paths)

    canonical: Optional[CanonicalKeys] = None
    docs_paths: Sequence[str] = ()
    if config.docs_paths is not None:
        docs_paths = [str(p) for p in config.docs_paths]
        missing = [p for p in docs_paths if not Path(p).is_file()]
        if missing:
            raise AnalysisError(f"canonical-key docs not found: {missing}")
    else:
        discovered = discover_docs(paths)
        if discovered is not None:
            docs_paths = discovered
        elif config.require_docs:
            raise AnalysisError(
                "cannot locate docs/ALGORITHMS.md + docs/OBSERVABILITY.md "
                "for the conformance rules; pass --docs-root"
            )
    if docs_paths:
        try:
            canonical = load_canonical_keys(docs_paths)
        except OSError as exc:
            raise AnalysisError(f"cannot read canonical-key docs: {exc}")

    env: Dict[str, Any] = {"config": config}
    if canonical is not None:
        env["canonical_keys"] = canonical

    report = LintReport(
        rules_run=[r.code for r in rules],
        docs_skipped=canonical is None,
        docs_paths=docs_paths,
    )
    parse_rule = next(r for r in all_rules() if r.code == "GEN001")
    run_parse_rule = any(r.code == "GEN001" for r in rules)

    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}")
        lines = source.splitlines()
        suppressions = parse_suppressions(lines)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            if run_parse_rule:
                report.findings.append(
                    Finding(
                        code=parse_rule.code,
                        name=parse_rule.name,
                        severity=parse_rule.severity,
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}",
                    )
                )
            report.files_checked += 1
            continue
        ctx = FileContext(
            path=str(path), source=source, tree=tree, lines=lines, env=env
        )
        for rule in rules:
            for finding in rule.check(ctx):
                if suppressions.covers(finding):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
        report.files_checked += 1

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return report
