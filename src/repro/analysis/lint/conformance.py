"""Instrumentation-conformance rules (OBS3xx).

The observability contract has two halves:

* every detection-engine entrypoint (a public function in
  ``repro/detection`` returning a ``DetectionResult``) must run under an
  obs span, directly or through a delegate in the same module;
* every metric/stat/span name literal the code emits must appear in the
  canonical key tables of ``docs/ALGORITHMS.md`` and
  ``docs/OBSERVABILITY.md`` (parsed by :mod:`repro.analysis.lint.keys`),
  so the docs and the code cannot silently drift apart.

The parsed canonical keys are injected by the engine into
``FileContext.env["canonical_keys"]``; when the docs could not be located
the key rules are skipped (see ``LintConfig.require_docs``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Rule,
    Severity,
    register_rule,
)
from repro.analysis.lint.keys import HOLE, CanonicalKeys, key_from_ast

#: Method names on a registry whose first argument is a metric name.
_INSTRUMENT_METHODS = ("counter", "gauge", "histogram")


def _joined(segments: Sequence[str]) -> str:
    return ".".join("{…}" if seg == HOLE else seg for seg in segments)


def _canonical(ctx: FileContext) -> Optional[CanonicalKeys]:
    return ctx.env.get("canonical_keys")


def _docs_list(keys: CanonicalKeys) -> str:
    return " + ".join(keys.sources)


@register_rule
class MissingSpanRule(Rule):
    code = "OBS301"
    name = "missing-span"
    severity = Severity.ERROR
    description = (
        "public detection-engine entrypoint (returns DetectionResult) "
        "never opens an obs span, directly or via a same-module delegate"
    )

    @staticmethod
    def _returns_detection_result(func: ast.FunctionDef) -> bool:
        returns = func.returns
        if isinstance(returns, ast.Name):
            return returns.id == "DetectionResult"
        if isinstance(returns, ast.Attribute):
            return returns.attr == "DetectionResult"
        if isinstance(returns, ast.Constant) and isinstance(
            returns.value, str
        ):
            return returns.value.split(".")[-1] == "DetectionResult"
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "detection" not in ctx.posix_parts:
            return
        functions = {
            stmt.name: stmt
            for stmt in ctx.tree.body
            if isinstance(stmt, ast.FunctionDef)
        }
        opens_span: Dict[str, bool] = {}
        local_calls: Dict[str, Set[str]] = {}
        for name, func in functions.items():
            direct = False
            calls: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Name)
                        and node.func.id == "span"
                    ):
                        direct = True
                    elif isinstance(node.func, ast.Name):
                        calls.add(node.func.id)
            opens_span[name] = direct
            local_calls[name] = calls

        def reaches_span(name: str, seen: Set[str]) -> bool:
            if name in seen or name not in functions:
                return False
            seen.add(name)
            if opens_span[name]:
                return True
            return any(
                reaches_span(callee, seen)
                for callee in sorted(local_calls[name])
            )

        for name in sorted(functions):
            func = functions[name]
            if name.startswith("_"):
                continue
            if not self._returns_detection_result(func):
                continue
            if not reaches_span(name, set()):
                yield self.finding(
                    ctx,
                    func,
                    f"engine entrypoint {name}() returns a "
                    "DetectionResult but never opens an obs span "
                    '(use `with span("engine.<name>", ...)`) — '
                    "profiling cannot see it",
                )


class _KeyCollector(ast.NodeVisitor):
    """Collect (node, segments, kind) for emitted metric/span names."""

    def __init__(self) -> None:
        self.metrics: List[Tuple[ast.AST, List[str]]] = []
        self.spans: List[Tuple[ast.AST, List[str]]] = []
        #: var name -> namespace segments of its StatCounters binding
        self._stat_vars: Dict[str, List[str]] = {}

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "StatCounters"
            and value.args
        ):
            namespace = key_from_ast(value.args[0])
            if namespace is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._stat_vars[target.id] = namespace
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "span" and node.args:
            segments = key_from_ast(node.args[0])
            if segments is not None:
                self.spans.append((node, segments))
        elif isinstance(func, ast.Attribute) and node.args:
            if func.attr in _INSTRUMENT_METHODS:
                segments = key_from_ast(node.args[0])
                if segments is not None:
                    self.metrics.append((node, segments))
            elif (
                func.attr in ("inc", "set")
                and isinstance(func.value, ast.Name)
                and func.value.id in self._stat_vars
            ):
                key = key_from_ast(node.args[0])
                if key is not None:
                    namespace = self._stat_vars[func.value.id]
                    self.metrics.append((node, namespace + key))
        self.generic_visit(node)


@register_rule
class UnknownMetricKeyRule(Rule):
    code = "OBS302"
    name = "unknown-metric-key"
    severity = Severity.ERROR
    description = (
        "metric or stat key emitted in code is absent from the canonical "
        "key tables in docs/ALGORITHMS.md / docs/OBSERVABILITY.md — "
        "document it (or fix the typo) so the docs cannot drift"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        keys = _canonical(ctx)
        if keys is None:
            return
        collector = _KeyCollector()
        collector.visit(ctx.tree)
        for node, segments in collector.metrics:
            if keys.match_metric(segments) is None:
                yield self.finding(
                    ctx,
                    node,
                    f"metric key {_joined(segments)!r} is not declared "
                    f"in the canonical key tables ({_docs_list(keys)})",
                )


@register_rule
class UnknownSpanNameRule(Rule):
    code = "OBS303"
    name = "unknown-span-name"
    severity = Severity.ERROR
    description = (
        "span name opened in code is absent from the instrumented-"
        "surfaces table in docs/OBSERVABILITY.md"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        keys = _canonical(ctx)
        if keys is None:
            return
        collector = _KeyCollector()
        collector.visit(ctx.tree)
        for node, segments in collector.spans:
            if keys.match_span(segments) is None:
                yield self.finding(
                    ctx,
                    node,
                    f"span name {_joined(segments)!r} is not declared in "
                    f"the instrumented-surfaces table ({_docs_list(keys)})",
                )
