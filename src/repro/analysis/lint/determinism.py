"""Determinism lint rules (DET1xx).

The reproduction's contracts — bit-for-bit fuzz reproducibility, the
parallel sweep's deterministic first witness, byte-identical checkpoints
and exports — all break the same way: code reads a global RNG, a wall
clock, interpreter-specific ``id()`` values, or hash order.  These rules
flag the hazard classes statically; the PYTHONHASHSEED subprocess test in
``tests/test_testkit_fuzz.py`` is the dynamic backstop.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Rule,
    Severity,
    register_rule,
)

__all__ = ["set_valued", "module_random_call"]

#: ``random`` module functions that consume the hidden global RNG stream.
GLOBAL_RNG_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: Wall-clock reads: (module-ish name, attribute).
CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "localtime"),
        ("time", "gmtime"),
        ("time", "ctime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Container/iteration wrappers that freeze an ordering.
ORDERING_SINKS = frozenset({"list", "tuple", "enumerate"})

MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict"}
)


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for pure Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_random_call(node: ast.Call) -> Optional[str]:
    """Name of the global-RNG ``random.X(...)`` call, or None.

    ``random.Random(seed)`` is fine (an owned, seeded stream);
    ``random.Random()`` with no seed argument is not.
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if not isinstance(func.value, ast.Name) or func.value.id != "random":
        return None
    if func.attr in GLOBAL_RNG_FUNCS:
        return func.attr
    if func.attr in ("Random", "SystemRandom") and not (
        node.args or node.keywords
    ):
        return func.attr
    return None


def clock_call(node: ast.Call) -> Optional[str]:
    """Dotted name of a wall-clock read call, or None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    base_name = None
    if isinstance(base, ast.Name):
        base_name = base.id
    elif isinstance(base, ast.Attribute):
        base_name = base.attr  # e.g. datetime.datetime.now
    if base_name is None:
        return None
    if (base_name, func.attr) in CLOCK_CALLS:
        return f"{base_name}.{func.attr}"
    return None


def set_valued(node: ast.expr) -> bool:
    """Is the expression syntactically a set (or os.listdir result)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("set", "frozenset"):
            return True
        if name in ("os.listdir", "listdir"):
            return True
        if name in ("set.union", "set.intersection"):
            return True
        # method calls returning sets on an explicit set expression,
        # e.g. ``{1, 2}.union(other)``
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference"
        ):
            return set_valued(node.func.value)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return set_valued(node.left) or set_valued(node.right)
    return False


@register_rule
class UnseededRandomRule(Rule):
    code = "DET101"
    name = "unseeded-random"
    severity = Severity.ERROR
    description = (
        "call into the `random` module's hidden global RNG (or an "
        "unseeded `random.Random()`); use an explicitly seeded "
        "`random.Random(seed)` stream instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = module_random_call(node)
                if func is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"random.{func}() uses the process-global RNG; "
                        "pass an explicit random.Random(seed) stream",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    bad = sorted(
                        alias.name
                        for alias in node.names
                        if alias.name in GLOBAL_RNG_FUNCS
                    )
                    if bad:
                        yield self.finding(
                            ctx,
                            node,
                            "importing global-RNG functions "
                            f"({', '.join(bad)}) from random; use a "
                            "seeded random.Random(seed) stream",
                        )


@register_rule
class WallClockRule(Rule):
    code = "DET102"
    name = "wall-clock"
    severity = Severity.ERROR
    description = (
        "wall-clock read (`time.time`, `datetime.now`, ...) in library "
        "code; use logical/simulated time, or `perf_counter` for "
        "duration-only measurement"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = clock_call(node)
            if name is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() reads the wall clock; engine and testkit "
                    "code paths must be deterministic (perf_counter is "
                    "fine for durations)",
                )


@register_rule
class UnsortedSetIterationRule(Rule):
    code = "DET103"
    name = "unsorted-set-iteration"
    severity = Severity.ERROR
    description = (
        "iteration order of a set / frozenset / os.listdir result "
        "escapes into ordered output without a `sorted(...)` wrapper"
    )

    _MESSAGE = (
        "{what} freezes set/listing iteration order, which varies with "
        "PYTHONHASHSEED or the filesystem; wrap the source in sorted(...)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and set_valued(node.iter):
                yield self.finding(
                    ctx,
                    node.iter,
                    self._MESSAGE.format(what="for-loop over a set"),
                )
            elif isinstance(node, ast.Call):
                func_name = _dotted(node.func)
                if (
                    func_name in ORDERING_SINKS
                    and node.args
                    and set_valued(node.args[0])
                ):
                    yield self.finding(
                        ctx,
                        node,
                        self._MESSAGE.format(what=f"{func_name}(<set>)"),
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and set_valued(node.args[0])
                ):
                    yield self.finding(
                        ctx,
                        node,
                        self._MESSAGE.format(what="str.join over a set"),
                    )
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if set_valued(gen.iter):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            self._MESSAGE.format(
                                what="list comprehension over a set"
                            ),
                        )


@register_rule
class IdAsKeyRule(Rule):
    code = "DET104"
    name = "id-as-key"
    severity = Severity.ERROR
    description = (
        "`id()` used as a mapping key or sort key; id values differ "
        "between runs — key on stable identity instead"
    )

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript) and self._is_id_call(
                node.slice
            ):
                yield self.finding(
                    ctx, node, "id(...) used as a subscript/mapping key"
                )
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is not None and self._is_id_call(key):
                        yield self.finding(
                            ctx, key, "id(...) used as a dict literal key"
                        )
            elif isinstance(node, ast.DictComp) and self._is_id_call(
                node.key
            ):
                yield self.finding(
                    ctx, node.key, "id(...) used as a dict comprehension key"
                )
            elif isinstance(node, ast.Call):
                func_name = _dotted(node.func)
                sortish = func_name in ("sorted", "min", "max") or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                )
                if sortish:
                    for kw in node.keywords:
                        if (
                            kw.arg == "key"
                            and isinstance(kw.value, ast.Name)
                            and kw.value.id == "id"
                        ):
                            yield self.finding(
                                ctx, kw.value, "id used as a sort key"
                            )


@register_rule
class DictFromSetRule(Rule):
    code = "DET105"
    name = "dict-from-set"
    severity = Severity.ERROR
    description = (
        "dict built from an unsorted set source; insertion order (and "
        "hence serialization order) then depends on hash order"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.DictComp):
                for gen in node.generators:
                    if set_valued(gen.iter):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "dict comprehension iterates a set; wrap the "
                            "source in sorted(...) for a stable key order",
                        )
            elif isinstance(node, ast.Call):
                func_name = _dotted(node.func)
                if (
                    func_name is not None
                    and func_name.endswith("fromkeys")
                    and node.args
                    and set_valued(node.args[0])
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "dict.fromkeys over a set; wrap the source in "
                        "sorted(...) for a stable key order",
                    )
