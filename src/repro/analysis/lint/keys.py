"""Canonical metric/span key registry, parsed from the docs tables.

``docs/ALGORITHMS.md`` ("Canonical stat keys") and
``docs/OBSERVABILITY.md`` (the metric tables and the instrumented-surfaces
table) are the contract for every metric, stat, and span name the code
emits.  This module parses those markdown tables into :class:`KeyPattern`
objects so the conformance checker can prove that code and docs agree —
the docs are the single source of truth, and drift fails the lint.

Pattern syntax (as written in the docs):

* literal dotted names — ``monitor.observations``;
* ``<placeholder>`` segments match exactly one segment —
  ``engine.<name>.<stat>``, ``sim.steps.<kind>``;
* ``{a,b}`` alternation — ``perf.clause_cache.{hits,misses}``;
* a trailing ``*`` segment matches one or more segments — ``perf.*``.

Code-side keys extracted from the AST may contain *holes* (f-string
interpolations); a hole matches one or more canonical segments, so
``f"sim.steps.{kind}"`` conforms to ``sim.steps.<kind>`` and
``f"perf.{key}"`` conforms to any ``perf.…`` entry.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CanonicalKeys",
    "HOLE",
    "KeyPattern",
    "key_from_ast",
    "load_canonical_keys",
]

#: Marker for an f-string interpolation inside a code-side key.
HOLE = "\x00"

_WILD = re.compile(r"^<[^>]*>$")
_ALT = re.compile(r"^\{([^}]*)\}$")


@dataclass(frozen=True)
class KeyPattern:
    """One canonical key pattern plus where the docs declare it."""

    raw: str
    segments: Tuple[str, ...]
    source: str  #: ``<file>:<line>`` of the docs table row

    def matches(self, key_segments: Sequence[str]) -> bool:
        return _match(tuple(key_segments), self.segments)


def _segment_matches(code_seg: str, pat_seg: str) -> bool:
    if pat_seg == "*" or _WILD.match(pat_seg):
        return True
    alt = _ALT.match(pat_seg)
    if alt:
        options = {part.strip() for part in alt.group(1).split(",")}
        return code_seg in options
    return code_seg == pat_seg


def _match(code: Tuple[str, ...], pattern: Tuple[str, ...]) -> bool:
    if not code:
        return not pattern
    if not pattern:
        return False
    head, rest = code[0], code[1:]
    if head == HOLE:
        # A hole absorbs one or more pattern segments.
        return any(
            _match(rest, pattern[consumed:])
            for consumed in range(1, len(pattern) + 1)
        )
    if pattern[0] == "*":
        # A trailing docs wildcard absorbs the remaining code segments.
        return len(pattern) == 1
    if not _segment_matches(head, pattern[0]):
        return False
    return _match(rest, pattern[1:])


@dataclass
class CanonicalKeys:
    """The parsed registry: metric-name and span-name patterns."""

    metrics: List[KeyPattern] = field(default_factory=list)
    spans: List[KeyPattern] = field(default_factory=list)
    sources: Tuple[str, ...] = ()

    def match_metric(self, segments: Sequence[str]) -> Optional[KeyPattern]:
        for pattern in self.metrics:
            if pattern.matches(segments):
                return pattern
        return None

    def match_span(self, segments: Sequence[str]) -> Optional[KeyPattern]:
        for pattern in self.spans:
            if pattern.matches(segments):
                return pattern
        return None


# ----------------------------------------------------------------------
# Markdown table parsing
# ----------------------------------------------------------------------
_BACKTICK = re.compile(r"`([^`]+)`")
_SEPARATOR = re.compile(r"^[\s|:-]+$")


def _split_row(line: str) -> List[str]:
    return [cell.strip() for cell in line.strip().strip("|").split("|")]


def _iter_tables(text: str):
    """Yield ``(header_cells, [(lineno, row_cells), ...])`` per table."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.lstrip().startswith("|"):
            header = _split_row(line)
            rows: List[Tuple[int, List[str]]] = []
            j = i + 1
            while j < len(lines) and lines[j].lstrip().startswith("|"):
                if not _SEPARATOR.match(lines[j]):
                    rows.append((j + 1, _split_row(lines[j])))
                j += 1
            yield header, rows
            i = j
        else:
            i += 1


def _pattern(raw: str, source: str) -> Optional[KeyPattern]:
    raw = raw.strip()
    if not raw or "." not in raw and raw != "*":
        return None
    return KeyPattern(raw=raw, segments=tuple(raw.split(".")), source=source)


def _cell_keys(cell: str, source: str) -> List[KeyPattern]:
    patterns = []
    for token in _BACKTICK.findall(cell):
        # ``perf.*`` style wildcard rows; plain prose tokens are skipped.
        pattern = _pattern(token, source)
        if pattern is not None:
            patterns.append(pattern)
    return patterns


def load_canonical_keys(docs_paths: Sequence[str]) -> CanonicalKeys:
    """Parse the key tables of every given markdown file.

    Recognized tables:

    * header contains a ``metric`` column → first column holds metric keys;
    * header is ``layer | spans | metrics`` (the instrumented-surfaces
      table) → columns two and three hold span and metric keys;
    * header contains ``engine`` and ``key`` columns (the canonical stat
      keys table) → rows combine to ``engine.<engine>.<key>`` metrics.
    """
    registry = CanonicalKeys(sources=tuple(str(p) for p in docs_paths))
    for path in docs_paths:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        for header, rows in _iter_tables(text):
            lowered = [cell.lower() for cell in header]
            if "spans" in lowered and "metrics" in lowered:
                span_col = lowered.index("spans")
                metric_col = lowered.index("metrics")
                for lineno, cells in rows:
                    source = f"{path}:{lineno}"
                    if span_col < len(cells):
                        registry.spans.extend(
                            _cell_keys(cells[span_col], source)
                        )
                    if metric_col < len(cells):
                        registry.metrics.extend(
                            _cell_keys(cells[metric_col], source)
                        )
            elif lowered and lowered[0].startswith("metric"):
                for lineno, cells in rows:
                    registry.metrics.extend(
                        _cell_keys(cells[0], f"{path}:{lineno}")
                    )
            elif any(c.startswith("engine") for c in lowered) and any(
                c == "key" for c in lowered
            ):
                engine_col = next(
                    i for i, c in enumerate(lowered) if c.startswith("engine")
                )
                key_col = lowered.index("key")
                for lineno, cells in rows:
                    if key_col >= len(cells):
                        continue
                    source = f"{path}:{lineno}"
                    engines = _BACKTICK.findall(cells[engine_col])
                    keys = _BACKTICK.findall(cells[key_col])
                    for engine in engines:
                        for key in keys:
                            pattern = _pattern(
                                f"engine.{engine}.{key}", source
                            )
                            if pattern is not None:
                                registry.metrics.append(pattern)
    return registry


# ----------------------------------------------------------------------
# Code-side key extraction
# ----------------------------------------------------------------------
def key_from_ast(node: ast.expr) -> Optional[List[str]]:
    """Dotted segments of a string literal or f-string, holes included.

    Returns None for expressions that are not (f-)string literals, or for
    keys with no literal content at all (nothing to check).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    elif isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                parts.append(value.value)
            else:
                parts.append(HOLE)
        text = "".join(parts)
        if text.replace(HOLE, "").replace(".", "") == "":
            return None
    else:
        return None
    segments = [seg for seg in text.split(".") if seg != ""]
    return segments or None
