"""Opaque-predicate classification lint rules (CLS4xx).

An opaque predicate — a ``FunctionPredicate`` lambda or a
``GlobalPredicate`` subclass with a hand-written ``evaluate`` — hides its
class from dispatch: without the runtime classifier it falls to
enumeration, and even with it the query pays a classify-and-validate
step that a structured predicate never would.  When the body lies inside
the classifier's supported fragment (:mod:`repro.analysis.classify
.fragment`) the structure is *statically recoverable*, so these rules
flag the opaque form and point at the structured algebra instead
(``local``/``conjunctive``/``cnf``/``sum_predicate``/...).

The rules reuse the classifier's own parser: a body is flagged iff
``fragment.parses`` accepts it, so the lint and the runtime classifier
can never disagree about what "classifiable" means.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.classify.fragment import parses
from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Rule,
    Severity,
    register_rule,
)

__all__ = ["classifiable_lambda", "classifiable_evaluate"]


def _single_positional(args: ast.arguments) -> Optional[str]:
    """The lone positional parameter name, or None when the signature
    has any other shape (defaults, varargs, kw-only, ...)."""
    if (
        args.posonlyargs
        or args.kwonlyargs
        or args.vararg
        or args.kwarg
        or args.defaults
        or args.kw_defaults
    ):
        return None
    if len(args.args) != 1:
        return None
    return args.args[0].arg


def classifiable_lambda(node: ast.Lambda) -> bool:
    """Is the lambda a one-cut callable inside the supported fragment?"""
    cut_name = _single_positional(node.args)
    if cut_name is None:
        return False
    return parses(node.body, cut_name)


def _evaluate_body(
    fn: ast.FunctionDef,
) -> Optional[Tuple[ast.expr, str]]:
    """``(returned expression, cut parameter)`` of a single-return
    ``evaluate(self, cut)`` override, or None for any other shape."""
    args = fn.args
    if (
        args.posonlyargs
        or args.kwonlyargs
        or args.vararg
        or args.kwarg
        or args.defaults
        or args.kw_defaults
    ):
        return None
    if len(args.args) != 2:  # self + cut
        return None
    cut_name = args.args[1].arg
    body = list(fn.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # docstring
    if len(body) != 1 or not isinstance(body[0], ast.Return):
        return None
    if body[0].value is None:
        return None
    return body[0].value, cut_name


def classifiable_evaluate(fn: ast.FunctionDef) -> bool:
    """Is the ``evaluate`` override a single classifiable return?"""
    extracted = _evaluate_body(fn)
    if extracted is None:
        return False
    returned, cut_name = extracted
    return parses(returned, cut_name)


@register_rule
class OpaqueClassifiableLambdaRule(Rule):
    code = "CLS401"
    name = "opaque-classifiable-lambda"
    severity = Severity.ERROR
    description = (
        "`FunctionPredicate(lambda cut: ...)` whose body lies in the "
        "classifier's supported fragment; write it in the structured "
        "predicate algebra (local/conjunctive/cnf/sum_predicate/...) so "
        "dispatch needs no classify-and-validate step"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "FunctionPredicate" or not node.args:
                continue
            fn_arg = node.args[0]
            if isinstance(fn_arg, ast.Lambda) and classifiable_lambda(
                fn_arg
            ):
                yield self.finding(
                    ctx,
                    node,
                    "opaque lambda is statically classifiable; build the "
                    "structured predicate directly (docs/ANALYSIS.md, "
                    "'Predicate classification')",
                )


@register_rule
class OpaqueClassifiableEvaluateRule(Rule):
    code = "CLS402"
    name = "opaque-classifiable-evaluate"
    severity = Severity.ERROR
    description = (
        "`GlobalPredicate` subclass whose `evaluate` override is a "
        "single classifiable return; the class structure it hides is "
        "statically recoverable — use the structured algebra instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {
                base.id
                if isinstance(base, ast.Name)
                else base.attr if isinstance(base, ast.Attribute) else None
                for base in node.bases
            }
            if "GlobalPredicate" not in bases:
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == "evaluate"
                    and classifiable_evaluate(item)
                ):
                    yield self.finding(
                        ctx,
                        item,
                        f"{node.name}.evaluate hides a classifiable body "
                        "behind an opaque override; build the structured "
                        "predicate directly (docs/ANALYSIS.md, 'Predicate "
                        "classification')",
                    )
