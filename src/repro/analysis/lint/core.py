"""Core objects of the static-analysis framework.

A *rule* inspects one parsed file (:class:`FileContext`) and yields
:class:`Finding` objects.  Rules are registered in a module-level
registry keyed by a short machine code (``DET101``) and a human slug
(``unseeded-random``); both forms work in ``--select``/``--ignore``
and in suppression pragmas.

Suppression::

    risky_call()  # repro: lint-ignore[DET101]
    risky_call()  # repro: lint-ignore[unseeded-random, DET102]

    # repro: lint-ignore-file[OBS302]     (anywhere in the file)

The rule catalog lives in ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "AnalysisError",
    "FileContext",
    "Finding",
    "LintConfig",
    "Rule",
    "Severity",
    "all_rules",
    "register_rule",
    "resolve_rule_ids",
]


class AnalysisError(Exception):
    """Usage or internal error of the lint subsystem (CLI exit code 6)."""


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str  #: machine id, e.g. ``DET101``
    name: str  #: slug, e.g. ``unseeded-random``
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "name": self.name,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class LintConfig:
    """Knobs of one lint run (defaults match ``repro lint``)."""

    #: Rule codes/slugs to run exclusively (empty = all registered rules).
    select: Sequence[str] = ()
    #: Rule codes/slugs to skip.
    ignore: Sequence[str] = ()
    #: Paths of the canonical-key documents (``docs/ALGORITHMS.md``,
    #: ``docs/OBSERVABILITY.md``).  None = discover a ``docs/`` directory
    #: next to (or above) the linted paths; conformance rules that need
    #: the docs are skipped when discovery fails, unless ``require_docs``.
    docs_paths: Optional[Sequence[str]] = None
    require_docs: bool = False


@dataclass
class FileContext:
    """One parsed source file handed to every rule."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: Shared per-run environment (canonical keys, config); see engine.py.
    env: Dict[str, Any] = field(default_factory=dict)

    @property
    def posix_parts(self) -> Sequence[str]:
        return Path(self.path).parts


class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code=self.code,
            name=self.name,
            severity=self.severity,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    rule = cls()
    if not rule.code or not rule.name:
        raise AnalysisError(f"rule {cls.__name__} lacks a code or name")
    if rule.code in _REGISTRY:
        raise AnalysisError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def resolve_rule_ids(ids: Iterable[str]) -> Set[str]:
    """Map codes/slugs (case-insensitive) to canonical rule codes.

    Raises:
        AnalysisError: For an id matching no registered rule.
    """
    by_key = {}
    for rule in all_rules():
        by_key[rule.code.lower()] = rule.code
        by_key[rule.name.lower()] = rule.code
    resolved = set()
    for raw in ids:
        code = by_key.get(raw.strip().lower())
        if code is None:
            raise AnalysisError(
                f"unknown rule {raw.strip()!r}; known rules: "
                + ", ".join(r.code for r in all_rules())
            )
        resolved.add(code)
    return resolved


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------
_PRAGMA = re.compile(
    r"#\s*repro:\s*lint-ignore(?P<scope>-file)?\[(?P<ids>[^\]]*)\]"
)


@dataclass
class Suppressions:
    """Parsed ``lint-ignore`` pragmas of one file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    file_wide: Set[str] = field(default_factory=set)

    def covers(self, finding: Finding) -> bool:
        for key in (finding.code.lower(), finding.name.lower(), "*"):
            if key in self.file_wide:
                return True
            if key in self.by_line.get(finding.line, ()):
                return True
        return False


def parse_suppressions(lines: Sequence[str]) -> Suppressions:
    sup = Suppressions()
    for lineno, text in enumerate(lines, start=1):
        for match in _PRAGMA.finditer(text):
            ids = {
                part.strip().lower()
                for part in match.group("ids").split(",")
                if part.strip()
            }
            if not ids:
                continue
            if match.group("scope"):
                sup.file_wide |= ids
            else:
                sup.by_line.setdefault(lineno, set()).update(ids)
    return sup
