"""Reporters: render a :class:`~repro.analysis.lint.engine.LintReport`.

Text goes to humans and CI logs; JSON feeds tooling.  Ordering is fully
deterministic in both (findings are sorted by the engine).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from repro.analysis.lint.engine import LintReport

__all__ = ["render_json", "render_text"]


def render_text(report: LintReport) -> str:
    """One ``path:line:col CODE(slug) severity: message`` line per finding,
    plus a summary tail."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()} {finding.code}({finding.name}) "
            f"{finding.severity.value}: {finding.message}"
        )
    by_code = Counter(f.code for f in report.findings)
    summary = (
        f"{len(report.findings)} finding(s) in "
        f"{report.files_checked} file(s)"
    )
    if by_code:
        detail = ", ".join(
            f"{code}×{count}" for code, count in sorted(by_code.items())
        )
        summary += f" [{detail}]"
    if report.suppressed:
        summary += f"; {report.suppressed} suppressed by pragma"
    if report.docs_skipped:
        summary += "; conformance rules skipped (canonical-key docs not found)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport, indent: int = 2) -> str:
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)
