"""AST-based static analysis: determinism lint, protocol race detection,
instrumentation conformance.

Rule families (catalog and rationale in ``docs/ANALYSIS.md``):

* ``DET1xx`` — nondeterminism hazards (global RNG, wall clocks, set
  iteration order, ``id()`` keys, hash-order dicts);
* ``PROT2xx`` — :class:`~repro.simulation.process.ProcessProgram`
  races and fault-tolerance bugs;
* ``OBS3xx`` — instrumentation conformance against the canonical key
  tables in ``docs/ALGORITHMS.md`` / ``docs/OBSERVABILITY.md``;
* ``GEN001`` — unparseable file.

Entry points: :func:`run_lint` (library), ``repro lint`` (CLI),
``make lint`` / the CI ``lint`` job (enforcement).
"""

from repro.analysis.lint.core import (
    AnalysisError,
    Finding,
    LintConfig,
    Rule,
    Severity,
    all_rules,
    register_rule,
    resolve_rule_ids,
)
from repro.analysis.lint.engine import (
    LintReport,
    collect_files,
    discover_docs,
    run_lint,
)
from repro.analysis.lint.keys import (
    CanonicalKeys,
    KeyPattern,
    load_canonical_keys,
)
from repro.analysis.lint.report import render_json, render_text

__all__ = [
    "AnalysisError",
    "CanonicalKeys",
    "Finding",
    "KeyPattern",
    "LintConfig",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "collect_files",
    "discover_docs",
    "load_canonical_keys",
    "register_rule",
    "render_json",
    "render_text",
    "resolve_rule_ids",
    "run_lint",
]
