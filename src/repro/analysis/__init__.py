"""Analysis tooling: trace shape statistics and the static-analysis suite.

* :mod:`repro.analysis.stats` — structural statistics of recorded traces
  (``repro info --deep``);
* :mod:`repro.analysis.lint` — AST-based determinism lint, protocol race
  detector, and instrumentation-conformance checker (``repro lint``,
  catalog in ``docs/ANALYSIS.md``).
"""

from repro.analysis.lint import (
    AnalysisError,
    Finding,
    LintConfig,
    LintReport,
    Severity,
    all_rules,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.stats import (
    MessageStatistics,
    VariableProfile,
    causal_density,
    concurrency_width,
    count_runs,
    message_statistics,
    summarize,
    variable_profile,
)

__all__ = [
    "AnalysisError",
    "Finding",
    "LintConfig",
    "LintReport",
    "MessageStatistics",
    "Severity",
    "VariableProfile",
    "all_rules",
    "causal_density",
    "concurrency_width",
    "count_runs",
    "message_statistics",
    "render_json",
    "render_text",
    "run_lint",
    "summarize",
    "variable_profile",
]
