"""Structural analysis of traces (shape statistics for workloads)."""

from repro.analysis.stats import (
    MessageStatistics,
    VariableProfile,
    causal_density,
    concurrency_width,
    count_runs,
    message_statistics,
    summarize,
    variable_profile,
)

__all__ = [
    "MessageStatistics",
    "VariableProfile",
    "causal_density",
    "concurrency_width",
    "count_runs",
    "message_statistics",
    "summarize",
    "variable_profile",
]
