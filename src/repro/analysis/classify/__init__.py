"""Static predicate classification (docs/ANALYSIS.md, "Predicate
classification").

The paper's taxonomy prices detection by predicate *class* — conjunctive
and stable predicates are polynomial, the general case is NP-hard — yet
an opaque Python callable (:class:`~repro.predicates.base
.FunctionPredicate`, the most natural thing for a user to write) carries
no class information and falls to enumeration.  This package recovers the
structure statically: it parses the callable's source into the supported
fragment (:mod:`.fragment`), rewrites it into the structured algebra with
semantic property proofs (:mod:`.rewrite`), differentially validates the
certificate against the original callable (:mod:`.validate`), and caches
validated certificates per function (:mod:`.cache`) so dispatch
(:mod:`repro.detection.api`, :mod:`repro.slicing.dispatch`) can route
opaque predicates to the fast engines.

Public surface::

    classify(target, num_processes=...)   -> Classification | Unclassifiable
    classification_for(pred, computation) -> validated certificate or None
    cached_approximation(pred, comp)      -> (conjunctive B', exact) or None
    opaquify(structured_predicate)        -> FunctionPredicate wrapper
"""

from repro.analysis.classify.cache import (
    cached_approximation,
    classification_for,
    classify,
    clear_cache,
)
from repro.analysis.classify.certificate import Classification, Unclassifiable
from repro.analysis.classify.source import (
    function_body,
    opaquify,
    predicate_source,
    target_function,
)

__all__ = [
    "Classification",
    "Unclassifiable",
    "cached_approximation",
    "classification_for",
    "classify",
    "clear_cache",
    "function_body",
    "opaquify",
    "predicate_source",
    "target_function",
]
