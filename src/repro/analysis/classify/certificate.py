"""Classification certificates and the precise rejection type.

A :class:`Classification` is the output of the static classifier
(:func:`repro.analysis.classify.classify`): everything the analysis could
prove about an opaque predicate callable — which variables of which
processes it reads, a rewrite into the structured predicate algebra when
the body lies in the supported fragment, a conjunctive over-approximation
for slice-bounded enumeration, and semantic property proofs (process
locality, syntactic monotonicity, conjunctive viewability).

:class:`Unclassifiable` is the one failure mode: it names the *reason*,
the offending AST *node*, and its source *line*, so callers (the CLI, the
CLS4xx lint rules, dispatch) can report precisely why an opaque predicate
stays opaque.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional

from repro.predicates.base import GlobalPredicate
from repro.predicates.boolean import CNFPredicate
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import LocalPredicate
from repro.predicates.modalities import Modality
from repro.predicates.relational import RelationalSumPredicate
from repro.predicates.symmetric import SymmetricPredicate

__all__ = ["Classification", "Unclassifiable"]


class Unclassifiable(Exception):
    """The callable's body is outside the supported fragment.

    Args:
        reason: Human-readable explanation of the rejection.
        node: The AST node that fell outside the fragment, when known.
        line: Source line of the rejection (defaults to ``node.lineno``).
    """

    def __init__(
        self,
        reason: str,
        node: Optional[ast.AST] = None,
        line: Optional[int] = None,
    ):
        self.reason = reason
        self.node = node
        if line is None:
            line = getattr(node, "lineno", None)
        self.line = line
        location = "" if line is None else f"line {line}: "
        super().__init__(f"{location}{reason}")


@dataclass
class Classification:
    """Everything the classifier proved about one opaque predicate.

    ``validated`` starts False: the certificate becomes trustworthy for
    dispatch only after :mod:`repro.analysis.classify.validate` has
    differentially checked the rewrite (and the over-approximation's
    implication) against the original callable on sampled cuts.
    """

    #: The analyzed source text of the callable.
    source: str
    #: The parsed fragment tree (negation normal form) — internal.
    tree: Any
    #: Per-process variable read-sets of explicitly indexed local reads.
    read_sets: Dict[int, FrozenSet[str]]
    #: Variables read across *all* processes (sum/count forms).
    global_reads: FrozenSet[str]
    #: True iff the body inspects channel state (crossing messages).
    touches_channels: bool
    #: Provably equivalent structured predicate, when the whole body
    #: rewrote; verdicts through it match the callable on every cut.
    rewrite: Optional[GlobalPredicate]
    #: Conjunctive B' with ``B ⟹ B'`` extracted from the local conjuncts;
    #: bounds slice-first enumeration even when no full rewrite exists.
    approximation: Optional[ConjunctivePredicate]
    #: True iff the approximation is equivalent to the body (not merely
    #: implied by it).
    approximation_exact: bool
    #: The single process the body reads, or None when it spans several.
    process_local: Optional[int]
    #: Syntactic monotonicity proof: the body is built from cut-lattice
    #: monotone atoms under and/or, hence *stable* on every computation
    #: and eligible for the O(n) final-cut engine.
    monotone: bool
    #: True iff the rewrite is conjunctive-viewable (work-optimal
    #: engine eligible).
    conjunctive_view: bool
    #: Process count the certificate was built for (symmetric/count
    #: rewrites depend on it); None when the body never needed it.
    num_processes: Optional[int]
    #: Set by the cache layer once differential validation passed.
    validated: bool = field(default=False)

    @property
    def actionable(self) -> bool:
        """Can dispatch do anything with this certificate?"""
        return (
            self.rewrite is not None
            or self.monotone
            or self.approximation is not None
        )

    def rewrite_class(self) -> Optional[str]:
        """Paper-taxonomy name of the rewrite's predicate class."""
        rewrite = self.rewrite
        if rewrite is None:
            return None
        if isinstance(rewrite, ConjunctivePredicate):
            return "conjunctive"
        if isinstance(rewrite, LocalPredicate):
            return "local"
        if isinstance(rewrite, CNFPredicate):
            if rewrite.is_conjunctive() and rewrite.is_singular():
                return "conjunctive"
            return "singular-cnf" if rewrite.is_singular() else "general-cnf"
        if isinstance(rewrite, RelationalSumPredicate):
            return "relational-sum"
        if isinstance(rewrite, SymmetricPredicate):
            return "symmetric"
        return type(rewrite).__name__

    def engine_hint(self, modality: Modality = Modality.POSSIBLY) -> str:
        """The engine :func:`repro.detection.api.detect` would choose."""
        if self.monotone:
            return "stable-final-cut"
        cls = self.rewrite_class()
        if cls == "conjunctive" or cls == "local":
            if modality is Modality.POSSIBLY:
                return "garg-waldecker"
            return "definitely-conjunctive"
        if cls == "singular-cnf":
            return "singular-cnf"
        if cls == "general-cnf":
            return "cnf-literal-choice"
        if cls == "relational-sum":
            return "relational-sum"
        if cls == "symmetric":
            return "symmetric"
        if cls is not None:
            return "slice-bounded enumeration"
        if self.approximation is not None:
            return "slice-bounded enumeration"
        return "enumeration"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly certificate view (the ``repro classify`` payload)."""
        return {
            "source": self.source.strip(),
            "read_sets": {
                str(p): sorted(vars_)
                for p, vars_ in sorted(self.read_sets.items())
            },
            "global_reads": sorted(self.global_reads),
            "touches_channels": self.touches_channels,
            "rewrite": (
                None if self.rewrite is None else self.rewrite.description()
            ),
            "rewrite_class": self.rewrite_class(),
            "approximation": (
                None
                if self.approximation is None
                else self.approximation.description()
            ),
            "approximation_exact": self.approximation_exact,
            "process_local": self.process_local,
            "monotone": self.monotone,
            "conjunctive_view": self.conjunctive_view,
            "num_processes": self.num_processes,
            "validated": self.validated,
        }
