"""Weak-keyed classification cache and the dispatch-facing entry point.

Classification is per-*function*, not per-predicate-instance: the
supported fragment cannot reference ``self`` or closed-over state, so two
predicates sharing an underlying function classify identically.  The
cache is therefore a :class:`weakref.WeakKeyDictionary` keyed on the
function object (bound methods unwrap to ``__func__``), holding one
outcome per process count — a validated :class:`Classification` or the
:class:`Unclassifiable` that rejected it (negative caching, so a hot
enumeration path never re-parses a hopeless callable).

Metrics (when observability is enabled):

* ``analysis.classify.hits``    — cache hits (positive or negative);
* ``analysis.classify.misses``  — fresh classifications attempted;
* ``analysis.classify.rejects`` — fresh outcomes that ended unclassifiable
  (fragment rejection, nothing actionable, or differential-validation
  failure).
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple, Union

from repro.analysis.classify.certificate import Classification, Unclassifiable
from repro.analysis.classify.fragment import FragmentParser
from repro.analysis.classify.rewrite import build_classification
from repro.analysis.classify.source import function_body, target_function
from repro.analysis.classify.validate import validate_certificate
from repro.computation import Computation
from repro.obs import STATE, registry
from repro.predicates.base import GlobalPredicate
from repro.predicates.conjunctive import ConjunctivePredicate

__all__ = [
    "cached_approximation",
    "classification_for",
    "classify",
    "clear_cache",
]

_Outcome = Union[Classification, Unclassifiable]
_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def clear_cache() -> None:
    """Drop every cached classification (tests and benchmarks)."""
    _CACHE.clear()


def _count(key: str) -> None:
    if STATE.enabled:
        registry().counter(f"analysis.classify.{key}").inc()


def classify(
    target, *, num_processes: Optional[int] = None
) -> Classification:
    """Statically classify a predicate or raw callable.

    Args:
        target: A :class:`GlobalPredicate` (``FunctionPredicate`` or any
            subclass with an ``evaluate`` override) or a bare callable of
            one cut.
        num_processes: Process count of the target computation; required
            to rewrite true-count atoms into symmetric predicates.

    Returns:
        The (unvalidated) :class:`Classification` certificate.

    Raises:
        Unclassifiable: When the body falls outside the supported
            fragment.
    """
    if isinstance(target, GlobalPredicate):
        fn = target_function(target)
        if fn is None:
            raise Unclassifiable(
                f"{type(target).__name__} has no analyzable function"
            )
    else:
        fn = target
    source, body, cut_name = function_body(fn)
    tree = FragmentParser(cut_name).parse(body)
    return build_classification(source, tree, num_processes)


def _entry_for(fn) -> Optional[Dict[Optional[int], _Outcome]]:
    try:
        entry = _CACHE.get(fn)
        if entry is None:
            entry = {}
            _CACHE[fn] = entry
        return entry
    except TypeError:
        return None  # not weak-referenceable; classify uncached


def classification_for(
    predicate: GlobalPredicate, computation: Computation
) -> Optional[Classification]:
    """The validated certificate dispatch may act on, or None.

    Cache-first: a cached validated certificate (or cached rejection) is
    returned without re-analysis.  On a miss the predicate is classified,
    differentially validated against this computation, and the outcome —
    positive or negative — is cached per ``(function, process count)``.
    """
    fn = target_function(predicate)
    if fn is None:
        return None
    n = computation.num_processes
    entry = _entry_for(fn)
    if entry is not None:
        outcome = entry.get(n)
        if outcome is not None:
            _count("hits")
            return outcome if isinstance(outcome, Classification) else None
    _count("misses")
    try:
        certificate = classify(predicate, num_processes=n)
    except Unclassifiable as exc:
        _count("rejects")
        if entry is not None:
            entry[n] = exc
        return None
    if not certificate.actionable:
        _count("rejects")
        if entry is not None:
            entry[n] = Unclassifiable(
                "classified, but no dispatchable structure was found"
            )
        return None
    if not validate_certificate(computation, predicate, certificate):
        _count("rejects")
        if entry is not None:
            entry[n] = Unclassifiable(
                "differential validation rejected the rewrite"
            )
        return None
    certificate.validated = True
    if entry is not None:
        entry[n] = certificate
    return certificate


def cached_approximation(
    predicate: GlobalPredicate, computation: Computation
) -> Optional[Tuple[ConjunctivePredicate, bool]]:
    """``(approximation, exact)`` of a validated certificate, or None.

    The slice-first dispatcher calls this for opaque predicates so the
    inferred conjunctive over-approximation bounds its enumeration box.
    """
    certificate = classification_for(predicate, computation)
    if certificate is None or certificate.approximation is None:
        return None
    return certificate.approximation, certificate.approximation_exact
