"""Fragment tree → structured predicate algebra.

Given the negation-normal-form tree of :mod:`.fragment`, this module
derives the full :class:`~repro.analysis.classify.certificate
.Classification`:

* an **exact rewrite** into the structured algebra — ``Literal`` /
  ``Clause`` / ``CNFPredicate`` / ``ConjunctivePredicate`` /
  ``RelationalSumPredicate`` / ``SymmetricPredicate`` /
  ``InFlightPredicate`` / disjunctions thereof — when the whole body maps
  onto one of the shapes the fast engines decide;
* a **conjunctive over-approximation** assembled from the process-local
  conjuncts (single-process disjunctions included), which bounds
  slice-first enumeration even when the full rewrite fails;
* **property proofs**: process locality (read-set confined to one
  process), syntactic monotonicity (``cut.size() >= k`` atoms closed
  under and/or are monotone in the cut lattice, hence *stable* —
  ``detect_stable`` eligible), and conjunctive viewability (work-optimal
  engine eligible).

The rewrite realizes exactly the semantics of
:func:`repro.analysis.classify.fragment.evaluate_node`; differential
validation then checks that semantics against the original callable
before dispatch trusts the certificate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.classify.certificate import Classification
from repro.analysis.classify.fragment import (
    And,
    BoolConst,
    ChannelAtom,
    CountAtom,
    LocalAtom,
    Node,
    Or,
    SizeAtom,
    SumAtom,
    describe,
    read_sets,
)
from repro.events import Event
from repro.predicates.base import ConstantPredicate, GlobalPredicate, disjunction
from repro.predicates.boolean import Clause, CNFPredicate
from repro.predicates.channel import InFlightPredicate
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import Literal, LocalPredicate
from repro.predicates.relational import RelationalSumPredicate, Relop
from repro.predicates.symmetric import SymmetricPredicate

__all__ = ["build_classification"]


class _NoRewrite(Exception):
    """Internal: the (sub)tree has no exact structured form."""


# ----------------------------------------------------------------------
# Event-level checks for local atoms (conjunctive merging)
# ----------------------------------------------------------------------
def _event_check(atom: LocalAtom) -> Callable[[Event], bool]:
    if atom.relop is None:
        negated = atom.negated
        variable = atom.variable

        def check(event: Event, _v=variable, _n=negated) -> bool:
            return bool(event.value(_v, False)) != _n

        return check
    relop, variable, constant = atom.relop, atom.variable, atom.constant

    def check(
        event: Event, _v=variable, _op=relop, _k=constant
    ) -> bool:
        return _op.compare(int(event.value(_v, False) or 0), _k)

    return check


def _merged_local(process: int, atoms: List[Node], any_of: bool = False) -> LocalPredicate:
    """One LocalPredicate combining several same-process atoms."""
    checks = [_event_check(a) for a in atoms]
    label = (" or " if any_of else " and ").join(describe(a) for a in atoms)
    if any_of:

        def fn(event: Event, _checks=tuple(checks)) -> bool:
            return any(chk(event) for chk in _checks)

    else:

        def fn(event: Event, _checks=tuple(checks)) -> bool:
            return all(chk(event) for chk in _checks)

    return LocalPredicate(process, fn, f"classified[{label}]")


def _is_bool_literal(node: Node) -> bool:
    return isinstance(node, LocalAtom) and node.relop is None


def _as_literal(node: LocalAtom) -> Literal:
    return Literal(node.process, node.variable, node.negated)


# ----------------------------------------------------------------------
# Exact rewrite
# ----------------------------------------------------------------------
def _rewrite(node: Node, num_processes: Optional[int]) -> GlobalPredicate:
    if isinstance(node, BoolConst):
        return ConstantPredicate(node.value)
    if isinstance(node, LocalAtom):
        if node.relop is None:
            return _as_literal(node)
        return _merged_local(node.process, [node])
    if isinstance(node, SumAtom):
        return RelationalSumPredicate(node.variable, node.relop, node.constant)
    if isinstance(node, CountAtom):
        return _rewrite_count(node, num_processes)
    if isinstance(node, ChannelAtom):
        return InFlightPredicate(node.relop, node.constant)
    if isinstance(node, SizeAtom):
        raise _NoRewrite("cut.size() has no structured predicate form")
    if isinstance(node, And):
        return _rewrite_and(node, num_processes)
    if isinstance(node, Or):
        return _rewrite_or(node, num_processes)
    raise _NoRewrite(f"unknown node {node!r}")


def _rewrite_count(
    node: CountAtom, num_processes: Optional[int]
) -> SymmetricPredicate:
    if num_processes is None:
        raise _NoRewrite(
            "true-count atoms need the process count (pass num_processes)"
        )
    universe = range(num_processes + 1)
    if node.relop is not None:
        counts = [j for j in universe if node.relop.compare(j, node.constant)]
    else:
        members = frozenset(node.counts)
        counts = [j for j in universe if (j in members) != node.negated]
    return SymmetricPredicate(node.variable, num_processes, counts)


def _rewrite_and(node: And, num_processes: Optional[int]) -> GlobalPredicate:
    # Preferred shape: CNF — every child a boolean literal or a clause of
    # boolean literals.  (1-CNF singular CNFs are conjunctive-viewable and
    # dispatch to the Garg–Waldecker scan automatically.)
    clauses: List[Clause] = []
    cnf_shaped = True
    for child in node.children:
        if _is_bool_literal(child):
            clauses.append(Clause([_as_literal(child)]))
        elif isinstance(child, Or) and all(
            _is_bool_literal(c) for c in child.children
        ):
            clauses.append(
                Clause([_as_literal(c) for c in child.children])
            )
        else:
            cnf_shaped = False
            break
    if cnf_shaped:
        return CNFPredicate(clauses)
    # Conjunctive shape: every child local (comparison atoms included);
    # same-process atoms merge into one conjunct.
    if all(isinstance(c, LocalAtom) for c in node.children):
        by_process: Dict[int, List[Node]] = {}
        for child in node.children:
            by_process.setdefault(child.process, []).append(child)
        conjuncts = [
            _merged_local(p, atoms) if len(atoms) > 1 or any(
                a.relop is not None for a in atoms
            ) else _as_literal(atoms[0])
            for p, atoms in sorted(by_process.items())
        ]
        return ConjunctivePredicate(conjuncts)
    raise _NoRewrite(
        "conjunction mixes local and global atoms; no single structured "
        "form exists"
    )


def _rewrite_or(node: Or, num_processes: Optional[int]) -> GlobalPredicate:
    # All-boolean disjunction is a single clause (singular CNF).
    if all(_is_bool_literal(c) for c in node.children):
        return CNFPredicate([Clause([_as_literal(c) for c in node.children])])
    # Otherwise a disjunction of rewritable parts: possibly distributes
    # over OrPredicate in the dispatch layer.
    parts = [_rewrite(c, num_processes) for c in node.children]
    return disjunction(*parts)


# ----------------------------------------------------------------------
# Conjunctive over-approximation
# ----------------------------------------------------------------------
def _approximation(
    node: Node,
) -> Tuple[Optional[ConjunctivePredicate], bool]:
    """``(approximation, exact)`` from the process-local conjuncts."""

    def collect(n: Node) -> Tuple[Dict[int, List[Tuple[bool, List[Node]]]], bool]:
        """Per-process contributions plus a completeness flag.

        Each contribution is ``(any_of, atoms)``: a conjunct requiring
        all (``any_of=False``) or at least one (``any_of=True``) of the
        atoms to hold on that process's frontier event.
        """
        if isinstance(n, LocalAtom):
            return {n.process: [(False, [n])]}, True
        if isinstance(n, BoolConst):
            # True constrains nothing; False is handled by the caller.
            return {}, n.value
        if isinstance(n, And):
            merged: Dict[int, List[Tuple[bool, List[Node]]]] = {}
            complete = True
            for child in n.children:
                contribs, child_complete = collect(child)
                complete = complete and child_complete
                for p, entries in contribs.items():
                    merged.setdefault(p, []).extend(entries)
            return merged, complete
        if isinstance(n, Or):
            procs = {
                c.process
                for c in n.children
                if isinstance(c, LocalAtom)
            }
            if len(procs) == 1 and all(
                isinstance(c, LocalAtom) for c in n.children
            ):
                (p,) = procs
                return {p: [(True, list(n.children))]}, True
            return {}, False
        return {}, False

    contribs, complete = collect(node)
    if not contribs:
        return None, False
    conjuncts: List[LocalPredicate] = []
    for p, entries in sorted(contribs.items()):
        checks: List[Callable[[Event], bool]] = []
        labels: List[str] = []
        for any_of, atoms in entries:
            if any_of:
                sub = _merged_local(p, atoms, any_of=True)
                checks.append(sub.holds_after)
                labels.append(
                    "(" + " or ".join(describe(a) for a in atoms) + ")"
                )
            else:
                for atom in atoms:
                    checks.append(_event_check(atom))
                    labels.append(describe(atom))

        def fn(event: Event, _checks=tuple(checks)) -> bool:
            return all(chk(event) for chk in _checks)

        conjuncts.append(
            LocalPredicate(p, fn, f"approx[{' and '.join(labels)}]")
        )
    return ConjunctivePredicate(conjuncts), complete


# ----------------------------------------------------------------------
# Monotonicity (syntactic stability proof)
# ----------------------------------------------------------------------
def _monotone(node: Node) -> bool:
    """Monotone w.r.t. the cut-lattice order ⇒ stable on every computation.

    ``cut.size()`` grows along every lattice edge, so ``size() > k`` /
    ``size() >= k`` are monotone; monotone predicates are closed under
    conjunction and disjunction.  Variable reads are not monotone (values
    change arbitrarily), so everything else is conservatively rejected.
    """
    if isinstance(node, BoolConst):
        return True
    if isinstance(node, SizeAtom):
        return node.relop in (Relop.GT, Relop.GE)
    if isinstance(node, (And, Or)):
        return all(_monotone(c) for c in node.children)
    return False


# ----------------------------------------------------------------------
# Certificate assembly
# ----------------------------------------------------------------------
def build_classification(
    source: str, tree: Node, num_processes: Optional[int]
) -> Classification:
    """Assemble the full certificate for one parsed fragment tree."""
    per_process, global_reads, channels, _uses_size = read_sets(tree)
    try:
        rewrite: Optional[GlobalPredicate] = _rewrite(tree, num_processes)
    except _NoRewrite:
        rewrite = None
    approximation, approx_exact = _approximation(tree)
    monotone = _monotone(tree)
    process_local: Optional[int] = None
    if len(per_process) == 1 and not global_reads and not channels:
        (process_local,) = per_process.keys()
    conjunctive_view = isinstance(
        rewrite, (ConjunctivePredicate, Literal)
    ) or (
        isinstance(rewrite, CNFPredicate)
        and rewrite.is_conjunctive()
        and rewrite.is_singular()
    )
    needs_n = _needs_process_count(tree)
    return Classification(
        source=source,
        tree=tree,
        read_sets=dict(per_process),
        global_reads=global_reads,
        touches_channels=channels,
        rewrite=rewrite,
        approximation=approximation,
        approximation_exact=approx_exact,
        process_local=process_local,
        monotone=monotone,
        conjunctive_view=conjunctive_view,
        num_processes=num_processes if needs_n else None,
    )


def _needs_process_count(node: Node) -> bool:
    if isinstance(node, CountAtom):
        return True
    if isinstance(node, (And, Or)):
        return any(_needs_process_count(c) for c in node.children)
    return False
