"""Differential validation: the certificate's soundness witness.

A rewrite is only *provable* up to the fragment's semantics; the original
callable may still diverge (a truthy default, an exception on a missing
variable, arbitrary Python the parser mis-modelled).  Before dispatch
trusts a certificate, this module evaluates the original callable and the
rewrite side by side on a deterministic sample of the computation's cuts
— every frontier of small computations, corner cuts plus a seeded random
sample of large ones — and rejects the certificate on any disagreement.
The over-approximation is checked as an implication (no sampled cut may
satisfy the callable but escape the approximation).

Sampling is deterministic by construction: the RNG seed derives from the
computation's shape, never from wall clocks or global RNG state, so a
rejected certificate is rejected reproducibly.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Iterator, List

from repro.analysis.classify.certificate import Classification
from repro.analysis.classify.fragment import evaluate_node
from repro.computation import Computation, Cut
from repro.predicates.base import GlobalPredicate

__all__ = ["sample_cuts", "validate_certificate"]

#: Exhaustively check computations whose frontier space is this small.
EXHAUSTIVE_VOLUME = 512

#: Random frontier samples drawn for larger computations.
SAMPLE_SIZE = 64


def _lengths(computation: Computation) -> List[int]:
    return [
        len(computation.events_of(p))
        for p in range(computation.num_processes)
    ]


def _seed(lengths: List[int]) -> int:
    seed = 0x9E3779B1
    for length in lengths:
        seed = (seed * 1000003 + length) & 0xFFFFFFFF
    return seed


def sample_cuts(computation: Computation) -> Iterator[Cut]:
    """Deterministic cut sample: exhaustive when small, seeded otherwise.

    Cuts need not be consistent — pointwise agreement on *all* cuts is a
    stronger witness than agreement on the consistent sublattice, and the
    fragment's reads are well-defined on any frontier.
    """
    lengths = _lengths(computation)
    volume = 1
    for length in lengths:
        volume *= length
        if volume > EXHAUSTIVE_VOLUME:
            break
    if volume <= EXHAUSTIVE_VOLUME:
        for frontier in itertools.product(
            *(range(1, length + 1) for length in lengths)
        ):
            yield Cut(computation, frontier)
        return
    yield Cut(computation, [1] * len(lengths))
    yield Cut(computation, lengths)
    rng = random.Random(_seed(lengths))
    seen = set()
    for _ in range(SAMPLE_SIZE):
        frontier = tuple(rng.randint(1, length) for length in lengths)
        if frontier in seen:
            continue
        seen.add(frontier)
        yield Cut(computation, frontier)


def _reference(certificate: Classification) -> Callable[[Cut], bool]:
    """What the certificate claims the callable computes."""
    rewrite = certificate.rewrite
    if rewrite is not None:
        return rewrite.evaluate
    return lambda cut: evaluate_node(certificate.tree, cut)


def validate_certificate(
    computation: Computation,
    predicate: GlobalPredicate,
    certificate: Classification,
) -> bool:
    """Differentially check a certificate against the original callable.

    Returns False — and the caller must then discard the certificate —
    when the rewrite (or, absent one, the parsed tree itself) disagrees
    with the callable on any sampled cut, when the over-approximation
    fails its implication, or when the callable raises where the
    certificate evaluates cleanly.
    """
    reference = _reference(certificate)
    approximation = certificate.approximation
    for cut in sample_cuts(computation):
        try:
            original = bool(predicate.evaluate(cut))
        except Exception:
            return False
        if original != bool(reference(cut)):
            return False
        if approximation is not None and original:
            if not approximation.evaluate(cut):
                return False
    return True
