"""The supported source fragment and its parser.

The classifier recovers predicate-class structure from the *source* of an
opaque callable.  This module defines the fragment — a small expression
language over the public read API of :class:`repro.computation.Cut` — and
parses a callable body into a negation-normal-form tree of atoms.

Informal grammar, over the callable's single cut parameter (spelled
``cut`` here; the actual parameter name is used)::

    pred   ::= pred "and" pred | pred "or" pred | "not" pred
             | "(" pred ")" | atom | "True" | "False"
    atom   ::= read | bool(read)
             | read RELOP INT | INT RELOP read
             | countread "in" "(" INT, ... ")"
    read   ::= cut.value(INT, STR [, FALSY])        -- local boolean read
             | cut.variable_sum(STR)                -- all-process sum
             | sum(cut.values(STR [, 0]))           -- all-process sum
             | countread                            -- true-count
             | cut.size()                           -- events in the cut
             | len(cut.crossing_messages())         -- in-flight messages
             | cut.crossing_messages()              -- truthiness only
    countread ::= sum(map(bool, cut.values(STR)))
             | sum(bool(v) for v in cut.values(STR))
             | sum(1 for v in cut.values(STR) if v)
    RELOP  ::= "<" | "<=" | ">" | ">=" | "==" | "!="

Anything else raises :class:`~repro.analysis.classify.certificate
.Unclassifiable` with the offending node and line.  Negation is pushed to
the atoms (complementing relational operators, flipping literal signs),
so downstream consumers see only ``And``/``Or`` over positive atoms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple, Union

from repro.analysis.classify.certificate import Unclassifiable
from repro.computation import Cut
from repro.predicates.relational import Relop

__all__ = [
    "And",
    "BoolConst",
    "ChannelAtom",
    "CountAtom",
    "FragmentParser",
    "LocalAtom",
    "Node",
    "Or",
    "ReadSets",
    "SizeAtom",
    "SumAtom",
    "describe",
    "evaluate_node",
    "negate",
    "parses",
    "read_sets",
]


# ----------------------------------------------------------------------
# Tree node types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoolConst:
    """A literal ``True`` / ``False``."""

    value: bool


@dataclass(frozen=True)
class LocalAtom:
    """A read of one variable of one explicitly named process.

    ``relop is None`` means the truthiness form (``cut.value(p, "v")``,
    possibly negated); otherwise the comparison form
    ``int(cut.value(p, "v", 0)) relop constant`` (never negated — the
    complement folds into the operator).
    """

    process: int
    variable: str
    negated: bool = False
    relop: Optional[Relop] = None
    constant: Optional[int] = None


@dataclass(frozen=True)
class SumAtom:
    """``sum over processes of variable  relop  constant``."""

    variable: str
    relop: Relop
    constant: int


@dataclass(frozen=True)
class CountAtom:
    """True-count of a boolean variable, compared or set-membership.

    Either the comparison form (``relop``/``constant`` set) or the
    membership form (``counts`` set); ``negated`` applies to membership
    only (its complement needs the process count, resolved at rewrite
    time).
    """

    variable: str
    relop: Optional[Relop] = None
    constant: Optional[int] = None
    counts: Optional[FrozenSet[int]] = None
    negated: bool = False


@dataclass(frozen=True)
class SizeAtom:
    """``cut.size() relop constant`` — monotone for ``>`` / ``>=``."""

    relop: Relop
    constant: int


@dataclass(frozen=True)
class ChannelAtom:
    """``len(cut.crossing_messages()) relop constant`` (channel state)."""

    relop: Relop
    constant: int


@dataclass(frozen=True)
class And:
    children: Tuple["Node", ...]


@dataclass(frozen=True)
class Or:
    children: Tuple["Node", ...]


Node = Union[BoolConst, LocalAtom, SumAtom, CountAtom, SizeAtom, ChannelAtom, And, Or]

#: ``(per-process reads, all-process reads, touches channels, uses size)``
ReadSets = Tuple[Dict[int, FrozenSet[str]], FrozenSet[str], bool, bool]

_COMPLEMENT = {
    Relop.LT: Relop.GE,
    Relop.LE: Relop.GT,
    Relop.GT: Relop.LE,
    Relop.GE: Relop.LT,
    Relop.EQ: Relop.NE,
    Relop.NE: Relop.EQ,
}

_AST_RELOPS = {
    ast.Lt: Relop.LT,
    ast.LtE: Relop.LE,
    ast.Gt: Relop.GT,
    ast.GtE: Relop.GE,
    ast.Eq: Relop.EQ,
    ast.NotEq: Relop.NE,
}

#: Mirror of each operator under operand swap (``k < e`` == ``e > k``).
_MIRROR = {
    Relop.LT: Relop.GT,
    Relop.LE: Relop.GE,
    Relop.GT: Relop.LT,
    Relop.GE: Relop.LE,
    Relop.EQ: Relop.EQ,
    Relop.NE: Relop.NE,
}


def negate(node: Node) -> Node:
    """The fragment-level complement, in negation normal form."""
    if isinstance(node, BoolConst):
        return BoolConst(not node.value)
    if isinstance(node, And):
        return Or(tuple(negate(c) for c in node.children))
    if isinstance(node, Or):
        return And(tuple(negate(c) for c in node.children))
    if isinstance(node, LocalAtom):
        if node.relop is None:
            return LocalAtom(node.process, node.variable, not node.negated)
        return LocalAtom(
            node.process,
            node.variable,
            relop=_COMPLEMENT[node.relop],
            constant=node.constant,
        )
    if isinstance(node, SumAtom):
        return SumAtom(node.variable, _COMPLEMENT[node.relop], node.constant)
    if isinstance(node, CountAtom):
        if node.relop is not None:
            return CountAtom(
                node.variable,
                relop=_COMPLEMENT[node.relop],
                constant=node.constant,
            )
        return CountAtom(
            node.variable, counts=node.counts, negated=not node.negated
        )
    if isinstance(node, SizeAtom):
        return SizeAtom(_COMPLEMENT[node.relop], node.constant)
    if isinstance(node, ChannelAtom):
        return ChannelAtom(_COMPLEMENT[node.relop], node.constant)
    raise TypeError(f"unknown fragment node {node!r}")


# ----------------------------------------------------------------------
# Reference evaluation (the semantics the rewrite realizes)
# ----------------------------------------------------------------------
def evaluate_node(node: Node, cut: Cut) -> bool:
    """Evaluate a fragment tree on a cut.

    This is the *rewrite's* semantics (missing variables default to
    false/0), the reference that differential validation compares the
    original callable against.
    """
    if isinstance(node, BoolConst):
        return node.value
    if isinstance(node, And):
        return all(evaluate_node(c, cut) for c in node.children)
    if isinstance(node, Or):
        return any(evaluate_node(c, cut) for c in node.children)
    if isinstance(node, LocalAtom):
        raw = cut.value(node.process, node.variable, False)
        if node.relop is None:
            return bool(raw) != node.negated
        return node.relop.compare(int(raw or 0), node.constant)
    if isinstance(node, SumAtom):
        return node.relop.compare(cut.variable_sum(node.variable), node.constant)
    if isinstance(node, CountAtom):
        count = sum(
            1
            for p in range(cut.computation.num_processes)
            if bool(cut.value(p, node.variable, False))
        )
        if node.relop is not None:
            return node.relop.compare(count, node.constant)
        return (count in node.counts) != node.negated
    if isinstance(node, SizeAtom):
        return node.relop.compare(cut.size(), node.constant)
    if isinstance(node, ChannelAtom):
        return node.relop.compare(len(cut.crossing_messages()), node.constant)
    raise TypeError(f"unknown fragment node {node!r}")


def read_sets(node: Node) -> ReadSets:
    """Aggregate read-sets of a fragment tree."""
    per_process: Dict[int, Set[str]] = {}
    global_reads: Set[str] = set()
    channels = False
    size = False

    def walk(n: Node) -> None:
        nonlocal channels, size
        if isinstance(n, (And, Or)):
            for c in n.children:
                walk(c)
        elif isinstance(n, LocalAtom):
            per_process.setdefault(n.process, set()).add(n.variable)
        elif isinstance(n, (SumAtom, CountAtom)):
            global_reads.add(n.variable)
        elif isinstance(n, ChannelAtom):
            channels = True
        elif isinstance(n, SizeAtom):
            size = True

    walk(node)
    return (
        {p: frozenset(vs) for p, vs in per_process.items()},
        frozenset(global_reads),
        channels,
        size,
    )


def describe(node: Node) -> str:
    """Human-readable rendering of a fragment tree."""
    if isinstance(node, BoolConst):
        return "True" if node.value else "False"
    if isinstance(node, And):
        return "(" + " AND ".join(describe(c) for c in node.children) + ")"
    if isinstance(node, Or):
        return "(" + " OR ".join(describe(c) for c in node.children) + ")"
    if isinstance(node, LocalAtom):
        base = f"{node.variable}@{node.process}"
        if node.relop is None:
            return f"NOT {base}" if node.negated else base
        return f"{base} {node.relop.value} {node.constant}"
    if isinstance(node, SumAtom):
        return f"sum({node.variable}) {node.relop.value} {node.constant}"
    if isinstance(node, CountAtom):
        if node.relop is not None:
            return f"count({node.variable}) {node.relop.value} {node.constant}"
        op = "not in" if node.negated else "in"
        return f"count({node.variable}) {op} {sorted(node.counts)}"
    if isinstance(node, SizeAtom):
        return f"size() {node.relop.value} {node.constant}"
    if isinstance(node, ChannelAtom):
        return f"in_flight() {node.relop.value} {node.constant}"
    raise TypeError(f"unknown fragment node {node!r}")


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _int_literal(node: ast.expr) -> Optional[int]:
    """Plain (possibly negated) integer literal, bools excluded."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _int_literal(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if isinstance(node.value, bool):
            return None
        return node.value
    return None


def _str_literal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_falsy_literal(node: ast.expr) -> bool:
    """A literal default that matches the rewrite's false/0 default."""
    if isinstance(node, ast.Constant):
        return node.value in (False, 0, None) and node.value is not True
    return False


class FragmentParser:
    """Parses the body expression of one callable into a fragment tree."""

    def __init__(self, cut_name: str):
        self.cut_name = cut_name

    # -- entry ---------------------------------------------------------
    def parse(self, node: ast.expr) -> Node:
        if isinstance(node, ast.BoolOp):
            children = tuple(self.parse(v) for v in node.values)
            if isinstance(node.op, ast.And):
                return self._flatten(And, children)
            return self._flatten(Or, children)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return negate(self.parse(node.operand))
        if isinstance(node, ast.Constant) and isinstance(node.value, bool):
            return BoolConst(node.value)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        return self._truthy(node)

    @staticmethod
    def _flatten(kind, children):
        flat = []
        for child in children:
            if isinstance(child, kind):
                flat.extend(child.children)
            else:
                flat.append(child)
        return kind(tuple(flat))

    # -- atoms ---------------------------------------------------------
    def _truthy(self, node: ast.expr) -> Node:
        """An expression used for its truth value."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "bool"
            and len(node.args) == 1
            and not node.keywords
        ):
            return self._truthy(node.args[0])
        if self._is_cut_method(node, "crossing_messages"):
            return ChannelAtom(Relop.NE, 0)
        read = self._read(node)
        if read is None:
            raise Unclassifiable(
                "expression is not a recognized cut read", node
            )
        kind = read[0]
        if kind == "local":
            return LocalAtom(read[1], read[2])
        if kind == "sum":
            return SumAtom(read[1], Relop.NE, 0)
        if kind == "count":
            return CountAtom(read[1], relop=Relop.NE, constant=0)
        if kind == "size":
            return SizeAtom(Relop.NE, 0)
        return ChannelAtom(Relop.NE, 0)

    def _compare(self, node: ast.Compare) -> Node:
        if len(node.ops) != 1:
            raise Unclassifiable(
                "chained comparisons are outside the fragment", node
            )
        op = node.ops[0]
        left, right = node.left, node.comparators[0]
        if isinstance(op, (ast.In, ast.NotIn)):
            return self._membership(node, left, right, isinstance(op, ast.NotIn))
        relop = _AST_RELOPS.get(type(op))
        if relop is None:
            raise Unclassifiable(
                f"comparison operator {type(op).__name__} is outside "
                "the fragment",
                node,
            )
        read = self._read(left)
        constant = _int_literal(right)
        if read is None or constant is None:
            # Try the mirrored orientation: INT relop read.
            read = self._read(right)
            constant = _int_literal(left)
            relop = _MIRROR[relop]
        if read is None:
            raise Unclassifiable(
                "comparison operand is not a recognized cut read", node
            )
        if constant is None:
            raise Unclassifiable(
                "comparison constant is not an integer literal", node
            )
        kind = read[0]
        if kind == "local":
            return LocalAtom(
                read[1], read[2], relop=relop, constant=constant
            )
        if kind == "sum":
            return SumAtom(read[1], relop, constant)
        if kind == "count":
            return CountAtom(read[1], relop=relop, constant=constant)
        if kind == "size":
            return SizeAtom(relop, constant)
        return ChannelAtom(relop, constant)

    def _membership(
        self,
        node: ast.Compare,
        left: ast.expr,
        right: ast.expr,
        negated: bool,
    ) -> Node:
        read = self._read(left)
        if read is None or read[0] not in ("count", "sum"):
            raise Unclassifiable(
                "membership tests are supported for true-count and sum "
                "reads only",
                node,
            )
        if not isinstance(right, (ast.Tuple, ast.List, ast.Set)):
            raise Unclassifiable(
                "membership target must be a literal tuple/list/set of "
                "integers",
                node,
            )
        values = []
        for elt in right.elts:
            value = _int_literal(elt)
            if value is None:
                raise Unclassifiable(
                    "membership target must contain integer literals only",
                    elt,
                )
            values.append(value)
        if read[0] == "count":
            return CountAtom(
                read[1], counts=frozenset(values), negated=negated
            )
        # Sum membership: a finite disjunction (conjunction when negated)
        # of equality (inequality) atoms.
        variable = read[1]
        if not values:
            return BoolConst(negated)
        if negated:
            return And(
                tuple(SumAtom(variable, Relop.NE, v) for v in sorted(set(values)))
            )
        return Or(
            tuple(SumAtom(variable, Relop.EQ, v) for v in sorted(set(values)))
        )

    # -- value reads ---------------------------------------------------
    def _is_cut_name(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == self.cut_name

    def _is_cut_method(self, node: ast.expr, method: str) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and self._is_cut_name(node.func.value)
            and not node.keywords
        )

    def _read(self, node: ast.expr) -> Optional[Tuple]:
        """Recognize a value-read expression; None when foreign.

        Returns ``("local", process, variable)``, ``("sum", variable)``,
        ``("count", variable)``, ``("size",)``, or ``("channel",)``.
        Raises :class:`Unclassifiable` when the expression clearly
        *intends* a cut read but falls outside the fragment (non-literal
        process index, truthy default, ...), so the report is precise.
        """
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and self._is_cut_name(
                func.value
            ):
                return self._cut_call(node, func.attr)
            if isinstance(func, ast.Name) and func.id == "sum":
                return self._sum_call(node)
            if isinstance(func, ast.Name) and func.id == "len":
                if len(node.args) == 1 and self._is_cut_method(
                    node.args[0], "crossing_messages"
                ):
                    return ("channel",)
                raise Unclassifiable(
                    "len(...) is supported over cut.crossing_messages() "
                    "only",
                    node,
                )
        return None

    def _cut_call(self, node: ast.Call, method: str) -> Tuple:
        if node.keywords:
            raise Unclassifiable(
                f"keyword arguments to cut.{method} are outside the "
                "fragment",
                node,
            )
        if method == "value":
            if len(node.args) not in (2, 3):
                raise Unclassifiable(
                    "cut.value takes (process, variable[, default])", node
                )
            process = _int_literal(node.args[0])
            variable = _str_literal(node.args[1])
            if process is None or process < 0:
                raise Unclassifiable(
                    "cut.value process index must be a non-negative "
                    "integer literal",
                    node.args[0],
                )
            if variable is None:
                raise Unclassifiable(
                    "cut.value variable must be a string literal",
                    node.args[1],
                )
            if len(node.args) == 3 and not _is_falsy_literal(node.args[2]):
                raise Unclassifiable(
                    "cut.value default must be a falsy literal "
                    "(False, 0, or None)",
                    node.args[2],
                )
            return ("local", process, variable)
        if method == "variable_sum":
            if len(node.args) != 1:
                raise Unclassifiable(
                    "cut.variable_sum takes exactly one variable", node
                )
            variable = _str_literal(node.args[0])
            if variable is None:
                raise Unclassifiable(
                    "cut.variable_sum variable must be a string literal",
                    node.args[0],
                )
            return ("sum", variable)
        if method == "size":
            if node.args:
                raise Unclassifiable("cut.size takes no arguments", node)
            return ("size",)
        if method == "crossing_messages":
            if node.args:
                raise Unclassifiable(
                    "cut.crossing_messages takes no arguments", node
                )
            return ("channel",)
        raise Unclassifiable(
            f"cut.{method} is outside the supported fragment", node
        )

    def _values_call(self, node: ast.expr) -> Optional[str]:
        """The variable of a ``cut.values(STR[, falsy])`` call, or None."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "values"
            and self._is_cut_name(node.func.value)
            and not node.keywords
        ):
            return None
        if len(node.args) not in (1, 2):
            raise Unclassifiable(
                "cut.values takes (variable[, default])", node
            )
        variable = _str_literal(node.args[0])
        if variable is None:
            raise Unclassifiable(
                "cut.values variable must be a string literal", node.args[0]
            )
        if len(node.args) == 2 and not _is_falsy_literal(node.args[1]):
            raise Unclassifiable(
                "cut.values default must be a falsy literal", node.args[1]
            )
        return variable

    def _sum_call(self, node: ast.Call) -> Tuple:
        if len(node.args) != 1 or node.keywords:
            raise Unclassifiable(
                "sum(...) is supported with a single argument only", node
            )
        arg = node.args[0]
        # sum(cut.values("v")) — plain variable sum.
        variable = self._values_call(arg)
        if variable is not None:
            return ("sum", variable)
        # sum(map(bool, cut.values("v"))) — true count.
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "map"
            and len(arg.args) == 2
            and isinstance(arg.args[0], ast.Name)
            and arg.args[0].id == "bool"
        ):
            variable = self._values_call(arg.args[1])
            if variable is not None:
                return ("count", variable)
        # Generator forms of the true count.
        if isinstance(arg, ast.GeneratorExp) and len(arg.generators) == 1:
            gen = arg.generators[0]
            variable = self._values_call(gen.iter)
            if (
                variable is not None
                and isinstance(gen.target, ast.Name)
                and not gen.is_async
            ):
                v = gen.target.id
                # sum(bool(v) for v in cut.values("x"))
                if (
                    not gen.ifs
                    and isinstance(arg.elt, ast.Call)
                    and isinstance(arg.elt.func, ast.Name)
                    and arg.elt.func.id == "bool"
                    and len(arg.elt.args) == 1
                    and isinstance(arg.elt.args[0], ast.Name)
                    and arg.elt.args[0].id == v
                ):
                    return ("count", variable)
                # sum(1 for v in cut.values("x") if v)
                if (
                    _int_literal(arg.elt) == 1
                    and len(gen.ifs) == 1
                    and isinstance(gen.ifs[0], ast.Name)
                    and gen.ifs[0].id == v
                ):
                    return ("count", variable)
        raise Unclassifiable(
            "sum(...) argument is not a recognized variable-sum or "
            "true-count form",
            node,
        )


def parses(body: ast.expr, cut_name: str) -> bool:
    """Does the body expression lie in the supported fragment?

    Convenience used by the CLS4xx lint rules; never raises.
    """
    try:
        FragmentParser(cut_name).parse(body)
        return True
    except Unclassifiable:
        return False
    except RecursionError:  # pragma: no cover - pathological nesting
        return False
