"""Source resolution for opaque callables, and its inverse (`opaquify`).

The classifier needs the *body expression* of a callable.  Resolution
order:

1. a ``__repro_source__`` attribute on the function — the convention for
   eval-compiled callables that :func:`inspect.getsource` cannot see
   (:func:`opaquify` and the CLI's ``--python`` option attach it);
2. :func:`inspect.getsource`, dedented and parsed; the lambda or ``def``
   matching the function is located in the parse tree.

:func:`opaquify` is the inverse direction: pretty-print a *structured*
predicate into fragment-conformant lambda source, compile it, and wrap
it as an opaque :class:`~repro.predicates.base.FunctionPredicate`.  The
testkit uses it to fuzz the classify-dispatch path against the directly
dispatched engines.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Optional, Tuple

from repro.analysis.classify.certificate import Unclassifiable
from repro.predicates.base import FunctionPredicate, GlobalPredicate
from repro.predicates.boolean import Clause, CNFPredicate
from repro.predicates.channel import InFlightPredicate
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.errors import PredicateError
from repro.predicates.local import Literal
from repro.predicates.relational import RelationalSumPredicate
from repro.predicates.symmetric import SymmetricPredicate

__all__ = [
    "function_body",
    "opaquify",
    "predicate_source",
    "target_function",
]


def target_function(predicate: GlobalPredicate) -> Optional[Callable]:
    """The underlying function a predicate's truth value comes from.

    For a :class:`FunctionPredicate` this is the wrapped callable (bound
    methods are unwrapped to their stable ``__func__``); for any other
    subclass it is the class's ``evaluate`` override.  Returns None when
    there is nothing to analyze.
    """
    if isinstance(predicate, FunctionPredicate):
        fn = predicate.fn
        if inspect.ismethod(fn):
            return fn.__func__
        return fn
    evaluate = type(predicate).__dict__.get("evaluate")
    if evaluate is None or not inspect.isfunction(evaluate):
        return None
    return evaluate


def _source_of(fn: Callable) -> str:
    source = getattr(fn, "__repro_source__", None)
    if isinstance(source, str):
        return source
    try:
        return textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise Unclassifiable(f"source unavailable: {exc}") from exc


def function_body(fn: Callable) -> Tuple[str, ast.expr, str]:
    """``(source, body expression, cut parameter name)`` of a callable.

    Raises :class:`Unclassifiable` when the source cannot be resolved,
    the signature is not a single cut parameter (after an optional
    ``self``/``cls``), or the body is more than one return expression.
    """
    source = _source_of(fn)
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise Unclassifiable(
            f"could not parse the callable's source: {exc.msg}"
        ) from exc
    name = getattr(fn, "__name__", "<lambda>")
    if name == "<lambda>":
        lambdas = [
            node for node in ast.walk(module) if isinstance(node, ast.Lambda)
        ]
        if len(lambdas) != 1:
            raise Unclassifiable(
                "could not isolate the lambda in its source line "
                f"({len(lambdas)} candidates)"
            )
        node = lambdas[0]
        body = node.body
    else:
        defs = [
            d
            for d in ast.walk(module)
            if isinstance(d, ast.FunctionDef) and d.name == name
        ]
        if len(defs) != 1:
            raise Unclassifiable(
                f"could not isolate def {name!r} in its source "
                f"({len(defs)} candidates)"
            )
        node = defs[0]
        body = _single_return(node)
    cut_name = _cut_parameter(node)
    return source, body, cut_name


def _cut_parameter(node) -> str:
    args = node.args
    if args.vararg or args.kwarg or args.kwonlyargs:
        raise Unclassifiable(
            "callable signature must be a single cut parameter", node
        )
    params = list(args.posonlyargs) + list(args.args)
    if params and params[0].arg in ("self", "cls") and len(params) > 1:
        params = params[1:]
    if len(params) != 1:
        raise Unclassifiable(
            "callable signature must be a single cut parameter", node
        )
    return params[0].arg


def _single_return(node: ast.FunctionDef) -> ast.expr:
    stmts = list(node.body)
    if (
        stmts
        and isinstance(stmts[0], ast.Expr)
        and isinstance(stmts[0].value, ast.Constant)
        and isinstance(stmts[0].value.value, str)
    ):
        stmts = stmts[1:]  # docstring
    if (
        len(stmts) != 1
        or not isinstance(stmts[0], ast.Return)
        or stmts[0].value is None
    ):
        raise Unclassifiable(
            "body must be a single return expression",
            stmts[0] if stmts else node,
        )
    return stmts[0].value


# ----------------------------------------------------------------------
# The inverse: structured predicate → opaque callable
# ----------------------------------------------------------------------
def predicate_source(predicate: GlobalPredicate) -> str:
    """Fragment-conformant source of a structured predicate's body.

    Raises :class:`~repro.predicates.errors.PredicateError` for
    predicates with no fragment spelling (non-literal conjuncts,
    filtered channel predicates, ...).
    """
    if isinstance(predicate, Literal):
        base = f'cut.value({predicate.process}, "{predicate.variable}")'
        return f"not {base}" if predicate.negated else base
    if isinstance(predicate, Clause):
        return (
            "("
            + " or ".join(predicate_source(l) for l in predicate.literals)
            + ")"
        )
    if isinstance(predicate, CNFPredicate):
        return " and ".join(
            predicate_source(cl) for cl in predicate.clauses
        )
    if isinstance(predicate, ConjunctivePredicate):
        parts = []
        for conjunct in predicate.conjuncts:
            if not isinstance(conjunct, Literal):
                raise PredicateError(
                    "cannot opaquify a conjunctive predicate with "
                    f"non-literal conjunct {conjunct.description()}"
                )
            parts.append(predicate_source(conjunct))
        return " and ".join(parts)
    if isinstance(predicate, RelationalSumPredicate):
        return (
            f'cut.variable_sum("{predicate.variable}") '
            f"{predicate.relop.value} {predicate.constant}"
        )
    if isinstance(predicate, SymmetricPredicate):
        counts = ", ".join(str(c) for c in sorted(predicate.counts))
        return (
            f'sum(map(bool, cut.values("{predicate.variable}"))) '
            f"in ({counts},)"
            if counts
            else "False"
        )
    if isinstance(predicate, InFlightPredicate):
        if predicate.source is not None or predicate.destination is not None:
            raise PredicateError(
                "cannot opaquify a channel predicate with endpoint filters"
            )
        return (
            "len(cut.crossing_messages()) "
            f"{predicate.relop.value} {predicate.constant}"
        )
    raise PredicateError(
        f"cannot opaquify a {type(predicate).__name__}"
    )


def opaquify(
    predicate: GlobalPredicate, name: Optional[str] = None
) -> FunctionPredicate:
    """Wrap a structured predicate as an opaque :class:`FunctionPredicate`.

    The wrapper evaluates exactly like the original but exposes no
    structure to isinstance-based dispatch — only the classifier can
    recover it (via the ``__repro_source__`` attribute the compiled
    lambda carries).
    """
    source = "lambda cut: " + predicate_source(predicate)
    fn = eval(compile(source, "<opaquify>", "eval"))  # noqa: S307 - own source
    fn.__repro_source__ = source
    return FunctionPredicate(
        fn, name or f"opaque[{predicate.description()}]"
    )
