"""Error taxonomy of the monitoring service.

Every service-layer failure derives from :class:`ServiceError`, which the
CLI maps to exit code 8 (see ``docs/CLI.md``).  Subclasses distinguish
the conditions a *client* is expected to handle differently:

* :class:`SessionRejected` — the ``reject`` backpressure policy refused
  an observation batch; carries a ``retry_after_s`` hint and how many
  observations of the batch were consumed (accepted or dead-lettered)
  before the queue filled, so clients resume with the untouched tail.
* :class:`ServiceDraining` — the service is shutting down and no longer
  accepts new sessions or observations.
* :class:`UnknownSession` — the session id is not (or no longer) open.
* :class:`SubmitDeadline` — a client-side per-call deadline expired; the
  submitter resolves this to a clean ``inconclusive`` outcome (exit
  code 7, mirroring ``detect --deadline-ms``) rather than hanging.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ServiceDraining",
    "ServiceError",
    "SessionRejected",
    "SubmitDeadline",
    "UnknownSession",
]


class ServiceError(Exception):
    """A monitoring-service failure (CLI exit code 8)."""


class SessionRejected(ServiceError):
    """Backpressure: the session's bounded queue is full (policy ``reject``).

    Attributes:
        session_id: The rejecting session.
        retry_after_s: Suggested client wait before retrying.
        accepted: Observations of the submitted batch that *were*
            enqueued before the queue filled.
        dead_lettered: Observations of the batch the server consumed
            into the session's dead-letter queue before the queue
            filled.  They count toward :attr:`consumed` — resubmitting
            them would quarantine duplicates.
    """

    def __init__(
        self,
        session_id: str,
        retry_after_s: float,
        accepted: int = 0,
        dead_lettered: int = 0,
    ) -> None:
        super().__init__(
            f"session {session_id!r}: ingest queue full; "
            f"retry after {retry_after_s:.3f}s"
        )
        self.session_id = session_id
        self.retry_after_s = retry_after_s
        self.accepted = accepted
        self.dead_lettered = dead_lettered

    @property
    def consumed(self) -> int:
        """Batch prefix length the server already processed.

        Clients must resume from this offset, not :attr:`accepted`:
        dead-lettered observations were consumed too, and resubmitting
        them would enqueue duplicates.
        """
        return self.accepted + self.dead_lettered


class ServiceDraining(ServiceError):
    """The service is draining: intake is closed."""

    def __init__(self, what: str = "request") -> None:
        super().__init__(f"service is draining; {what} refused")


class UnknownSession(ServiceError):
    """The referenced session id is not open."""

    def __init__(self, session_id: str) -> None:
        super().__init__(f"unknown session {session_id!r}")
        self.session_id = session_id


class SubmitDeadline(ServiceError):
    """A client-side submit deadline expired (resolves to inconclusive).

    Attributes:
        op: The operation that ran out of budget.
        elapsed_ms: Time spent before giving up.
        deadline_ms: The configured budget.
        attempts: Transport attempts made.
    """

    def __init__(
        self,
        op: str,
        elapsed_ms: float,
        deadline_ms: float,
        attempts: int,
        last_error: Optional[str] = None,
    ) -> None:
        detail = f"; last error: {last_error}" if last_error else ""
        super().__init__(
            f"deadline of {deadline_ms:.0f}ms expired after "
            f"{elapsed_ms:.0f}ms ({attempts} attempt(s)) in {op!r}{detail}"
        )
        self.op = op
        self.elapsed_ms = elapsed_ms
        self.deadline_ms = deadline_ms
        self.attempts = attempts
        self.last_error = last_error
