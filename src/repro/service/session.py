"""One monitored computation hosted by the service: config, journal, state.

A *session* is the unit of tenancy.  The supervisor owns the session
object (queue, journal, checkpoint, counters, dead letters); the current
worker incarnation owns the **live** :class:`~repro.monitor.multiplex.MonitorGroup`
it rebuilt from ``checkpoint + journal``.  All mutation happens under
``session.lock`` with an **epoch fence**: the worker checks that its
epoch is still the session's current epoch before every dequeue/apply,
so a zombie incarnation (declared dead by the supervisor while a thread
of it still runs) can never journal or apply a stale observation.

Restart invariant (chaos-harness proof obligation): the journal records
every entry *before* it is applied, and applying entries is
deterministic, so for any crash point::

    restore_group(checkpoint) ⊕ replay(journal)  ==  uninterrupted run

— verdicts and witnesses included.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.events import VectorClock
from repro.monitor import MonitorError, MonitorGroup, recovery
from repro.service.backpressure import BoundedQueue, validate_policy

__all__ = [
    "SERVICE_SESSION_STATE_FORMAT",
    "Session",
    "SessionConfig",
    "observation_stream",
    "session_id_ok",
]

SERVICE_SESSION_STATE_FORMAT = "repro-service-session-v1"

#: Characters allowed in a session id (doubles as a checkpoint filename).
_ID_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def session_id_ok(session_id: str) -> bool:
    """Is the id non-empty, filesystem-safe, and of sane length?"""
    return (
        0 < len(session_id) <= 128
        and not session_id.startswith(".")
        and all(c in _ID_CHARS for c in session_id)
    )


class SessionConfig:
    """Immutable per-session settings, fixed at ``open``.

    Args:
        session_id: Unique id (also the checkpoint filename stem).
        num_processes: Clock dimension of the monitored computation.
        queries: ``(name, processes)`` pairs, one conjunctive monitor
            each; stored sorted by name so group construction (and thus
            checkpoint bytes) never depend on submission order.
        lossy: Create the monitors in lossy-stream mode.
        policy: Backpressure policy (``block``/``reject``/``degrade``).
        queue_capacity: Bound of the ingest queue (data entries).
        checkpoint_every: Journal entries between periodic checkpoints.
    """

    __slots__ = (
        "session_id",
        "num_processes",
        "queries",
        "lossy",
        "policy",
        "queue_capacity",
        "checkpoint_every",
    )

    def __init__(
        self,
        session_id: str,
        num_processes: int,
        queries: Sequence[Tuple[str, Sequence[int]]],
        lossy: bool = True,
        policy: str = "block",
        queue_capacity: int = 256,
        checkpoint_every: int = 64,
    ) -> None:
        if not session_id_ok(session_id):
            raise ValueError(
                f"bad session id {session_id!r}: use 1-128 chars from "
                "[A-Za-z0-9._-], not starting with '.'"
            )
        if num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        if not queries:
            raise ValueError("a session needs at least one query")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.session_id = session_id
        self.num_processes = int(num_processes)
        self.queries: Tuple[Tuple[str, Tuple[int, ...]], ...] = tuple(
            sorted((str(name), tuple(int(p) for p in procs))
                   for name, procs in queries)
        )
        names = [name for name, _ in self.queries]
        if len(set(names)) != len(names):
            raise ValueError("duplicate query names")
        self.lossy = bool(lossy)
        self.policy = validate_policy(policy)
        self.queue_capacity = int(queue_capacity)
        self.checkpoint_every = int(checkpoint_every)

    def build_group(self) -> MonitorGroup:
        """A fresh :class:`MonitorGroup` matching this config."""
        group = MonitorGroup(self.num_processes, lossy=self.lossy)
        for name, procs in self.queries:
            group.add(name, list(procs))
        return group


class Session:
    """Mutable state of one hosted session (lock-protected)."""

    def __init__(self, config: SessionConfig) -> None:
        self.config = config
        self.lock = threading.RLock()
        #: Signalled whenever the queue may have settled (emptied) or a
        #: control entry was applied; close/drain wait on it.
        self.settled = threading.Condition(self.lock)
        self.queue = BoundedQueue(config.queue_capacity)
        #: Worker incarnation allowed to apply entries.
        self.epoch = 0
        #: Entries journaled since the last checkpoint, in apply order.
        self.journal: List[Dict[str, Any]] = []
        #: Total entries ever journaled (monotone; checkpoint high-water).
        self.seq = 0
        #: Journal position folded into :attr:`checkpoint`.
        self.checkpoint_seq = 0
        #: Last service checkpoint document (JSON-safe), or None.
        self.checkpoint: Optional[Dict[str, Any]] = None
        #: The live monitor group of the current incarnation (worker-built).
        self.group: Optional[MonitorGroup] = None
        #: ``degrade`` policy: control entry enqueued (supervisor side).
        self.degrade_requested = False
        #: ``degrade`` control entry applied (monitors are lossy now).
        self.degraded = False
        #: ``finish`` control entry enqueued / applied.
        self.finish_requested = False
        self.finished = False
        self.closed = False
        self.counts: Dict[str, int] = {
            "ingested": 0,
            "applied": 0,
            "shed": 0,
            "rejected": 0,
            "backpressure_waits": 0,
            "dead_letters": 0,
            "stale_epoch_drops": 0,
            "checkpoints": 0,
            "journal_replayed": 0,
            "restarts": 0,
        }
        #: Quarantined poison observations: ``stage`` is ``"validate"``
        #: (structurally invalid, never journaled) or ``"apply"``
        #: (journaled entry the monitor refused; rebuilt on replay).
        self.dead_letters: List[Dict[str, Any]] = []
        self.opened_at = perf_counter()
        self.closed_wall_ms: Optional[float] = None
        #: Wall ms from open to the first detection of any query.
        self.ttd_ms: Optional[float] = None

    # ------------------------------------------------------------------
    # Validation (pre-journal; structural poison goes to the dead letter
    # queue here and never reaches the journal or the monitors)
    # ------------------------------------------------------------------
    def validate_observation(self, obs: Any) -> Optional[str]:
        """Why this wire observation is poison, or None when well-formed."""
        n = self.config.num_processes
        if not isinstance(obs, (list, tuple)) or len(obs) != 4:
            return "observation must be [process, index, clock, truth]"
        process, index, clock, truth = obs
        if not isinstance(process, int) or isinstance(process, bool):
            return "process must be an integer"
        if not 0 <= process < n:
            return f"process {process} out of range [0, {n})"
        if not isinstance(index, int) or isinstance(index, bool):
            return "index must be an integer"
        if index < 0:
            return "index must be >= 0"
        if not isinstance(clock, (list, tuple)) or len(clock) != n:
            return f"clock must be a length-{n} integer vector"
        for component in clock:
            if not isinstance(component, int) or isinstance(component, bool):
                return "clock components must be integers"
            if component < 0:
                return "clock components must be >= 0"
        if not isinstance(truth, bool):
            return "truth must be a boolean"
        return None

    # ------------------------------------------------------------------
    # Journal application (caller holds ``lock``)
    # ------------------------------------------------------------------
    def apply_entry(
        self, entry: Dict[str, Any], seq: int, replay: bool
    ) -> List[str]:
        """Apply one journal entry to the live group; returns fired names.

        Deterministic in ``(group state, entry)``: a replayed journal
        reproduces the exact monitor state *and* dead-letter decisions
        of the interrupted incarnation.
        """
        group = self.group
        assert group is not None
        kind = entry["kind"]
        if kind == "degrade":
            group.degrade_to_lossy()
            self.degraded = True
            return []
        if kind == "finish":
            group.finish_all()
            self.finished = True
            return []
        try:
            fired = group.observe(
                entry["process"],
                entry["index"],
                VectorClock(entry["clock"]),
                entry["truth"],
            )
        except MonitorError as exc:
            # A well-formed observation the monitors refuse (e.g. out of
            # order on a strict session).  Isolate it to this session's
            # dead letters; the journal keeps the entry so a replay makes
            # the same decision.
            self.dead_letters.append(
                {
                    "stage": "apply",
                    "seq": seq,
                    "reason": str(exc),
                    "observation": [
                        entry["process"],
                        entry["index"],
                        list(entry["clock"]),
                        entry["truth"],
                    ],
                }
            )
            if not replay:
                self.counts["dead_letters"] += 1
            return []
        if not replay:
            self.counts["applied"] += 1
        if fired and self.ttd_ms is None:
            self.ttd_ms = (perf_counter() - self.opened_at) * 1000.0
        return fired

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def make_checkpoint(self) -> Dict[str, Any]:
        """Service checkpoint doc for the current live state (hold lock)."""
        assert self.group is not None
        return {
            "format": SERVICE_SESSION_STATE_FORMAT,
            "session": self.config.session_id,
            "epoch": self.epoch,
            "seq": self.seq,
            "degraded": self.degraded,
            "finished": self.finished,
            "group": recovery.checkpoint_group(self.group),
            "dead_letters": [
                dict(entry)
                for entry in self.dead_letters
                if entry["stage"] == "apply"
            ],
        }

    def take_checkpoint(self) -> Dict[str, Any]:
        """Fold the journal into a fresh checkpoint (hold lock)."""
        doc = self.make_checkpoint()
        self.checkpoint = doc
        self.checkpoint_seq = self.seq
        self.journal = []
        self.counts["checkpoints"] += 1
        return doc

    def checkpoint_text(self, doc: Dict[str, Any]) -> str:
        """Byte-stable JSON rendering of a checkpoint document."""
        return json.dumps(doc, indent=2, sort_keys=True)

    def restore_live_group(self) -> int:
        """Rebuild the live group from checkpoint + journal (hold lock).

        Returns the number of journal entries replayed.  Dead letters
        recorded at the apply stage after the checkpoint are dropped
        first — the replay recreates them deterministically.
        """
        if self.checkpoint is not None:
            self.group = recovery.restore_group(self.checkpoint["group"])
            self.degraded = bool(self.checkpoint["degraded"])
            self.finished = bool(self.checkpoint["finished"])
            self.dead_letters = [
                dict(entry) for entry in self.checkpoint["dead_letters"]
            ] + [
                entry
                for entry in self.dead_letters
                if entry["stage"] == "validate"
            ]
        else:
            self.group = self.config.build_group()
            self.degraded = False
            self.finished = False
            self.dead_letters = [
                entry
                for entry in self.dead_letters
                if entry["stage"] == "validate"
            ]
        seq = self.checkpoint_seq
        for entry in self.journal:
            seq += 1
            self.apply_entry(entry, seq=seq, replay=True)
        replayed = len(self.journal)
        self.counts["journal_replayed"] += replayed
        return replayed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the session's verdicts and health."""
        with self.lock:
            group = self.group
            verdicts: Dict[str, str] = {}
            detected: Dict[str, bool] = {}
            witnesses: Dict[str, Dict[str, List[Any]]] = {}
            gaps: Dict[str, Dict[str, List[List[int]]]] = {}
            if group is not None:
                verdicts = group.detailed_verdicts()
                detected = group.verdicts()
                for name, witness in group.witnesses().items():
                    witnesses[name] = {
                        str(p): [index, list(clock)]
                        for p, (index, clock) in sorted(witness.items())
                    }
                for name in verdicts:
                    monitor = group[name]
                    if monitor.had_gaps:
                        gaps[name] = {
                            str(p): [list(span) for span in spans]
                            for p, spans in sorted(monitor.gaps.items())
                            if spans
                        }
            return {
                "session": self.config.session_id,
                "policy": self.config.policy,
                "lossy": self.config.lossy or self.degraded,
                "degraded": self.degraded,
                "finished": self.finished,
                "closed": self.closed,
                "epoch": self.epoch,
                "queue_depth": len(self.queue),
                "queue_high_water": self.queue.high_water,
                "verdicts": verdicts,
                "detected": detected,
                "witnesses": witnesses,
                "gaps": gaps,
                "dead_letters": [dict(entry) for entry in self.dead_letters],
                "counts": dict(self.counts),
                "ttd_ms": self.ttd_ms,
            }


# ----------------------------------------------------------------------
# Stream extraction (shared by ``repro feed``, chaos, and benchmarks)
# ----------------------------------------------------------------------
def observation_stream(comp, monitored, variable: str = "x"):
    """The wire-format ``[process, index, clock, truth]`` stream of a
    computation.

    Initial events first (index 0 per monitored process), then one entry
    per event of a linearization — the order a well-behaved reporter
    would deliver.  Clocks are plain lists, ready for JSON transport.
    """
    from repro.computation import some_linearization

    wanted = sorted(set(monitored))
    stream = []
    for p in wanted:
        ev = comp.initial_event(p)
        stream.append(
            [
                p,
                0,
                [int(c) for c in comp.clock(ev.event_id).components],
                bool(ev.value(variable, False)),
            ]
        )
    members = set(wanted)
    for eid in some_linearization(comp):
        p, index = eid
        if p not in members:
            continue
        ev = comp.event(eid)
        stream.append(
            [
                p,
                index,
                [int(c) for c in comp.clock(eid).components],
                bool(ev.value(variable, False)),
            ]
        )
    return stream
