"""Chaos harness: fault-injected multi-session runs checked against oracles.

A :class:`ChaosPlan` drives an in-process :class:`MonitorService`
through the protocol path (``LocalTransport`` → ``handle_request``)
while injecting service-level faults:

* **worker kills** mid-stream (the supervisor must restart from
  checkpoint + journal behind the client's back),
* **duplicate** observations (redelivery),
* **reorders** across processes (network skew; per-process order is
  preserved, which is all the monitors assume),
* **corrupt** observations of both kinds — *semantically* corrupt clocks
  that lossy monitors quarantine, and *structurally* invalid payloads
  (poison) the service dead-letters before they reach a monitor,
* **queue saturation** via small capacities under the ``block`` policy.

The parity oracle: an uninterrupted :class:`MonitorGroup` fed the same
mutated observation stream directly (minus the structural poison, which
a direct caller could not even type).  Kills, backpressure and poison
are service-exclusive faults, so every session must end with verdicts
*and witnesses* identical to its oracle — that is the restart
correctness claim of ``docs/SERVICE.md``, made executable.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.events import VectorClock
from repro.monitor import MonitorGroup
from repro.service.client import LocalTransport, Submitter
from repro.service.session import observation_stream
from repro.service.supervisor import MonitorService

__all__ = ["ChaosPlan", "ChaosReport", "run_chaos"]

#: A structurally invalid payload per poison "shape".
_POISON_SHAPES = (
    ["not-an-int", 0, [1, 1, 1, 1], True],
    [0, -3, [1, 1, 1, 1], True],
    [0, 1, [1, 1], True],
    [0, 1, None, True],
    [0, 1, [1, 1, 1, 1], "yes"],
    [0, 1],
)


class ChaosPlan:
    """Configuration of one chaos run.

    Args:
        seed: Master seed; every random choice derives from it.
        num_sessions: Hosted sessions (distinct computations).
        workers: Worker slots of the service under test.
        kills: ``(progress, slot)`` pairs — kill the worker of ``slot``
            once the stream of session 0 has delivered ``progress``
            (a fraction in (0, 1)) of its observations.
        duplicate_p: Per-observation probability of immediate redelivery.
        reorder_p: Per-observation probability of swapping with the next
            stream entry when they belong to different processes.
        corrupt_p: Per-observation probability of injecting a
            semantically-corrupt extra observation after it.
        poison_every: Inject one structurally invalid payload every this
            many observations (0 disables).
        queue_capacity: Per-session ingest bound (small = saturation).
        checkpoint_every: Journal entries between checkpoints (small =
            restarts exercise both checkpoint and journal paths).
        events_per_process: Size of each generated computation.
        processes: Process count of each generated computation.
    """

    def __init__(
        self,
        seed: int = 7,
        num_sessions: int = 6,
        workers: int = 3,
        kills: Sequence[Tuple[float, int]] = ((0.3, 0), (0.6, 1)),
        duplicate_p: float = 0.08,
        reorder_p: float = 0.08,
        corrupt_p: float = 0.04,
        poison_every: int = 25,
        queue_capacity: int = 8,
        checkpoint_every: int = 5,
        events_per_process: int = 12,
        processes: int = 4,
    ) -> None:
        self.seed = seed
        self.num_sessions = num_sessions
        self.workers = workers
        self.kills = tuple(kills)
        self.duplicate_p = duplicate_p
        self.reorder_p = reorder_p
        self.corrupt_p = corrupt_p
        self.poison_every = poison_every
        self.queue_capacity = queue_capacity
        self.checkpoint_every = checkpoint_every
        self.events_per_process = events_per_process
        self.processes = processes


class ChaosReport:
    """Outcome of one chaos run (see :func:`run_chaos`)."""

    def __init__(self) -> None:
        self.sessions: List[Dict[str, Any]] = []
        self.kills_delivered = 0
        self.poison_injected = 0
        self.stats: Dict[str, Any] = {}

    @property
    def all_match(self) -> bool:
        """Did every session match its uninterrupted oracle?"""
        return all(s["parity"] for s in self.sessions)

    def mismatches(self) -> List[Dict[str, Any]]:
        return [s for s in self.sessions if not s["parity"]]


def _mutate_stream(
    stream: List[List[Any]], rng: random.Random, plan: ChaosPlan
) -> List[List[Any]]:
    """Apply duplicate / reorder / corrupt faults to a wire stream.

    Reorders only swap adjacent entries of *different* processes, so
    per-process FIFO order — the only delivery assumption the monitors
    make — is preserved and the oracle stays well-defined.
    """
    mutated: List[List[Any]] = []
    for obs in stream:
        mutated.append(list(obs))
        if rng.random() < plan.duplicate_p:
            mutated.append(list(obs))
        if rng.random() < plan.corrupt_p:
            # A corrupt reporter: the self component of the clock
            # overshoots, so ``clock[p] != index + 1`` and a lossy
            # monitor quarantines the observation.
            process, index, clock, truth = obs
            bad_clock = list(clock)
            bad_clock[process] += 3
            mutated.append([process, index, bad_clock, truth])
    i = 0
    while i < len(mutated) - 1:
        if (
            mutated[i][0] != mutated[i + 1][0]
            and rng.random() < plan.reorder_p
        ):
            mutated[i], mutated[i + 1] = mutated[i + 1], mutated[i]
            i += 2
        else:
            i += 1
    return mutated


def _oracle_outcome(
    num_processes: int,
    queries: Sequence[Tuple[str, Sequence[int]]],
    stream: Sequence[Sequence[Any]],
) -> Tuple[Dict[str, str], Dict[str, Any]]:
    """Verdicts + witnesses of an uninterrupted lossy group on the stream."""
    group = MonitorGroup(num_processes, lossy=True)
    for name, procs in sorted((n, tuple(p)) for n, p in queries):
        group.add(name, list(procs))
    for process, index, clock, truth in stream:
        group.observe(process, index, VectorClock(clock), truth)
    group.finish_all()
    witnesses = {
        name: {
            str(p): [index, [int(c) for c in clock.components]]
            for p, (index, clock) in sorted(witness.items())
        }
        for name, witness in group.witnesses().items()
    }
    return group.detailed_verdicts(), witnesses


def _build_session_inputs(
    plan: ChaosPlan,
) -> List[Dict[str, Any]]:
    """Generate the per-session computations, queries and streams."""
    from repro.simulation.protocols import build_crash_restart_lock_scenario
    from repro.trace import BoolVar, random_computation

    sessions: List[Dict[str, Any]] = []
    for i in range(plan.num_sessions):
        rng = random.Random(plan.seed * 1000 + i)
        if i % 3 == 0:
            # A known-violation scenario: the fault-injected lock server.
            comp = build_crash_restart_lock_scenario(seed=plan.seed + i)
            monitored = [2, 3]
            variable = "holds_lock"
            n = comp.num_processes
            queries = [("lock(2,3)", (2, 3))]
        else:
            n = plan.processes
            comp = random_computation(
                num_processes=n,
                events_per_process=plan.events_per_process,
                variables=[BoolVar("x", density=0.45)],
                seed=plan.seed * 31 + i,
                message_density=0.35,
            )
            monitored = list(range(n))
            variable = "x"
            pairs = [(a, a + 1) for a in range(n - 1)]
            queries = [
                (f"pair({a},{b})", (a, b))
                for a, b in rng.sample(pairs, min(2, len(pairs)))
            ]
        stream = observation_stream(comp, monitored, variable=variable)
        sessions.append(
            {
                "id": f"chaos-{i}",
                "num_processes": n,
                "queries": queries,
                "stream": _mutate_stream(stream, rng, plan),
            }
        )
    return sessions


def run_chaos(plan: ChaosPlan) -> ChaosReport:
    """Execute a chaos plan; returns the parity report.

    The service hosts every session concurrently (interleaved batch
    submission round-robin across sessions), workers are killed at the
    planned progress points, and poison payloads are injected through
    the protocol path.  After drain, each session's verdicts and
    witnesses are compared against its uninterrupted oracle.
    """
    report = ChaosReport()
    inputs = _build_session_inputs(plan)
    service = MonitorService(
        workers=plan.workers,
        checkpoint_every=plan.checkpoint_every,
        default_policy="block",
        default_queue_capacity=plan.queue_capacity,
        block_timeout_s=30.0,
    )
    submitter = Submitter(
        LocalTransport(service), retries=8, backoff_s=0.01, seed=plan.seed
    )
    try:
        for spec in inputs:
            submitter.open_session(
                spec["id"],
                spec["num_processes"],
                spec["queries"],
                lossy=True,
            )
        # Interleave delivery: cursor per session, batches of 3, with
        # kills keyed to the progress of session 0's stream.
        cursors = {spec["id"]: 0 for spec in inputs}
        kill_queue = sorted(plan.kills)
        poison_countdown = plan.poison_every
        total0 = max(1, len(inputs[0]["stream"]))
        while any(
            cursors[spec["id"]] < len(spec["stream"]) for spec in inputs
        ):
            for spec in inputs:
                sid = spec["id"]
                cursor = cursors[sid]
                if cursor >= len(spec["stream"]):
                    continue
                batch = spec["stream"][cursor:cursor + 3]
                cursors[sid] = cursor + len(batch)
                if plan.poison_every:
                    poison_countdown -= len(batch)
                    if poison_countdown <= 0:
                        poison_countdown = plan.poison_every
                        poison = list(
                            _POISON_SHAPES[
                                report.poison_injected
                                % len(_POISON_SHAPES)
                            ]
                        )
                        batch = batch + [poison]
                        report.poison_injected += 1
                        spec.setdefault("poison_sent", 0)
                        spec["poison_sent"] += 1
                submitter.submit(sid, batch)
            progress = cursors[inputs[0]["id"]] / total0
            while kill_queue and progress >= kill_queue[0][0]:
                _, slot = kill_queue.pop(0)
                service.kill_worker(slot % plan.workers)
                report.kills_delivered += 1
                # Give the supervisor a beat to restart before more load.
                _spin_until_alive(service, slot % plan.workers)
        drain_summary = service.drain(timeout_s=60.0)
        report.stats = service.stats()
        report.stats["drain"] = drain_summary
        for spec in inputs:
            outcome = service.session_report(spec["id"])
            oracle_verdicts, oracle_witnesses = _oracle_outcome(
                spec["num_processes"], spec["queries"], spec["stream"]
            )
            poison_sent = spec.get("poison_sent", 0)
            validate_dead = [
                d
                for d in outcome["dead_letters"]
                if d["stage"] == "validate"
            ]
            parity = (
                outcome["verdicts"] == oracle_verdicts
                and outcome["witnesses"] == oracle_witnesses
                and len(validate_dead) == poison_sent
            )
            report.sessions.append(
                {
                    "session": spec["id"],
                    "parity": parity,
                    "verdicts": outcome["verdicts"],
                    "oracle_verdicts": oracle_verdicts,
                    "witnesses": outcome["witnesses"],
                    "oracle_witnesses": oracle_witnesses,
                    "poison_sent": poison_sent,
                    "dead_letters": len(outcome["dead_letters"]),
                    "dead_letter_detail": outcome["dead_letters"],
                    "restarts": outcome["counts"]["restarts"],
                    "counts": outcome["counts"],
                }
            )
    finally:
        service.shutdown(timeout_s=10.0)
    return report


def _spin_until_alive(
    service: MonitorService, slot: int, timeout_s: float = 5.0
) -> None:
    from time import perf_counter, sleep

    deadline = perf_counter() + timeout_s
    while perf_counter() < deadline:
        stats = service.stats()
        if stats["slots"][slot]["alive"]:
            return
        sleep(0.01)
