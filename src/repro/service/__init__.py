"""The resilient multi-session monitoring service (``docs/SERVICE.md``).

Layers, bottom-up:

* :mod:`repro.service.backpressure` — bounded ingest queues + policies.
* :mod:`repro.service.session` — per-session state: config, journal,
  checkpoint, dead letters.
* :mod:`repro.service.worker` — supervised apply threads with epoch
  fencing and write-ahead journaling.
* :mod:`repro.service.supervisor` — :class:`MonitorService`: sharding,
  crash restart, graceful drain.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  line-JSON wire protocol (``repro serve`` / ``repro feed``).
* :mod:`repro.service.chaos` — fault-injection harness with
  verdict-and-witness parity oracles.
"""

from repro.service.backpressure import POLICIES, BoundedQueue, validate_policy
from repro.service.chaos import ChaosPlan, ChaosReport, run_chaos
from repro.service.client import LocalTransport, SocketTransport, Submitter
from repro.service.errors import (
    ServiceDraining,
    ServiceError,
    SessionRejected,
    SubmitDeadline,
    UnknownSession,
)
from repro.service.server import ServiceServer, handle_request
from repro.service.session import (
    SERVICE_SESSION_STATE_FORMAT,
    Session,
    SessionConfig,
    observation_stream,
)
from repro.service.supervisor import MonitorService
from repro.service.worker import Worker, WorkerKilled

__all__ = [
    "BoundedQueue",
    "ChaosPlan",
    "ChaosReport",
    "LocalTransport",
    "MonitorService",
    "POLICIES",
    "SERVICE_SESSION_STATE_FORMAT",
    "ServiceDraining",
    "ServiceError",
    "ServiceServer",
    "Session",
    "SessionConfig",
    "SessionRejected",
    "SocketTransport",
    "SubmitDeadline",
    "Submitter",
    "UnknownSession",
    "Worker",
    "WorkerKilled",
    "handle_request",
    "observation_stream",
    "run_chaos",
    "validate_policy",
]
