"""Bounded per-session ingest queues and the backpressure policies.

Each session owns one :class:`BoundedQueue` of pending journal entries.
The supervisor enqueues (applying the session's policy), exactly one
worker incarnation dequeues, so memory per session is capped at
``capacity`` data entries (control entries — ``finish``/``degrade``
markers — bypass the cap; there are at most two per session lifetime).

Policies (``docs/SERVICE.md``):

* ``block`` — the submitter blocks until the queue has room (bounded by
  the service's block timeout, after which the submit fails).
* ``reject`` — a full queue rejects the batch with a ``retry_after_s``
  hint (the wire protocol calls this ``reject-with-retry-after``); the
  client-side submitter backs off and retries.
* ``degrade`` — a full queue sheds the observation and flips the session
  to lossy mode, so the shed observations surface as *recorded gaps* in
  the monitors instead of stalling the producer.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Optional, Tuple

__all__ = ["BoundedQueue", "POLICIES", "validate_policy"]

#: The recognized backpressure policies.
POLICIES = ("block", "reject", "degrade")


def validate_policy(policy: str) -> str:
    """Normalize and validate a policy name (accepting the wire alias)."""
    name = str(policy).strip().lower()
    if name == "reject-with-retry-after":
        name = "reject"
    if name not in POLICIES:
        raise ValueError(
            f"unknown backpressure policy {policy!r}; "
            f"expected one of {', '.join(POLICIES)}"
        )
    return name


class BoundedQueue:
    """A capacity-bounded FIFO with blocking put and non-blocking pop.

    Thread-safe for many producers and many consumers; the service
    guarantees a single *logical* consumer per session via epoch
    fencing, the queue itself does not care.
    """

    def __init__(
        self,
        capacity: int,
        wakeup: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._wakeup = wakeup
        #: Deepest the queue has ever been (control entries included);
        #: bounded-memory proof obligation for the load benchmark.
        self.high_water = 0

    def set_wakeup(self, wakeup: Callable[[], None]) -> None:
        """Install the consumer-side wakeup called after every put."""
        self._wakeup = wakeup

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def _record_depth_locked(self) -> None:
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)

    def try_put(self, item: Any) -> bool:
        """Enqueue if there is room; False when the queue is full."""
        with self._lock:
            if len(self._items) >= self.capacity:
                return False
            self._items.append(item)
            self._record_depth_locked()
        if self._wakeup is not None:
            self._wakeup()
        return True

    def put_control(self, item: Any) -> None:
        """Enqueue a control entry, bypassing the capacity bound."""
        with self._lock:
            self._items.append(item)
            self._record_depth_locked()
        if self._wakeup is not None:
            self._wakeup()

    def put_blocking(self, item: Any, timeout_s: float) -> Tuple[bool, bool]:
        """Enqueue, waiting up to ``timeout_s`` for room.

        Returns ``(enqueued, waited)`` — ``waited`` reports whether
        backpressure actually stalled the producer (for metrics).
        """
        waited = False
        deadline = None
        with self._not_full:
            while len(self._items) >= self.capacity:
                waited = True
                if deadline is None:
                    deadline = perf_counter() + timeout_s
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    return False, waited
                self._not_full.wait(remaining)
            self._items.append(item)
            self._record_depth_locked()
        if self._wakeup is not None:
            self._wakeup()
        return True, waited

    def pop(self) -> Optional[Any]:
        """Dequeue the oldest entry, or None when empty."""
        with self._not_full:
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item
