"""Client side of the monitoring service: transports and the submitter.

The wire protocol is newline-delimited JSON request/response (see
``docs/SERVICE.md``).  Two transports speak it:

* :class:`SocketTransport` — TCP to a ``repro serve`` process, with lazy
  connect and reconnect-on-error (each retry gets a fresh connection).
* :class:`LocalTransport` — calls
  :func:`repro.service.server.handle_request` on an in-process
  :class:`~repro.service.supervisor.MonitorService`; the chaos harness
  and tests use it to exercise the exact protocol path without sockets.

:class:`Submitter` wraps a transport with the resilience policy clients
are expected to implement: bounded retries, exponential backoff with
seeded jitter, honoring ``retry_after_s`` hints from the ``reject``
policy, and an optional per-call deadline that resolves to a clean
:class:`~repro.service.errors.SubmitDeadline` (CLI exit code 7,
mirroring ``detect --deadline-ms``) instead of hanging forever.
"""

from __future__ import annotations

import json
import random
import socket
from time import perf_counter, sleep
from typing import Any, Dict, List, Optional, Sequence

from repro.service.errors import (
    ServiceError,
    SessionRejected,
    SubmitDeadline,
)

__all__ = ["LocalTransport", "SocketTransport", "Submitter"]

#: Error codes the submitter treats as transient (worth retrying with
#: the same payload).  ``rejected`` is deliberately NOT here: a reject
#: may have accepted a prefix of the batch, so only :meth:`Submitter.submit`
#: retries it — with the unaccepted tail.
_RETRYABLE_CODES = frozenset({"unavailable"})


class TransportError(ServiceError):
    """The transport could not complete a request (connection-level)."""


class LocalTransport:
    """In-process transport: the protocol without the socket."""

    def __init__(self, service: Any) -> None:
        self._service = service

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        from repro.service.server import handle_request

        return handle_request(self._service, payload)

    def close(self) -> None:  # symmetry with SocketTransport
        pass


class SocketTransport:
    """One lazily-connected TCP line-JSON channel to a ``repro serve``."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout_s: float = 10.0
    ) -> None:
        self.host = host
        self.port = port
        self._timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._reader = None

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self._timeout_s
        )
        sock.settimeout(self._timeout_s)
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if self._sock is None:
                self._connect()
            assert self._sock is not None and self._reader is not None
            line = json.dumps(payload, sort_keys=True) + "\n"
            self._sock.sendall(line.encode("utf-8"))
            response = self._reader.readline()
            if not response:
                raise TransportError("server closed the connection")
            return json.loads(response)
        except (OSError, ValueError, TransportError) as exc:
            # Drop the channel so the next attempt reconnects cleanly.
            self.close()
            if isinstance(exc, TransportError):
                raise
            raise TransportError(f"transport failure: {exc}") from exc

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


class Submitter:
    """Retrying client: backoff + jitter + deadline over a transport.

    Args:
        transport: A :class:`LocalTransport` or :class:`SocketTransport`.
        retries: Max attempts per request (first try included).
        backoff_s: Initial backoff between attempts.
        backoff_cap_s: Exponential backoff ceiling.
        jitter: Fraction of the backoff randomized (0 disables; jitter
            uses a seeded :class:`random.Random` so runs are
            reproducible).
        seed: Jitter seed.
        deadline_s: Optional per-call budget; when it expires the call
            raises :class:`SubmitDeadline` (the CLI maps it to the
            ``inconclusive`` exit code 7).
    """

    def __init__(
        self,
        transport: Any,
        retries: int = 5,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        jitter: float = 0.5,
        seed: int = 0,
        deadline_s: Optional[float] = None,
    ) -> None:
        if retries < 1:
            raise ValueError("retries must be >= 1")
        self._transport = transport
        self._retries = retries
        self._backoff_s = backoff_s
        self._backoff_cap_s = backoff_cap_s
        self._jitter = jitter
        self._rng = random.Random(seed)
        self._deadline_s = deadline_s

    # ------------------------------------------------------------------
    # Core request loop
    # ------------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Issue one op, retrying transient failures within the budget."""
        payload = {"op": op}
        payload.update(fields)
        started = perf_counter()
        deadline = (
            started + self._deadline_s
            if self._deadline_s is not None
            else None
        )
        attempts = 0
        last_error: Optional[str] = None
        while True:
            if deadline is not None and perf_counter() >= deadline:
                raise SubmitDeadline(
                    op,
                    elapsed_ms=(perf_counter() - started) * 1000.0,
                    deadline_ms=self._deadline_s * 1000.0,
                    attempts=attempts,
                    last_error=last_error,
                )
            attempts += 1
            try:
                response = self._transport.request(payload)
            except TransportError as exc:
                last_error = str(exc)
                response = {"ok": False, "code": "unavailable",
                            "error": str(exc)}
            if response.get("ok"):
                return response
            code = response.get("code", "error")
            error = response.get("error", "request failed")
            if code not in _RETRYABLE_CODES or attempts >= self._retries:
                if code == "rejected":
                    raise SessionRejected(
                        str(fields.get("session", "?")),
                        retry_after_s=float(
                            response.get("retry_after_s", 0.0)
                        ),
                        accepted=int(response.get("accepted", 0)),
                        dead_lettered=int(
                            response.get("dead_lettered", 0)
                        ),
                    )
                raise ServiceError(f"{op} failed ({code}): {error}")
            last_error = f"{code}: {error}"
            self._sleep_before_retry(attempts, response, deadline)

    def _sleep_before_retry(
        self,
        attempt: int,
        response: Dict[str, Any],
        deadline: Optional[float],
    ) -> None:
        delay = min(
            self._backoff_s * (2 ** (attempt - 1)), self._backoff_cap_s
        )
        hint = response.get("retry_after_s")
        if hint is not None:
            delay = max(delay, float(hint))
        if self._jitter:
            delay *= 1.0 + self._jitter * self._rng.random()
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - perf_counter()))
        if delay > 0:
            sleep(delay)

    # ------------------------------------------------------------------
    # Protocol helpers
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def open_session(
        self,
        session_id: str,
        num_processes: int,
        queries: Sequence[Any],
        lossy: bool = True,
        policy: Optional[str] = None,
        queue_capacity: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "session": session_id,
            "num_processes": num_processes,
            "queries": [
                [name, list(procs)] for name, procs in queries
            ],
            "lossy": lossy,
        }
        if policy is not None:
            fields["policy"] = policy
        if queue_capacity is not None:
            fields["queue_capacity"] = queue_capacity
        if checkpoint_every is not None:
            fields["checkpoint_every"] = checkpoint_every
        return self.call("open", **fields)

    def submit(
        self, session_id: str, observations: Sequence[Any]
    ) -> Dict[str, Any]:
        """Submit a batch, resuming after partial ``reject`` accepts."""
        remaining: List[Any] = [list(obs) for obs in observations]
        totals = {"accepted": 0, "shed": 0, "dead_lettered": 0}
        attempt = 0
        started = perf_counter()
        deadline = (
            started + self._deadline_s
            if self._deadline_s is not None
            else None
        )
        last_error: Optional[str] = None
        while remaining:
            # The deadline bounds the whole batch, including partial
            # accepts: a session taking one item per round must still
            # resolve to a clean SubmitDeadline, never run unbounded.
            if deadline is not None and perf_counter() >= deadline:
                raise SubmitDeadline(
                    "observe",
                    elapsed_ms=(perf_counter() - started) * 1000.0,
                    deadline_ms=self._deadline_s * 1000.0,
                    attempts=attempt,
                    last_error=last_error,
                )
            try:
                response = self.call(
                    "observe", session=session_id, observations=remaining
                )
            except SessionRejected as exc:
                last_error = str(exc)
                # Partial progress: the server consumed a prefix of the
                # batch — everything it accepted PLUS anything it
                # dead-lettered — before the queue filled.  Resume from
                # the consumed offset; resubmitting dead-lettered items
                # would quarantine duplicates and break exactly-once.
                if exc.consumed:
                    totals["accepted"] += exc.accepted
                    totals["dead_lettered"] += exc.dead_lettered
                    remaining = remaining[exc.consumed:]
                    attempt = 0
                    continue
                attempt += 1
                if attempt >= self._retries:
                    raise
                self._sleep_before_retry(
                    attempt,
                    {"retry_after_s": exc.retry_after_s},
                    deadline,
                )
                continue
            for key in totals:
                totals[key] += int(response.get(key, 0))
            remaining = []
        return totals

    def finish(self, session_id: str) -> Dict[str, Any]:
        return self.call("finish", session=session_id)

    def status(self, session_id: str) -> Dict[str, Any]:
        return self.call("status", session=session_id)

    def close_session(
        self, session_id: str, timeout_s: float = 30.0
    ) -> Dict[str, Any]:
        return self.call("close", session=session_id, timeout_s=timeout_s)

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def shutdown(self) -> Dict[str, Any]:
        return self.call("shutdown")
