"""Supervised worker threads: dequeue, journal, apply, checkpoint.

One :class:`Worker` incarnation serves the sessions sharded onto its
slot.  Its lifecycle:

1. **Restore** — for each assigned session, rebuild the live
   :class:`~repro.monitor.multiplex.MonitorGroup` from the last
   checkpoint plus a deterministic journal replay (see
   :mod:`repro.service.session`).
2. **Serve** — round-robin over the sessions (sorted by id, so the
   schedule is deterministic given queue contents), popping bounded
   batches, journaling each entry *before* applying it, and cutting a
   checkpoint every ``checkpoint_every`` journaled entries.
3. **Crash** — any exception (including an injected
   :class:`WorkerKilled` from the chaos harness) reports to the
   supervisor's ``on_crash`` callback, which bumps the epoch and starts
   a replacement incarnation.  The **epoch fence** inside the apply loop
   guarantees a lingering thread of a dead incarnation can never touch a
   session again.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from repro.obs import STATE, registry
from repro.obs.progress import tracker
from repro.service.session import Session

__all__ = ["Worker", "WorkerKilled"]


class WorkerKilled(RuntimeError):
    """Injected crash (chaos harness / tests)."""


class Worker:
    """One worker incarnation (a daemon thread) for one slot.

    Args:
        slot: The shard index this incarnation serves.
        epoch: Incarnation number; sessions only accept applies from
            their current epoch.
        sessions_provider: Returns the sessions currently sharded onto
            the slot (the supervisor snapshots its routing table under
            its own lock) — read every scheduling round, so sessions
            opened after the incarnation started are adopted lazily.
        on_crash: ``callback(worker, exc)`` invoked from the dying
            thread; the supervisor restarts the slot from checkpoints.
        checkpoint_sink: Optional ``callback(session, doc)`` invoked
            (outside the hot loop, inside the session lock) after each
            periodic checkpoint — the supervisor persists it to disk.
        batch: Max entries applied per session per scheduling round.
    """

    def __init__(
        self,
        slot: int,
        epoch: int,
        sessions_provider: Callable[[], List[Session]],
        on_crash: Callable[["Worker", BaseException], None],
        checkpoint_sink: Optional[Callable[[Session, Dict[str, Any]], None]] = None,
        batch: int = 32,
    ) -> None:
        self.slot = slot
        self.epoch = epoch
        self._sessions_provider = sessions_provider
        self._on_crash = on_crash
        self._checkpoint_sink = checkpoint_sink
        self._batch = batch
        self._killed = False
        self._stopping = False
        self._wake = threading.Condition()
        self.ready = threading.Event()
        self.crashed: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-service-w{slot}e{epoch}",
            daemon=True,
        )

    # ------------------------------------------------------------------
    # Lifecycle (supervisor-facing)
    # ------------------------------------------------------------------
    def start(self) -> None:
        for session in self._my_sessions():
            session.queue.set_wakeup(self.wake)
        self._thread.start()

    def wake(self) -> None:
        with self._wake:
            self._wake.notify_all()

    def kill(self) -> None:
        """Inject a crash: the thread dies at the next loop boundary."""
        self._killed = True
        self.wake()

    def stop(self) -> None:
        """Graceful stop: exit once requested (drain is supervisor-led)."""
        self._stopping = True
        self.wake()

    def join(self, timeout_s: float = 5.0) -> None:
        self._thread.join(timeout_s)

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    # ------------------------------------------------------------------
    # Thread body
    # ------------------------------------------------------------------
    def _my_sessions(self) -> List[Session]:
        """Deterministic serving order over the slot's current sessions."""
        return sorted(
            self._sessions_provider(), key=lambda s: s.config.session_id
        )

    def _run(self) -> None:
        try:
            for session in self._my_sessions():
                self._restore(session)
            self.ready.set()
            heartbeat = tracker("service.apply", total=None, check_every=64)
            while not self._stopping:
                if self._killed:
                    raise WorkerKilled(f"worker slot {self.slot} killed")
                applied = 0
                for session in self._my_sessions():
                    applied += self._apply_batch(session)
                    if self._killed:
                        raise WorkerKilled(
                            f"worker slot {self.slot} killed"
                        )
                if applied:
                    heartbeat.step(applied)
                else:
                    with self._wake:
                        if not (self._stopping or self._killed):
                            self._wake.wait(0.05)
        except BaseException as exc:  # noqa: BLE001 - supervised boundary
            self.crashed = exc
            self.ready.set()
            self._on_crash(self, exc)

    def _restore(self, session: Session) -> None:
        with session.lock:
            if session.epoch != self.epoch:
                return
            replayed = session.restore_live_group()
            if replayed and STATE.enabled:
                registry().counter(
                    "monitor.service.journal_replayed"
                ).inc(replayed)

    def _apply_batch(self, session: Session) -> int:
        """Apply up to ``batch`` entries; returns how many were applied."""
        applied = 0
        while applied < self._batch:
            if self._killed:
                break
            with session.lock:
                if session.group is None and session.epoch == self.epoch:
                    # Adopted after start (or fenced and re-assigned to
                    # this epoch): rebuild before serving.
                    self._restore(session)
                if session.epoch != self.epoch:
                    # Fenced: this incarnation was declared dead while
                    # we were scheduled.  Drop the in-flight work.
                    session.counts["stale_epoch_drops"] += 1
                    if STATE.enabled:
                        registry().counter(
                            "monitor.service.stale_epoch_drops"
                        ).inc()
                    break
                entry = session.queue.pop()
                if entry is None:
                    session.settled.notify_all()
                    break
                # Write-ahead: journal before apply, so a crash between
                # the two replays the entry instead of losing it.
                session.seq += 1
                session.journal.append(entry)
                session.apply_entry(entry, seq=session.seq, replay=False)
                applied += 1
                if STATE.enabled:
                    registry().counter("monitor.service.applied").inc()
                if (
                    session.seq - session.checkpoint_seq
                    >= session.config.checkpoint_every
                    or entry["kind"] == "finish"
                ):
                    doc = session.take_checkpoint()
                    if STATE.enabled:
                        registry().counter(
                            "monitor.service.checkpoints"
                        ).inc()
                    if self._checkpoint_sink is not None:
                        self._checkpoint_sink(session, doc)
                if len(session.queue) == 0:
                    session.settled.notify_all()
        return applied
