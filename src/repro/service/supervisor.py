"""The multi-session monitoring service: sharding, supervision, drain.

:class:`MonitorService` hosts many concurrent monitored computations
(sessions), sharding them round-robin across a pool of supervised
:class:`~repro.service.worker.Worker` threads.  Robustness machinery:

* **Backpressure** per session (``block`` / ``reject`` / ``degrade``;
  see :mod:`repro.service.backpressure`).
* **Supervised restart**: a crashed worker's slot is restarted with a
  bumped epoch; sessions are rebuilt from ``checkpoint + journal`` and
  stale in-flight applies from the dead incarnation are epoch-fenced.
* **Dead-letter quarantine**: a poison observation is isolated to its
  session; co-tenants of the same worker never notice.
* **Graceful drain**: stop intake, settle queues, finish every open
  session, flush final verdicts + checkpoints + ledger records.

Metrics are ``monitor.service.*`` (docs/OBSERVABILITY.md); one
``repro-run-v1`` ledger record (``command: "session"``) is appended per
session lifecycle when a ledger path is configured.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import STATE, registry
from repro.service.backpressure import validate_policy
from repro.service.errors import (
    ServiceDraining,
    ServiceError,
    SessionRejected,
    UnknownSession,
)
from repro.service.session import Session, SessionConfig
from repro.service.worker import Worker

__all__ = ["MonitorService"]

#: Hard cap on restarts per slot — a crash-looping restore must not spin
#: forever (far above anything a healthy deployment reaches).
_MAX_RESTARTS_PER_SLOT = 1000


class _Slot:
    """One shard: its current worker incarnation and its sessions."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.epoch = 0
        self.worker: Optional[Worker] = None
        self.sessions: Dict[str, Session] = {}
        self.restarts = 0


class MonitorService:
    """A supervised pool of workers hosting monitor sessions.

    Args:
        workers: Worker (shard) count.
        checkpoint_dir: Directory for on-disk session checkpoints
            (``<session>.ckpt.json``, written atomically); None keeps
            checkpoints in memory only.
        checkpoint_every: Default journal entries between checkpoints.
        default_policy: Backpressure policy for sessions that don't pick
            one.
        default_queue_capacity: Ingest-queue bound for such sessions.
        block_timeout_s: How long the ``block`` policy may stall one
            submit before failing it.
        ledger_path: Run-ledger file for per-session lifecycle records
            (None disables).
    """

    def __init__(
        self,
        workers: int = 2,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 64,
        default_policy: str = "block",
        default_queue_capacity: int = 256,
        block_timeout_s: float = 10.0,
        ledger_path: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self._lock = threading.RLock()
        self._checkpoint_dir = checkpoint_dir
        self._checkpoint_every = int(checkpoint_every)
        self._default_policy = validate_policy(default_policy)
        self._default_queue_capacity = int(default_queue_capacity)
        self._block_timeout_s = float(block_timeout_s)
        self._ledger_path = ledger_path
        self._draining = False
        self._stopped = False
        self._sessions: Dict[str, Session] = {}
        self._slots = [_Slot(i) for i in range(workers)]
        self._next_slot = 0
        self.counts: Dict[str, int] = {
            "sessions_opened": 0,
            "sessions_closed": 0,
            "worker_crashes": 0,
            "worker_restarts": 0,
            "drains": 0,
        }
        for slot in self._slots:
            self._start_worker(slot)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._slots)

    def _start_worker(self, slot: _Slot) -> None:
        """Spawn a new incarnation for the slot (caller holds no locks or
        the service lock; sessions' epochs are bumped first)."""
        worker = Worker(
            slot=slot.index,
            epoch=slot.epoch,
            sessions_provider=lambda: self._slot_sessions(slot.index),
            on_crash=self._on_worker_crash,
            checkpoint_sink=self._persist_checkpoint,
        )
        slot.worker = worker
        worker.start()

    def _slot_sessions(self, slot_index: int) -> List[Session]:
        with self._lock:
            return list(self._slots[slot_index].sessions.values())

    def _on_worker_crash(self, worker: Worker, exc: BaseException) -> None:
        """Supervision: runs on the dying worker's thread."""
        with self._lock:
            if self._stopped:
                return
            slot = self._slots[worker.slot]
            if slot.worker is not worker or slot.epoch != worker.epoch:
                return  # an already-replaced incarnation died late
            self.counts["worker_crashes"] += 1
            if STATE.enabled:
                registry().counter("monitor.service.worker_crashes").inc()
            slot.restarts += 1
            if slot.restarts > _MAX_RESTARTS_PER_SLOT:
                print(
                    f"repro: service worker slot {slot.index} exceeded "
                    f"{_MAX_RESTARTS_PER_SLOT} restarts; giving up: {exc}",
                    file=sys.stderr,
                )
                return
            slot.epoch += 1
            # Fence: from this instant any lingering thread of the dead
            # incarnation fails the epoch check and drops its work.
            for session in slot.sessions.values():
                with session.lock:
                    session.epoch = slot.epoch
                    session.group = None
                    session.counts["restarts"] += 1
            self.counts["worker_restarts"] += 1
            if STATE.enabled:
                registry().counter("monitor.service.worker_restarts").inc()
            self._start_worker(slot)

    def kill_worker(self, slot_index: int) -> None:
        """Chaos hook: crash one worker incarnation mid-stream."""
        with self._lock:
            worker = self._slots[slot_index].worker
        if worker is not None:
            worker.kill()

    def _persist_checkpoint(
        self, session: Session, doc: Dict[str, Any]
    ) -> None:
        if self._checkpoint_dir is None:
            return
        import os

        from repro.monitor import recovery

        path = os.path.join(
            self._checkpoint_dir, f"{session.config.session_id}.ckpt.json"
        )
        os.makedirs(self._checkpoint_dir, exist_ok=True)
        try:
            recovery.write_checkpoint_text(
                path, session.checkpoint_text(doc)
            )
        except OSError as exc:
            print(
                f"repro: warning: could not write checkpoint {path}: {exc}",
                file=sys.stderr,
            )

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_session(
        self,
        session_id: str,
        num_processes: int,
        queries: Sequence[Tuple[str, Sequence[int]]],
        lossy: bool = True,
        policy: Optional[str] = None,
        queue_capacity: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Open a session and shard it onto a worker slot."""
        config = SessionConfig(
            session_id=session_id,
            num_processes=num_processes,
            queries=queries,
            lossy=lossy,
            policy=policy if policy is not None else self._default_policy,
            queue_capacity=(
                queue_capacity
                if queue_capacity is not None
                else self._default_queue_capacity
            ),
            checkpoint_every=(
                checkpoint_every
                if checkpoint_every is not None
                else self._checkpoint_every
            ),
        )
        with self._lock:
            if self._draining:
                raise ServiceDraining("open_session")
            if session_id in self._sessions:
                raise ServiceError(f"session {session_id!r} already open")
            session = Session(config)
            slot = self._slots[self._next_slot % len(self._slots)]
            self._next_slot += 1
            session.epoch = slot.epoch
            slot.sessions[session_id] = session
            self._sessions[session_id] = session
            worker = slot.worker
            self.counts["sessions_opened"] += 1
            if STATE.enabled:
                registry().counter("monitor.service.sessions_opened").inc()
        # The running incarnation adopts the session lazily (next
        # scheduling round); it only needs the wakeup hook now.
        if worker is not None:
            session.queue.set_wakeup(worker.wake)
            worker.wake()
        return {
            "session": session_id,
            "slot": slot.index,
            "epoch": session.epoch,
            "policy": config.policy,
            "queue_capacity": config.queue_capacity,
            "queries": [list(name_procs) for name_procs in config.queries],
        }

    def _get_session(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSession(session_id)
        return session

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def submit(
        self, session_id: str, observations: Sequence[Any]
    ) -> Dict[str, int]:
        """Enqueue a batch of wire observations for a session.

        Returns ``{"accepted": n, "shed": m, "dead_lettered": k}``.

        Raises:
            SessionRejected: ``reject`` policy, queue full (carries the
                partial-accept count and a retry hint).
            ServiceDraining: intake is closed.
            UnknownSession: no such session.
            ServiceError: ``block`` policy stalled past the timeout, or
                the session is already finished/closed.
        """
        with self._lock:
            if self._draining:
                raise ServiceDraining("submit")
        session = self._get_session(session_id)
        accepted = shed = dead = 0
        for obs in observations:
            with session.lock:
                if session.closed or session.finish_requested:
                    raise ServiceError(
                        f"session {session_id!r} is finished; "
                        "no further observations"
                    )
                reason = session.validate_observation(obs)
                if reason is not None:
                    session.dead_letters.append(
                        {
                            "stage": "validate",
                            "seq": None,
                            "reason": reason,
                            "observation": _jsonable_obs(obs),
                        }
                    )
                    session.counts["dead_letters"] += 1
                    if STATE.enabled:
                        registry().counter(
                            "monitor.service.dead_letters"
                        ).inc()
                    dead += 1
                    continue
                policy = session.config.policy
                degraded = session.degrade_requested
            process, index, clock, truth = obs
            entry = {
                "kind": "obs",
                "process": process,
                "index": index,
                "clock": list(clock),
                "truth": truth,
            }
            # Enqueue OUTSIDE the session lock: the worker needs that
            # lock to drain the queue we may be waiting on.
            if policy == "block":
                ok, waited = session.queue.put_blocking(
                    entry, self._block_timeout_s
                )
                if waited:
                    with session.lock:
                        session.counts["backpressure_waits"] += 1
                    if STATE.enabled:
                        registry().counter(
                            "monitor.service.backpressure_waits"
                        ).inc()
                if not ok:
                    raise ServiceError(
                        f"session {session_id!r}: ingest blocked longer "
                        f"than {self._block_timeout_s:.1f}s"
                    )
            elif policy == "reject":
                if not session.queue.try_put(entry):
                    with session.lock:
                        session.counts["rejected"] += 1
                    if STATE.enabled:
                        registry().counter(
                            "monitor.service.rejections"
                        ).inc()
                    raise SessionRejected(
                        session_id,
                        retry_after_s=self._retry_after_s(session),
                        accepted=accepted,
                        dead_lettered=dead,
                    )
            else:  # degrade
                if not session.queue.try_put(entry):
                    if not degraded:
                        with session.lock:
                            if not session.degrade_requested:
                                session.degrade_requested = True
                                session.queue.put_control(
                                    {"kind": "degrade"}
                                )
                                if STATE.enabled:
                                    registry().counter(
                                        "monitor.service.degraded_sessions"
                                    ).inc()
                    with session.lock:
                        session.counts["shed"] += 1
                    if STATE.enabled:
                        registry().counter("monitor.service.shed").inc()
                    shed += 1
                    continue
            accepted += 1
            with session.lock:
                session.counts["ingested"] += 1
            if STATE.enabled:
                registry().counter("monitor.service.ingested").inc()
        return {"accepted": accepted, "shed": shed, "dead_lettered": dead}

    def _retry_after_s(self, session: Session) -> float:
        """Deterministic retry hint: scale with queue pressure."""
        depth = len(session.queue)
        return 0.01 + 0.002 * depth

    def finish_session(self, session_id: str) -> None:
        """Declare end-of-stream: verdicts finalize once queues settle."""
        session = self._get_session(session_id)
        with session.lock:
            if session.finish_requested:
                return
            session.finish_requested = True
            session.queue.put_control({"kind": "finish"})

    def session_report(self, session_id: str) -> Dict[str, Any]:
        """Non-blocking snapshot of one session."""
        return self._get_session(session_id).report()

    def _wait_settled(self, session: Session, timeout_s: float) -> None:
        """Block until the queue is empty and any finish was applied."""
        deadline = time.perf_counter() + timeout_s
        with session.lock:
            while True:
                done = len(session.queue) == 0 and (
                    not session.finish_requested or session.finished
                )
                if done:
                    return
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise ServiceError(
                        f"session {session.config.session_id!r} did not "
                        f"settle within {timeout_s:.1f}s "
                        f"(queue depth {len(session.queue)})"
                    )
                session.settled.wait(min(remaining, 0.1))

    def close_session(
        self, session_id: str, timeout_s: float = 30.0
    ) -> Dict[str, Any]:
        """Finish, settle, checkpoint, record, and report one session."""
        session = self._get_session(session_id)
        self.finish_session(session_id)
        self._wait_settled(session, timeout_s)
        with session.lock:
            if not session.closed:
                session.closed = True
                session.closed_wall_ms = (
                    time.perf_counter() - session.opened_at
                ) * 1000.0
                if session.group is not None:
                    doc = session.take_checkpoint()
                    self._persist_checkpoint(session, doc)
                first_close = True
            else:
                first_close = False
        if first_close:
            with self._lock:
                self.counts["sessions_closed"] += 1
            if STATE.enabled:
                registry().counter("monitor.service.sessions_closed").inc()
                if session.ttd_ms is not None:
                    registry().histogram(
                        "monitor.service.time_to_detection.ms"
                    ).record(session.ttd_ms)
                registry().gauge("monitor.service.queue_high_water").set(
                    session.queue.high_water
                )
            self._record_session_lifecycle(session)
        return session.report()

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------
    def _record_session_lifecycle(self, session: Session) -> None:
        """Append one ``command: "session"`` run-ledger record."""
        if self._ledger_path is None:
            return
        from repro.obs import ledger

        report = session.report()
        verdicts = report["verdicts"]
        detected = sum(1 for v in report["detected"].values() if v)
        stats: Dict[str, Any] = dict(report["counts"])
        stats["queries"] = len(verdicts)
        stats["detected_queries"] = detected
        if session.ttd_ms is not None:
            stats["ttd_ms"] = round(session.ttd_ms, 3)
        # Wall-clock timestamp is record metadata, never control flow.
        started = time.gmtime()  # repro: lint-ignore[DET102]
        record = {
            "command": "session",
            "argv": [session.config.session_id],
            "args_fingerprint": ledger.fingerprint_args(
                "session", [session.config.session_id]
            ),
            "started_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", started),
            "wall_ms": session.closed_wall_ms or 0.0,
            "cpu_ms": 0.0,
            "exit_code": 0,
            "verdict": _summary_verdict(verdicts),
            "trace": None,
            "stats": stats,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "spans": [],
            "extra": {
                "session": session.config.session_id,
                "policy": session.config.policy,
                "degraded": report["degraded"],
                "epoch": report["epoch"],
                "verdicts": verdicts,
            },
        }
        try:
            ledger.append_record(self._ledger_path, record)
        except OSError as exc:
            registry().counter("runs.write_errors").inc()
            print(
                f"repro: warning: could not append session record to "
                f"{self._ledger_path}: {exc}",
                file=sys.stderr,
            )

    # ------------------------------------------------------------------
    # Introspection / drain
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service-level counters and per-slot health."""
        with self._lock:
            slots = [
                {
                    "slot": slot.index,
                    "epoch": slot.epoch,
                    "restarts": slot.restarts,
                    "sessions": len(slot.sessions),
                    "alive": bool(slot.worker and slot.worker.is_alive()),
                }
                for slot in self._slots
            ]
            open_sessions = sum(
                1 for s in self._sessions.values() if not s.closed
            )
            return {
                "workers": len(self._slots),
                "draining": self._draining,
                "sessions": len(self._sessions),
                "open_sessions": open_sessions,
                "counts": dict(self.counts),
                "slots": slots,
            }

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self, timeout_s: float = 30.0) -> Dict[str, Any]:
        """Graceful shutdown: stop intake, settle, flush, stop workers.

        Returns a summary: sessions closed, final verdict counts.
        """
        with self._lock:
            if self._draining:
                raise ServiceError("service is already draining")
            self._draining = True
            session_ids = sorted(self._sessions)
        self.counts["drains"] += 1
        if STATE.enabled:
            registry().counter("monitor.service.drains").inc()
        closed = 0
        verdict_tally: Dict[str, int] = {}
        for session_id in session_ids:
            session = self._sessions[session_id]
            if session.closed:
                continue
            report = self.close_session(session_id, timeout_s=timeout_s)
            closed += 1
            for verdict in report["verdicts"].values():
                verdict_tally[verdict] = verdict_tally.get(verdict, 0) + 1
        with self._lock:
            self._stopped = True
            workers = [slot.worker for slot in self._slots]
        for worker in workers:
            if worker is not None:
                worker.stop()
        for worker in workers:
            if worker is not None:
                worker.join()
        return {
            "sessions_closed": closed,
            "verdicts": {k: verdict_tally[k] for k in sorted(verdict_tally)},
            "counts": dict(self.counts),
        }

    def shutdown(self, timeout_s: float = 30.0) -> Optional[Dict[str, Any]]:
        """Drain if not already drained; always stop the worker pool."""
        try:
            return self.drain(timeout_s=timeout_s)
        except ServiceError:
            with self._lock:
                self._stopped = True
                workers = [slot.worker for slot in self._slots]
            for worker in workers:
                if worker is not None:
                    worker.stop()
                    worker.join()
            return None


def _jsonable_obs(obs: Any) -> Any:
    try:
        import json

        json.dumps(obs)
        return obs
    except (TypeError, ValueError):
        return repr(obs)


def _summary_verdict(verdicts: Dict[str, str]) -> str:
    """One word for the ledger: the session's strongest outcome."""
    ranking = (
        "detected",
        "detected_despite_gaps",
        "impossible",
        "inconclusive",
        "undecided",
    )
    present = set(verdicts.values())
    for verdict in ranking:
        if verdict in present:
            return verdict
    return "empty"
