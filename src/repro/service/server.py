"""Server side of the monitoring service wire protocol.

Requests and responses are single JSON objects, one per line.  A request
carries ``{"op": ..., ...}``; a response is ``{"ok": true, ...}`` or
``{"ok": false, "code": ..., "error": ...}``.  The full op table lives
in ``docs/SERVICE.md``.

:func:`handle_request` is the transport-independent dispatcher — the
TCP server and :class:`~repro.service.client.LocalTransport` both call
it, so the in-process chaos harness exercises exactly the protocol
surface a remote ``repro feed`` does.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Any, Dict, Optional

from repro.service.errors import (
    ServiceDraining,
    ServiceError,
    SessionRejected,
    UnknownSession,
)
from repro.service.supervisor import MonitorService

__all__ = ["ServiceServer", "handle_request"]

#: Protocol revision reported by ``ping``.
PROTOCOL = "repro-service-proto-v1"


def _error(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "ok": False,
        "code": code,
        "error": message,
    }
    response.update(extra)
    return response


def handle_request(
    service: MonitorService, payload: Any
) -> Dict[str, Any]:
    """Dispatch one decoded request against the service.

    Never raises for protocol-level failures — every
    :class:`ServiceError` subclass maps to an ``ok: false`` response the
    client-side submitter knows how to interpret.
    """
    if not isinstance(payload, dict):
        return _error("bad-request", "request must be a JSON object")
    op = payload.get("op")
    try:
        if op == "ping":
            return {
                "ok": True,
                "protocol": PROTOCOL,
                "draining": service.draining,
            }
        if op == "open":
            queries = payload.get("queries")
            if not isinstance(queries, list):
                return _error(
                    "bad-request",
                    "open needs queries: [[name, [p, ...]], ...]",
                )
            info = service.open_session(
                session_id=str(payload.get("session", "")),
                num_processes=int(payload.get("num_processes", 0)),
                queries=[(q[0], q[1]) for q in queries],
                lossy=bool(payload.get("lossy", True)),
                policy=payload.get("policy"),
                queue_capacity=payload.get("queue_capacity"),
                checkpoint_every=payload.get("checkpoint_every"),
            )
            info["ok"] = True
            return info
        if op == "observe":
            observations = payload.get("observations")
            if not isinstance(observations, list):
                return _error(
                    "bad-request", "observe needs an observations list"
                )
            result = service.submit(
                str(payload.get("session", "")), observations
            )
            return {"ok": True, **result}
        if op == "finish":
            service.finish_session(str(payload.get("session", "")))
            return {"ok": True}
        if op == "status":
            report = service.session_report(
                str(payload.get("session", ""))
            )
            return {"ok": True, "report": report}
        if op == "close":
            report = service.close_session(
                str(payload.get("session", "")),
                timeout_s=float(payload.get("timeout_s", 30.0)),
            )
            return {"ok": True, "report": report}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "shutdown":
            return {"ok": True, "shutdown": True}
        return _error("bad-request", f"unknown op {op!r}")
    except SessionRejected as exc:
        return _error(
            "rejected",
            str(exc),
            retry_after_s=exc.retry_after_s,
            accepted=exc.accepted,
            dead_lettered=exc.dead_lettered,
        )
    except ServiceDraining as exc:
        return _error("draining", str(exc))
    except UnknownSession as exc:
        return _error("unknown-session", str(exc))
    except (ServiceError, ValueError, TypeError, KeyError, IndexError) as exc:
        return _error("error", str(exc))


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        server: "_TCPServer" = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                response = _error("bad-request", "request is not JSON")
            else:
                response = handle_request(server.service, payload)
            line = json.dumps(response, sort_keys=True) + "\n"
            try:
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
            except OSError:
                return
            if response.get("shutdown"):
                server.shutdown_requested.set()
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address, service: MonitorService) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.shutdown_requested = threading.Event()


class ServiceServer:
    """The TCP front end of a :class:`MonitorService`.

    Binds on construction (``port=0`` picks an ephemeral port, exposed
    via :attr:`port`), serves on a daemon thread after :meth:`start`.
    """

    def __init__(
        self,
        service: MonitorService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = _TCPServer((host, port), service)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def shutdown_requested(self) -> threading.Event:
        """Set when a client issued the ``shutdown`` op."""
        return self._server.shutdown_requested

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-accept",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
