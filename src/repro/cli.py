"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``detect`` — run possibly/definitely detection of a predicate (in the
  :mod:`repro.predicates.parser` language) against a JSON trace;
* ``classify`` — statically classify an opaque Python predicate
  (``lambda cut: ...``): print the inferred class certificate and the
  engine detection would dispatch to (see ``docs/ANALYSIS.md``);
* ``profile`` — repeat a detection query under the observability layer
  and report latency percentiles plus engine counters;
* ``generate`` — produce a seeded random trace as JSON;
* ``simulate`` — run one of the bundled protocols and dump its trace;
* ``fuzz`` — differential-fuzz every registered engine against the
  brute-force oracles; shrink and save any disagreement
  (see ``docs/TESTING.md``);
* ``lint`` — run the static-analysis suite (determinism lint, protocol
  race detector, instrumentation-conformance checker) over source
  paths (see ``docs/ANALYSIS.md``);
* ``serve`` — host the resilient multi-session monitoring service:
  supervised workers, bounded ingest queues with backpressure,
  checkpoint-based crash restart, graceful drain on SIGTERM
  (see ``docs/SERVICE.md``);
* ``feed`` — stream a trace's observations to a running ``serve`` over
  the line-JSON protocol, with retry/backoff/jitter and an optional
  per-call deadline;
* ``info`` — structural summary of a trace (processes, events, messages,
  lattice size if small enough);
* ``runs`` — inspect the run ledger: every other command appends one
  ``repro-run-v1`` record to ``.repro/runs.jsonl`` (``--runs-ledger`` /
  ``REPRO_RUNS`` override the path, ``REPRO_RUNS=off`` or
  ``--no-runs-ledger`` disable it); ``runs list|show|last|diff``
  read it back (see ``docs/RUNS.md``).

Long detections can be watched and bounded: ``detect --progress``
(also ``fuzz --progress``) prints rate-limited ``progress:`` ticks to
stderr, and ``detect --deadline-ms N`` turns a blown budget into a
clean ``inconclusive`` verdict with exit code 7 instead of a hang.

Examples::

    python -m repro simulate token-ring --processes 5 --seed 1 -o ring.json
    python -m repro simulate token-ring --faults plan.json -o lossy.json
    python -m repro simulate lock-server --variant crash-restart -o mx.json
    python -m repro detect ring.json "cs@1 & cs@3"
    python -m repro detect ring.json "cs@1 & cs@3" --profile
    python -m repro detect ring.json "(a@0 | a@1) & (b@2 | b@3)" --parallel 4
    python -m repro detect ring.json "count(token) >= 2" --modality definitely
    python -m repro classify ring.json \
        "lambda cut: cut.value(1, 'cs') and cut.value(3, 'cs')"
    python -m repro profile ring.json "cs@1 & cs@3" --repeat 20
    python -m repro generate --processes 4 --events 10 --bool x -o random.json
    python -m repro fuzz --seed 7 --iterations 100
    python -m repro fuzz --seed 7 --time-budget 30 --corpus tests/corpus
    python -m repro info random.json
    python -m repro detect ring.json "cs@1 & cs@3" --progress --deadline-ms 5000
    python -m repro runs list
    python -m repro runs diff prev last
    python -m repro serve --port 0 --workers 4 --checkpoint-dir .repro/ckpt
    python -m repro feed mx.json --port 7007 --query "lock=2,3" \
        --variable holds_lock --deadline-ms 5000

Exit codes: 0 = success (``detect``: predicate holds; ``fuzz``: all
engines agreed; ``lint``: no findings; ``classify``: a validated
certificate), 1 = ``detect`` ran but the predicate does not hold,
``fuzz`` found a disagreement, ``lint`` reported findings, or
``classify`` found the predicate unclassifiable (or differential
validation rejected the certificate), 2 = usage or predicate-syntax
error,
3 = unreadable/malformed trace, 4 = simulation or fault-plan error,
5 = monitor error, 6 = lint usage/internal error (unknown rule or path,
unreadable canonical-key docs), 7 = ``--deadline-ms`` expired before a
verdict (``detect`` and ``feed`` print an ``inconclusive`` payload with
partial progress), 8 = monitoring-service error (``serve``/``feed``:
unreachable server, rejected session, drain refused the request).
Every error prints a one-line ``repro: <message>`` diagnostic to stderr
instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.computation import count_consistent_cuts
from repro.detection import detect
from repro.predicates import Modality
from repro.predicates.parser import parse_predicate
from repro.trace import (
    BoolVar,
    UnitWalkVar,
    dump_computation,
    load_computation,
    random_computation,
)

__all__ = ["main"]


def _progress_interval() -> float:
    """Sink rate limit in seconds (REPRO_PROGRESS_INTERVAL_MS override)."""
    return float(os.environ.get("REPRO_PROGRESS_INTERVAL_MS", "250")) / 1000.0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.obs.ledger import annotate
    from repro.obs.progress import (
        DeadlineExceeded,
        progress_context,
        stderr_sink,
    )

    computation = load_computation(args.trace)
    annotate(trace=args.trace)
    predicate = parse_predicate(
        args.predicate, num_processes=computation.num_processes
    )
    modality = Modality(args.modality)
    from contextlib import nullcontext

    sink = stderr_sink if args.progress else None
    prog_ctx = (
        progress_context(
            sink=sink,
            deadline_ms=args.deadline_ms,
            interval_s=_progress_interval(),
        )
        if sink is not None or args.deadline_ms is not None
        else nullcontext()
    )
    try:
        if args.profile:
            from repro import obs

            with prog_ctx, obs.Capture() as cap:
                result = detect(
                    computation,
                    predicate,
                    modality,
                    parallel=args.parallel,
                    slice=not args.no_slice,
                    engine=args.engine,
                    infer=not args.no_infer,
                )
            print("── span tree ──", file=sys.stderr)
            print(obs.format_span_tree(cap.roots), file=sys.stderr)
            print("── metrics ──", file=sys.stderr)
            print(obs.format_metrics(cap.registry.snapshot()), file=sys.stderr)
            annotate(spans=[root.to_dict() for root in cap.roots])
        else:
            with prog_ctx:
                result = detect(
                    computation,
                    predicate,
                    modality,
                    parallel=args.parallel,
                    slice=not args.no_slice,
                    engine=args.engine,
                    infer=not args.no_infer,
                )
    except DeadlineExceeded as exc:
        payload = {
            "predicate": predicate.description(),
            "modality": modality.value,
            "holds": None,
            "verdict": "inconclusive",
            "deadline_ms": exc.deadline_ms,
            "progress": {
                "loop": exc.name,
                "done": exc.done,
                "total": exc.total,
                "elapsed_ms": round(exc.elapsed_ms, 3),
            },
        }
        print(json.dumps(payload, indent=2))
        annotate(
            verdict="inconclusive",
            stats={"deadline_loop": exc.name, "deadline_done": exc.done},
        )
        return 7
    annotate(
        verdict="holds" if result.holds else "not-holds",
        stats={k: _jsonable(v) for k, v in result.stats.items()},
    )
    payload = {
        "predicate": predicate.description(),
        "modality": modality.value,
        "holds": result.holds,
        "algorithm": result.algorithm,
        "stats": {k: _jsonable(v) for k, v in result.stats.items()},
    }
    if args.count_witnesses:
        from repro.detection import count_witnesses

        payload["witness_count"] = count_witnesses(computation, predicate)
    if result.witness is not None:
        payload["witness_frontier"] = list(result.witness.frontier)
        if args.show_witness_values:
            payload["witness_values"] = [
                dict(result.witness.last_event(p).values)
                for p in range(computation.num_processes)
            ]
    print(json.dumps(payload, indent=2))
    return 0 if result.holds else 1


def _compile_python_predicate(source: str):
    """Compile a ``lambda cut: ...`` source string into a callable.

    A bare body expression (``cut.value(0, 'x') and ...``) is accepted
    too and wrapped into a one-cut lambda.  The compiled function carries
    the source as ``__repro_source__`` so the classifier can analyze it
    without :func:`inspect.getsource`.
    """
    import ast

    from repro.predicates import PredicateError

    try:
        body = ast.parse(source, mode="eval").body
    except SyntaxError as exc:
        raise PredicateError(
            f"cannot compile predicate source: {exc}"
        ) from exc
    if not isinstance(body, ast.Lambda):
        source = f"lambda cut: {source}"
    try:
        code = compile(source, "<classify>", "eval")
    except SyntaxError as exc:
        raise PredicateError(
            f"cannot compile predicate source: {exc}"
        ) from exc
    try:
        fn = eval(code)  # noqa: S307 - the user's own predicate source
    except Exception as exc:
        raise PredicateError(
            f"predicate source failed to evaluate: {exc}"
        ) from exc
    if not callable(fn):
        raise PredicateError(
            "predicate source must evaluate to a callable of one cut"
        )
    try:
        fn.__repro_source__ = source
    except AttributeError:
        pass  # builtins reject attributes; getsource will fail precisely
    return fn


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.analysis.classify import Unclassifiable, classify
    from repro.analysis.classify.validate import validate_certificate
    from repro.obs.ledger import annotate
    from repro.predicates.base import FunctionPredicate

    computation = load_computation(args.trace)
    annotate(trace=args.trace)
    fn = _compile_python_predicate(args.python)
    predicate = FunctionPredicate(fn, name=args.python)
    modality = Modality(args.modality)
    try:
        certificate = classify(
            predicate, num_processes=computation.num_processes
        )
    except Unclassifiable as exc:
        payload = {
            "predicate": args.python,
            "classified": False,
            "reason": exc.reason,
            "line": exc.line,
            "engine": "enumeration",
        }
        print(json.dumps(payload, indent=2))
        annotate(verdict="unclassifiable")
        return 1
    validated = validate_certificate(computation, predicate, certificate)
    certificate.validated = validated
    trusted = validated and certificate.actionable
    payload = {
        "predicate": args.python,
        "classified": True,
        "certificate": certificate.to_dict(),
        "engine": (
            certificate.engine_hint(modality) if trusted else "enumeration"
        ),
    }
    print(json.dumps(payload, indent=2))
    annotate(
        verdict="classified" if trusted else "rejected",
        stats={"engine": payload["engine"]},
    )
    return 0 if trusted else 1


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def _cmd_slice(args: argparse.Namespace) -> int:
    from repro.obs.ledger import annotate
    from repro.slicing.dispatch import slice_info

    computation = load_computation(args.trace)
    annotate(trace=args.trace)
    predicate = parse_predicate(
        args.predicate, num_processes=computation.num_processes
    )
    info = slice_info(computation, predicate)
    full_volume = 1
    for p in range(computation.num_processes):
        full_volume *= len(computation.events_of(p))
    payload = {
        "predicate": predicate.description(),
        "useful": info.useful,
        "exact": info.exact,
        "approximation": (
            info.approximation.description()
            if info.approximation is not None
            else None
        ),
        "frontier_space": full_volume,
        "reduction": info.reduction(),
    }
    bounds = info.bounds
    if not info.useful:
        payload["empty"] = None
    elif bounds is None:
        payload["empty"] = True
    else:
        least, greatest = bounds
        box_volume = 1
        for lo, hi in zip(least, greatest):
            box_volume *= hi - lo + 1
        payload.update(
            empty=False,
            least_frontier=list(least),
            greatest_frontier=list(greatest),
            box_volume=box_volume,
        )
        if args.count:
            payload["slice_cuts"] = info.slice.count()
    annotate(stats={"reduction": info.reduction()})
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.ledger import annotate

    computation = load_computation(args.trace)
    annotate(trace=args.trace)
    predicate = parse_predicate(
        args.predicate, num_processes=computation.num_processes
    )
    modality = Modality(args.modality)
    with obs.Capture() as cap:
        result = None
        for _ in range(max(1, args.repeat)):
            result = detect(computation, predicate, modality)
    assert result is not None
    annotate(
        verdict="holds" if result.holds else "not-holds",
        spans=[root.to_dict() for root in cap.roots],
    )
    if args.spans:
        print("── span tree ──", file=sys.stderr)
        print(obs.format_span_tree(cap.roots), file=sys.stderr)
    if args.export == "prometheus":
        print(cap.registry.to_prometheus(), end="")
        return 0
    snapshot = cap.registry.snapshot()
    latency = snapshot["histograms"].get("span.detect.query.ms", {"count": 0})
    payload = {
        "predicate": predicate.description(),
        "modality": modality.value,
        "repeat": max(1, args.repeat),
        "engine": result.algorithm,
        "holds": result.holds,
        "latency_ms": {
            key: latency.get(key)
            for key in ("count", "mean", "p50", "p95", "max")
        },
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": {
            name: summary
            for name, summary in snapshot["histograms"].items()
            if name != "span.detect.query.ms"
        },
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    variables = []
    for name in args.bool or []:
        variables.append(BoolVar(name, density=args.true_density))
    for name in args.walk or []:
        variables.append(UnitWalkVar(name, floor=None))
    computation = random_computation(
        num_processes=args.processes,
        events_per_process=args.events,
        message_density=args.message_density,
        seed=args.seed,
        variables=variables,
    )
    dump_computation(computation, args.output)
    from repro.obs.ledger import annotate

    annotate(
        trace=args.output,
        stats={
            "processes": computation.num_processes,
            "events": computation.total_events(),
        },
    )
    print(
        f"wrote {computation.num_processes} processes, "
        f"{computation.total_events()} events, "
        f"{len(computation.messages)} messages to {args.output}"
    )
    return 0


def _run_simulation(args: argparse.Namespace, faults) -> "object":
    from repro.simulation.protocols import (
        build_crash_restart_lock_scenario,
        build_leader_election,
        build_lock_scenario,
        build_primary_backup,
        build_resource_pool,
        build_token_ring,
    )

    if args.protocol == "token-ring":
        return build_token_ring(
            args.processes,
            hops=args.rounds,
            seed=args.seed,
            rogue_process=args.rogue,
            faults=faults,
        )
    if args.protocol == "leader-election":
        return build_leader_election(
            args.processes, seed=args.seed, faults=faults
        )
    if args.protocol == "primary-backup":
        return build_primary_backup(
            max(1, args.processes - 1),
            args.rounds,
            seed=args.seed,
            faults=faults,
        )
    if args.protocol == "resource-pool":
        return build_resource_pool(
            max(1, args.processes - 1),
            capacity=max(1, args.processes // 3),
            rounds=args.rounds,
            seed=args.seed,
            faults=faults,
        )
    if args.protocol == "lock-server":
        if args.variant == "crash-restart":
            # The deterministic mutual-exclusion-violation demo; an
            # explicit --faults plan overrides the built-in one.
            return build_crash_restart_lock_scenario(
                seed=args.seed, faults=faults
            )
        return build_lock_scenario(
            consistent_order=not args.conflicting_order,
            seed=args.seed,
            faults=faults,
        )
    raise ValueError(args.protocol)  # pragma: no cover - argparse choices


def _cmd_simulate(args: argparse.Namespace) -> int:
    faults = None
    if args.faults is not None:
        from repro.simulation.faults import load_fault_plan

        faults = load_fault_plan(args.faults)
    if args.profile:
        from repro import obs

        with obs.Capture() as cap:
            computation = _run_simulation(args, faults)
        print("── span tree ──", file=sys.stderr)
        print(obs.format_span_tree(cap.roots), file=sys.stderr)
        print("── metrics ──", file=sys.stderr)
        print(obs.format_metrics(cap.registry.snapshot()), file=sys.stderr)
    else:
        computation = _run_simulation(args, faults)
    dump_computation(computation, args.output)
    from repro.obs.ledger import annotate

    annotate(
        trace=args.output,
        stats={
            "processes": computation.num_processes,
            "events": computation.total_events(),
            "messages": len(computation.messages),
        },
    )
    summary = (
        f"{args.protocol}: {computation.num_processes} processes, "
        f"{computation.total_events()} events, "
        f"{len(computation.messages)} messages -> {args.output}"
    )
    fault_meta = computation.meta.get("faults")
    if fault_meta:
        counts = fault_meta.get("counts", {})
        injected = ", ".join(
            f"{kind}={n}" for kind, n in sorted(counts.items())
        ) or "none"
        summary += f" (faults: {injected})"
    print(summary)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.obs.ledger import annotate
    from repro.obs.progress import progress_context, stderr_sink
    from repro.testkit import CorpusCase, FuzzConfig, run_fuzz, save_case

    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        families=args.family or None,
        shrink=not args.no_shrink,
    )
    from contextlib import nullcontext

    sink_ctx = (
        progress_context(sink=stderr_sink, interval_s=_progress_interval())
        if args.progress
        else nullcontext()
    )
    with sink_ctx:
        if args.profile:
            from repro import obs

            with obs.Capture() as cap:
                report = run_fuzz(config)
            print("── metrics ──", file=sys.stderr)
            print(
                obs.format_metrics(cap.registry.snapshot()), file=sys.stderr
            )
        else:
            report = run_fuzz(config)
    annotate(
        verdict="agreed" if report.ok else "disagreed",
        stats={
            "iterations_run": report.iterations_run,
            "findings": len(report.findings),
        },
    )
    for line in report.log_lines():
        print(line)
    if args.corpus is not None and report.findings:
        from repro.testkit import default_registry

        registry = default_registry()
        for finding in report.findings:
            comp = finding.minimized_computation
            pred = finding.minimized_predicate
            oracle = registry.oracle_for(pred, finding.modality)
            if oracle is None or not oracle.applicable(comp, pred):
                print(
                    "repro: no applicable oracle for minimized case of "
                    f"iteration {finding.log.iteration}; not saved",
                    file=sys.stderr,
                )
                continue
            case = CorpusCase(
                name=f"fuzz-seed{args.seed}-iter{finding.log.iteration:04d}",
                pins=(
                    f"{finding.engine_pair[0]} vs {finding.engine_pair[1]} "
                    f"({finding.log.family}, {finding.log.modality})"
                ),
                modality=finding.modality,
                expected=bool(oracle.run(comp, pred)),
                computation=comp,
                predicate=pred,
                provenance={
                    "fuzz_seed": args.seed,
                    "iteration": finding.log.iteration,
                    "instance_seed": finding.log.instance_seed,
                    "family": finding.log.family,
                },
            )
            path = save_case(case, args.corpus)
            print(f"saved minimized counterexample to {path}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import LintConfig, render_json, render_text, run_lint

    docs_paths = None
    if args.docs_root is not None:
        from pathlib import Path

        root = Path(args.docs_root)
        docs_paths = [str(root / "ALGORITHMS.md"), str(root / "OBSERVABILITY.md")]
    config = LintConfig(
        select=_split_rule_ids(args.select),
        ignore=_split_rule_ids(args.ignore),
        docs_paths=docs_paths,
        require_docs=args.require_docs,
    )
    report = run_lint(args.paths, config)
    from repro.obs.ledger import annotate

    annotate(
        verdict="clean" if report.ok else "findings",
        stats={
            "findings": len(report.findings),
            "files_checked": report.files_checked,
        },
    )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


def _split_rule_ids(values) -> list:
    ids = []
    for value in values or []:
        ids.extend(part for part in value.split(",") if part.strip())
    return ids


def _cmd_render(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.viz import computation_to_dot, lattice_to_dot

    computation = load_computation(args.trace)
    if args.what == "computation":
        dot = computation_to_dot(computation, variable=args.variable)
    else:
        predicate = None
        if args.predicate is not None:
            predicate = parse_predicate(
                args.predicate, num_processes=computation.num_processes
            )
        dot = lattice_to_dot(
            computation, predicate=predicate, max_cuts=args.max_cuts
        )
    Path(args.output).write_text(dot)
    from repro.obs.ledger import annotate

    annotate(trace=args.trace)
    print(f"wrote {args.what} DOT to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    computation = load_computation(args.trace)
    if args.deep:
        from repro.analysis import summarize

        info = summarize(computation)
    else:
        info = {
            "processes": computation.num_processes,
            "events": computation.total_events(),
            "messages": len(computation.messages),
            "events_per_process": [
                computation.num_events(p)
                for p in range(computation.num_processes)
            ],
            "variables": sorted(
                {
                    key
                    for event in computation.all_events(include_initial=True)
                    for key in event.values
                }
            ),
        }
    if computation.total_events() <= args.lattice_limit:
        info["consistent_cuts"] = count_consistent_cuts(computation)
    from repro.obs.ledger import annotate

    annotate(
        trace=args.trace,
        stats={
            "processes": computation.num_processes,
            "events": computation.total_events(),
        },
    )
    print(json.dumps(info, indent=2))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs import ledger

    path = ledger.resolve_ledger_path(args.ledger)
    if path is None:
        raise ValueError(
            "run ledger is disabled (REPRO_RUNS=off); pass --ledger PATH"
        )
    records = ledger.read_records(path)
    action = args.action or "list"
    if action == "list":
        limit = getattr(args, "n", None)
        shown = records[-limit:] if limit else records
        for record in shown:
            verdict = record.get("verdict") or "-"
            print(
                f"{record['id']}  {record['started_at']}  "
                f"{record['command']:<9} exit={record['exit_code']} "
                f"verdict={verdict} wall={record['wall_ms']:.1f}ms"
            )
        return 0
    if action in ("show", "last"):
        ref = "last" if action == "last" else args.ref
        record = ledger.resolve_ref(records, ref)
        if getattr(args, "otlp", False):
            from repro.obs.export import otlp_json, span_from_dict

            roots = [span_from_dict(tree) for tree in record["spans"]]
            print(otlp_json(roots, seed=record["id"]))
        else:
            print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    assert action == "diff"
    refs = list(args.refs or [])
    if not refs:
        refs = ["prev", "last"]
    if len(refs) != 2:
        raise ValueError("runs diff takes exactly two run references")
    record_a = ledger.resolve_ref(records, refs[0])
    record_b = ledger.resolve_ref(records, refs[1])
    print(ledger.format_diff(ledger.diff_records(record_a, record_b)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.obs.progress import progress_context, stderr_sink
    from repro.service import MonitorService, ServiceServer

    ledger_path = None
    if not args.no_runs_ledger:
        from repro.obs import ledger

        ledger_path = ledger.resolve_ledger_path(args.runs_ledger)
    from contextlib import nullcontext

    prog_ctx = (
        progress_context(sink=stderr_sink, interval_s=_progress_interval())
        if args.progress
        else nullcontext()
    )
    with prog_ctx:
        service = MonitorService(
            workers=args.workers,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            default_policy=args.policy,
            default_queue_capacity=args.queue_capacity,
            ledger_path=ledger_path,
        )
        server = ServiceServer(service, host=args.host, port=args.port)
        server.start()
        stop = threading.Event()

        def _on_signal(signum, frame):  # noqa: ARG001
            stop.set()

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
        ready = f"repro-serve: ready host={server.host} port={server.port}"
        print(ready, flush=True)
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.host} {server.port}\n")
        while not stop.is_set():
            if server.shutdown_requested.wait(0.2):
                break
        print("repro-serve: draining", file=sys.stderr, flush=True)
        summary = service.drain(timeout_s=args.drain_timeout_s)
        server.stop()
        service.shutdown(timeout_s=1.0)
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _parse_queries(args: argparse.Namespace, num_processes: int):
    """The ``(name, processes)`` list a ``feed`` run monitors."""
    import itertools

    queries = []
    for spec in args.query or []:
        name, eq, procs = spec.partition("=")
        if not eq or not name:
            raise ValueError(
                f"bad --query {spec!r}: expected NAME=p1,p2[,...]"
            )
        try:
            members = [int(p) for p in procs.split(",") if p.strip() != ""]
        except ValueError:
            raise ValueError(
                f"bad --query {spec!r}: process list must be integers"
            ) from None
        if len(members) < 1:
            raise ValueError(f"bad --query {spec!r}: empty process list")
        queries.append((name, members))
    if args.all_pairs:
        for i, j in itertools.combinations(range(num_processes), 2):
            queries.append((f"pair({i},{j})", [i, j]))
    if not queries:
        raise ValueError("feed needs at least one --query or --all-pairs")
    return queries


def _cmd_feed(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.ledger import annotate
    from repro.service import SocketTransport, SubmitDeadline, Submitter
    from repro.service.session import observation_stream, session_id_ok

    computation = load_computation(args.trace)
    annotate(trace=args.trace)
    queries = _parse_queries(args, computation.num_processes)
    monitored = sorted({p for _, procs in queries for p in procs})
    stream = observation_stream(
        computation, monitored, variable=args.variable
    )
    session_id = args.session or Path(args.trace).stem
    if not session_id_ok(session_id):
        session_id = "feed"
    submitter = Submitter(
        SocketTransport(
            host=args.host, port=args.port, timeout_s=args.timeout_s
        ),
        retries=args.retries,
        backoff_s=args.backoff_ms / 1000.0,
        jitter=args.jitter,
        seed=args.seed,
        deadline_s=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None
            else None
        ),
    )
    try:
        submitter.open_session(
            session_id,
            computation.num_processes,
            queries,
            lossy=not args.strict,
            policy=args.policy,
            queue_capacity=args.queue_capacity,
        )
        totals = {"accepted": 0, "shed": 0, "dead_lettered": 0}
        for i in range(0, len(stream), args.batch):
            outcome = submitter.submit(session_id, stream[i:i + args.batch])
            for key in totals:
                totals[key] += outcome[key]
        report = submitter.close_session(session_id)["report"]
    except SubmitDeadline as exc:
        payload = {
            "session": session_id,
            "verdict": "inconclusive",
            "deadline_ms": exc.deadline_ms,
            "elapsed_ms": round(exc.elapsed_ms, 3),
            "attempts": exc.attempts,
            "last_error": exc.last_error,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        annotate(verdict="inconclusive")
        return 7
    payload = {
        "session": session_id,
        "submitted": totals,
        "verdicts": report["verdicts"],
        "witnesses": report["witnesses"],
        "gaps": report["gaps"],
        "dead_letters": report["dead_letters"],
        "counts": report["counts"],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    detected = any(report["detected"].values())
    annotate(
        verdict="detected" if detected else "none-detected",
        stats={"queries": len(queries), "accepted": totals["accepted"]},
    )
    return 0 if detected else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Global predicate detection in distributed computations "
        "(Mittal & Garg, ICDCS 2001).",
    )
    parser.add_argument(
        "--runs-ledger", default=None, metavar="PATH",
        help="append this run's repro-run-v1 record to PATH "
        "(default .repro/runs.jsonl; env REPRO_RUNS overrides, "
        "REPRO_RUNS=off disables; see docs/RUNS.md)",
    )
    parser.add_argument(
        "--no-runs-ledger", action="store_true",
        help="do not record this invocation in the run ledger",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_detect = sub.add_parser("detect", help="detect a predicate on a trace")
    p_detect.add_argument("trace", help="path to a repro-trace-v1 JSON file")
    p_detect.add_argument("predicate", help='e.g. "(x@0 | x@1) & sum(v) == 2"')
    p_detect.add_argument(
        "--modality",
        choices=["possibly", "definitely"],
        default="possibly",
    )
    p_detect.add_argument(
        "--show-witness-values",
        action="store_true",
        help="include per-process variable values at the witness cut",
    )
    p_detect.add_argument(
        "--count-witnesses",
        action="store_true",
        help="also count every satisfying consistent cut (may be slow)",
    )
    p_detect.add_argument(
        "--profile",
        action="store_true",
        help="print the query's span tree and metrics snapshot to stderr",
    )
    p_detect.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="fan combination-sweep engines across N worker processes "
        "(-1 = one per CPU); verdict and witness are unchanged",
    )
    p_detect.add_argument(
        "--progress", action="store_true",
        help="print rate-limited progress ticks to stderr while detecting",
    )
    p_detect.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="give up after MS milliseconds with a clean 'inconclusive' "
        "verdict (exit code 7) instead of running to completion",
    )
    p_detect.add_argument(
        "--engine",
        choices=["auto", "work-optimal"],
        default="auto",
        help="override engine dispatch: 'work-optimal' forces the "
        "round-based conjunctive engine (possibly only)",
    )
    p_detect.add_argument(
        "--no-slice", action="store_true",
        help="disable slice-first pruning of enumeration engines; "
        "verdict and witness guarantees are unchanged (docs/ALGORITHMS.md)",
    )
    p_detect.add_argument(
        "--no-infer", action="store_true",
        help="disable static classification of opaque predicates; "
        "verdicts are unchanged, opaque predicates fall back to "
        "enumeration (docs/ANALYSIS.md)",
    )
    p_detect.set_defaults(func=_cmd_detect)

    p_classify = sub.add_parser(
        "classify",
        help="statically classify an opaque Python predicate "
        "(see docs/ANALYSIS.md)",
    )
    p_classify.add_argument(
        "trace", help="path to a repro-trace-v1 JSON file"
    )
    p_classify.add_argument(
        "python",
        help="Python source of a one-cut callable, e.g. "
        "\"lambda cut: cut.value(0, 'x') and cut.value(1, 'x')\" "
        "(a bare body expression is wrapped into the lambda for you)",
    )
    p_classify.add_argument(
        "--modality",
        choices=["possibly", "definitely"],
        default="possibly",
        help="modality used for the reported engine choice",
    )
    p_classify.set_defaults(func=_cmd_classify)

    p_slice = sub.add_parser(
        "slice",
        help="show a predicate's computation slice (bounds + reduction)",
    )
    p_slice.add_argument("trace", help="path to a repro-trace-v1 JSON file")
    p_slice.add_argument("predicate", help='e.g. "x@0 & sum(v) >= 2"')
    p_slice.add_argument(
        "--count", action="store_true",
        help="also count the cuts of the slice sublattice (may be slow)",
    )
    p_slice.set_defaults(func=_cmd_slice)

    p_profile = sub.add_parser(
        "profile",
        help="repeat a detection query and report latency percentiles "
        "and engine counters",
    )
    p_profile.add_argument("trace", help="path to a repro-trace-v1 JSON file")
    p_profile.add_argument("predicate", help='e.g. "x@0 & x@1"')
    p_profile.add_argument(
        "--modality",
        choices=["possibly", "definitely"],
        default="possibly",
    )
    p_profile.add_argument(
        "--repeat", type=int, default=10,
        help="number of timed repetitions (default 10)",
    )
    p_profile.add_argument(
        "--export", choices=["json", "prometheus"], default="json",
        help="output format on stdout (default json)",
    )
    p_profile.add_argument(
        "--spans", action="store_true",
        help="also print the final repetition's span tree to stderr",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_gen = sub.add_parser("generate", help="generate a random trace")
    p_gen.add_argument("--processes", type=int, default=4)
    p_gen.add_argument("--events", type=int, default=10)
    p_gen.add_argument("--message-density", type=float, default=0.3)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument(
        "--bool", action="append", metavar="NAME",
        help="add a boolean variable (repeatable)",
    )
    p_gen.add_argument(
        "--walk", action="append", metavar="NAME",
        help="add a ±1 integer variable (repeatable)",
    )
    p_gen.add_argument("--true-density", type=float, default=0.3)
    p_gen.add_argument("-o", "--output", required=True)
    p_gen.set_defaults(func=_cmd_generate)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential-fuzz the detection engines against the oracles",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed; a fuzz run is bit-for-bit reproducible per seed",
    )
    p_fuzz.add_argument(
        "--iterations", type=int, default=50,
        help="number of instances to generate (default 50)",
    )
    p_fuzz.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop after this many seconds even if iterations remain",
    )
    p_fuzz.add_argument(
        "--family", action="append", metavar="NAME",
        help="restrict to an instance family (repeatable); see docs/TESTING.md",
    )
    p_fuzz.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="write shrunk counterexamples as corpus cases into DIR",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report raw findings without minimizing them",
    )
    p_fuzz.add_argument(
        "--profile", action="store_true",
        help="print testkit.* metrics to stderr after the run",
    )
    p_fuzz.add_argument(
        "--progress", action="store_true",
        help="print rate-limited progress ticks to stderr while fuzzing",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_runs = sub.add_parser(
        "runs",
        help="inspect the run ledger of past invocations (see docs/RUNS.md)",
    )
    p_runs.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="ledger file to read (default .repro/runs.jsonl or REPRO_RUNS)",
    )
    runs_sub = p_runs.add_subparsers(dest="action")
    r_list = runs_sub.add_parser("list", help="list recorded runs")
    r_list.add_argument(
        "-n", type=int, default=20, help="show at most N latest runs"
    )
    r_show = runs_sub.add_parser("show", help="print one run record as JSON")
    r_show.add_argument(
        "ref", help="run reference: id prefix, 1-based index, -1, prev, last"
    )
    r_show.add_argument(
        "--otlp", action="store_true",
        help="print the record's span tree as OTLP/JSON instead",
    )
    r_last = runs_sub.add_parser("last", help="print the latest run record")
    r_last.add_argument(
        "--otlp", action="store_true",
        help="print the record's span tree as OTLP/JSON instead",
    )
    r_diff = runs_sub.add_parser(
        "diff", help="metric and latency deltas between two runs"
    )
    r_diff.add_argument(
        "refs", nargs="*",
        help="two run references (default: prev last)",
    )
    for action_parser in (r_list, r_show, r_last, r_diff):
        # Accept --ledger after the action too (`runs diff --ledger P`).
        # SUPPRESS keeps the subparser from clobbering the value the
        # parent parser already stored.
        action_parser.add_argument(
            "--ledger", default=argparse.SUPPRESS, metavar="PATH",
            help=argparse.SUPPRESS,
        )
    p_runs.set_defaults(func=_cmd_runs, action=None)

    p_lint = sub.add_parser(
        "lint",
        help="run the static-analysis suite over source paths "
        "(see docs/ANALYSIS.md)",
    )
    p_lint.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="files or directories to lint (e.g. src/repro examples)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format on stdout (default text)",
    )
    p_lint.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule codes/slugs to run exclusively "
        "(repeatable), e.g. DET101,unsorted-set-iteration",
    )
    p_lint.add_argument(
        "--ignore", action="append", metavar="RULES",
        help="comma-separated rule codes/slugs to skip (repeatable)",
    )
    p_lint.add_argument(
        "--docs-root", default=None, metavar="DIR",
        help="directory holding ALGORITHMS.md and OBSERVABILITY.md "
        "(default: auto-discover a docs/ directory near the paths)",
    )
    p_lint.add_argument(
        "--require-docs", action="store_true",
        help="fail (exit 6) when the canonical-key docs cannot be found "
        "instead of skipping the conformance rules",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_sim = sub.add_parser("simulate", help="run a bundled protocol")
    p_sim.add_argument(
        "protocol",
        choices=[
            "token-ring",
            "leader-election",
            "primary-backup",
            "resource-pool",
            "lock-server",
        ],
    )
    p_sim.add_argument("--processes", type=int, default=5)
    p_sim.add_argument("--rounds", type=int, default=6)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--rogue", type=int, default=None,
        help="token-ring only: index of the process with the injected bug",
    )
    p_sim.add_argument(
        "--variant",
        choices=["deadlock", "crash-restart"],
        default="deadlock",
        help="lock-server only: workload variant (crash-restart is the "
        "deterministic mutual-exclusion-violation demo, see docs/FAULTS.md)",
    )
    p_sim.add_argument(
        "--conflicting-order",
        action="store_true",
        help="lock-server deadlock variant only: clients acquire locks in "
        "opposite orders (hold-and-wait cycle)",
    )
    p_sim.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="inject faults from a JSON fault plan (see docs/FAULTS.md); "
        "injected faults are recorded in the trace's meta.faults",
    )
    p_sim.add_argument(
        "--profile",
        action="store_true",
        help="print the simulation's span tree and metrics (including "
        "sim.faults.* counters) to stderr",
    )
    p_sim.add_argument("-o", "--output", required=True)
    p_sim.set_defaults(func=_cmd_simulate)

    p_render = sub.add_parser(
        "render", help="render a trace (or its cut lattice) as Graphviz DOT"
    )
    p_render.add_argument("trace")
    p_render.add_argument(
        "--what", choices=["computation", "lattice"], default="computation"
    )
    p_render.add_argument(
        "--variable", default=None,
        help="computation only: double-circle events where this boolean holds",
    )
    p_render.add_argument(
        "--predicate", default=None,
        help="lattice only: fill cuts satisfying this predicate expression",
    )
    p_render.add_argument("--max-cuts", type=int, default=500)
    p_render.add_argument("-o", "--output", required=True)
    p_render.set_defaults(func=_cmd_render)

    p_serve = sub.add_parser(
        "serve",
        help="run the resilient multi-session monitoring service "
        "(docs/SERVICE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = ephemeral; the bound port is printed on the "
        "ready line)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="supervised worker threads sessions are sharded across",
    )
    p_serve.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist per-session checkpoints as DIR/<session>.ckpt.json "
        "(atomic rename)",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="N",
        help="journal entries between periodic checkpoints",
    )
    p_serve.add_argument(
        "--policy", default="block",
        choices=["block", "reject", "reject-with-retry-after", "degrade"],
        help="default backpressure policy for sessions that don't pick one",
    )
    p_serve.add_argument(
        "--queue-capacity", type=int, default=256, metavar="N",
        help="default per-session ingest-queue bound",
    )
    p_serve.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write 'host port' to PATH once the service accepts requests",
    )
    p_serve.add_argument(
        "--drain-timeout-s", type=float, default=30.0, metavar="S",
        help="per-session settle budget during graceful drain",
    )
    p_serve.add_argument(
        "--progress", action="store_true",
        help="print rate-limited service heartbeats to stderr",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_feed = sub.add_parser(
        "feed",
        help="stream a trace's observations to a running 'repro serve'",
    )
    p_feed.add_argument("trace", help="path to a repro-trace-v1 JSON file")
    p_feed.add_argument("--host", default="127.0.0.1")
    p_feed.add_argument("--port", type=int, required=True)
    p_feed.add_argument(
        "--session", default=None,
        help="session id (default: the trace filename stem)",
    )
    p_feed.add_argument(
        "--query", action="append", metavar="NAME=P1,P2[,...]",
        help="a named conjunctive query over the listed processes "
        "(repeatable)",
    )
    p_feed.add_argument(
        "--all-pairs", action="store_true",
        help="add one pair(i,j) query per unordered process pair",
    )
    p_feed.add_argument(
        "--variable", default="x",
        help="boolean variable whose per-process truth feeds the monitors",
    )
    p_feed.add_argument(
        "--batch", type=int, default=16,
        help="observations per protocol request",
    )
    p_feed.add_argument(
        "--strict", action="store_true",
        help="open the session with strict (non-lossy) monitors",
    )
    p_feed.add_argument(
        "--policy", default=None,
        choices=["block", "reject", "reject-with-retry-after", "degrade"],
        help="backpressure policy for this session (default: the server's)",
    )
    p_feed.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="ingest-queue bound for this session (default: the server's)",
    )
    p_feed.add_argument(
        "--retries", type=int, default=5,
        help="max attempts per request (transient failures + rejects)",
    )
    p_feed.add_argument(
        "--backoff-ms", type=float, default=50.0, metavar="MS",
        help="initial retry backoff (doubles per attempt, capped at 2s)",
    )
    p_feed.add_argument(
        "--jitter", type=float, default=0.5,
        help="fraction of the backoff randomized (seeded; 0 disables)",
    )
    p_feed.add_argument(
        "--seed", type=int, default=0, help="jitter seed (reproducible runs)",
    )
    p_feed.add_argument(
        "--timeout-s", type=float, default=10.0,
        help="per-request socket timeout",
    )
    p_feed.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="give up after MS milliseconds with a clean 'inconclusive' "
        "payload (exit code 7) instead of retrying forever",
    )
    p_feed.set_defaults(func=_cmd_feed)

    p_info = sub.add_parser("info", help="summarize a trace")
    p_info.add_argument("trace")
    p_info.add_argument(
        "--lattice-limit", type=int, default=24,
        help="count consistent cuts only when total events <= this",
    )
    p_info.add_argument(
        "--deep", action="store_true",
        help="include structural statistics (width, density, variable "
        "regimes)",
    )
    p_info.set_defaults(func=_cmd_info)

    return parser


def _fail(message: str, code: int) -> int:
    print(f"repro: {message}", file=sys.stderr)
    return code


def _dispatch(args: argparse.Namespace) -> int:
    from repro.analysis import AnalysisError
    from repro.computation import ComputationError
    from repro.monitor import MonitorError
    from repro.predicates import PredicateError
    from repro.service import ServiceError
    from repro.simulation import FaultPlanError, SimulationError
    from repro.trace import TraceFormatError

    try:
        return args.func(args)
    except PredicateError as exc:
        return _fail(f"bad predicate: {exc}", 2)
    except FaultPlanError as exc:
        return _fail(f"bad fault plan: {exc}", 4)
    except AnalysisError as exc:
        return _fail(f"lint failed: {exc}", 6)
    except (TraceFormatError, ComputationError) as exc:
        return _fail(f"bad trace: {exc}", 3)
    except OSError as exc:
        return _fail(str(exc), 3)
    except SimulationError as exc:
        return _fail(f"simulation failed: {exc}", 4)
    except MonitorError as exc:
        return _fail(f"monitor failed: {exc}", 5)
    except ServiceError as exc:
        return _fail(f"service failed: {exc}", 8)
    except ValueError as exc:
        # e.g. an unknown --family name passed to fuzz.
        return _fail(str(exc), 2)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    ledger_path = None
    if args.command != "runs" and not args.no_runs_ledger:
        from repro.obs import ledger

        ledger_path = ledger.resolve_ledger_path(args.runs_ledger)
    if ledger_path is None:
        return _dispatch(args)
    from repro.obs import ledger

    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    with ledger.RunRecorder(ledger_path, args.command, raw_argv) as recorder:
        code = _dispatch(args)
        recorder.exit_code = code
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
