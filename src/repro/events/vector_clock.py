"""Fidge–Mattern vector clocks.

A vector clock timestamps each event with an integer vector of length *n*
(the number of processes).  Component ``i`` counts the events of process *i*
that causally precede (or equal) the timestamped event.  The fundamental
property is::

    e happened-before f   <=>   vc(e) < vc(f)       (componentwise <=, one <)
    e concurrent with f   <=>   neither vc(e) < vc(f) nor vc(f) < vc(e)

Vector clocks are the workhorse of every detection algorithm in this library:
they turn "did e happen before f?" into an O(n) comparison (O(1) with the
two-component trick used in :meth:`VectorClock.precedes_event`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["VectorClock"]


class VectorClock:
    """An immutable integer vector with the pointwise partial order.

    Instances are created either empty (all zeros) via :meth:`zero`, or from
    an explicit sequence of component values.
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[int]):
        self._components: Tuple[int, ...] = tuple(int(c) for c in components)
        if any(c < 0 for c in self._components):
            raise ValueError("vector clock components must be non-negative")

    @classmethod
    def zero(cls, size: int) -> "VectorClock":
        """The all-zeros clock of the given dimension."""
        if size <= 0:
            raise ValueError("vector clock dimension must be positive")
        return cls((0,) * size)

    @property
    def components(self) -> Tuple[int, ...]:
        """The underlying tuple of components."""
        return self._components

    def __len__(self) -> int:
        return len(self._components)

    def __getitem__(self, i: int) -> int:
        return self._components[i]

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __hash__(self) -> int:
        return hash(self._components)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._components == other._components

    # ------------------------------------------------------------------
    # Partial-order comparisons
    # ------------------------------------------------------------------
    def __le__(self, other: "VectorClock") -> bool:
        """Pointwise <= (reflexive causal order)."""
        self._check_dim(other)
        return all(a <= b for a, b in zip(self._components, other._components))

    def __lt__(self, other: "VectorClock") -> bool:
        """Strict happened-before order: pointwise <= and not equal."""
        return self <= other and self._components != other._components

    def __ge__(self, other: "VectorClock") -> bool:
        return other <= self

    def __gt__(self, other: "VectorClock") -> bool:
        return other < self

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True iff the two clocks are incomparable (independent events)."""
        return not (self <= other) and not (other <= self)

    def precedes_event(self, other: "VectorClock", other_process: int) -> bool:
        """O(1) happened-before test against an *event* clock.

        For event clocks produced by the standard algorithm, ``e -> f`` iff
        ``vc(e)[p(e)] <= vc(f)[p(e)]`` and ``e != f``; callers that know the
        process of ``other`` can use this constant-time form.  ``other_process``
        is the process of the event timestamped by ``other`` (unused by the
        comparison itself but kept for interface symmetry and validation).
        """
        self._check_dim(other)
        if not 0 <= other_process < len(other):
            raise ValueError("other_process out of range")
        return self._components != other._components and all(
            a <= b for a, b in zip(self._components, other._components)
        )

    # ------------------------------------------------------------------
    # Construction of derived clocks
    # ------------------------------------------------------------------
    def merge(self, other: "VectorClock") -> "VectorClock":
        """Componentwise maximum (the receive-side update)."""
        self._check_dim(other)
        return VectorClock(
            max(a, b) for a, b in zip(self._components, other._components)
        )

    def tick(self, process: int) -> "VectorClock":
        """Increment the component of ``process`` (the local-step update)."""
        if not 0 <= process < len(self._components):
            raise ValueError(f"process {process} out of range")
        comps: List[int] = list(self._components)
        comps[process] += 1
        return VectorClock(comps)

    @staticmethod
    def join(clocks: Sequence["VectorClock"]) -> "VectorClock":
        """Componentwise maximum of a non-empty collection of clocks."""
        if not clocks:
            raise ValueError("join of empty clock collection")
        result = clocks[0]
        for clock in clocks[1:]:
            result = result.merge(clock)
        return result

    def _check_dim(self, other: "VectorClock") -> None:
        if len(self._components) != len(other._components):
            raise ValueError(
                f"dimension mismatch: {len(self._components)} vs "
                f"{len(other._components)}"
            )

    def __repr__(self) -> str:
        return f"VectorClock({list(self._components)})"
