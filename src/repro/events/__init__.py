"""Event model and logical clocks (substrate S1).

Public names: :class:`Event`, :class:`EventKind`, :class:`VectorClock`,
and the :data:`EventId` alias.
"""

from repro.events.event import Event, EventId, EventKind
from repro.events.vector_clock import VectorClock

__all__ = ["Event", "EventId", "EventKind", "VectorClock"]
