"""Event model for distributed computations.

The paper (Section 2.1) models a local computation as a sequence of events on
each process.  Every process starts with a fictitious *initial event* that
initializes its state; subsequent events are internal, send, or receive events
(an event may be both a send and a receive — the results of the paper hold for
the restricted model too, and our model permits either convention).

We identify an event by the pair ``(process, index)`` where ``index`` is its
position in the process's local sequence (index 0 is the initial event).  This
makes predecessor/successor navigation O(1) and lets consistent cuts be stored
as integer frontier vectors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

__all__ = ["EventKind", "EventId", "Event"]


class EventKind(enum.Enum):
    """Classification of an event within a local computation."""

    INITIAL = "initial"
    INTERNAL = "internal"
    SEND = "send"
    RECEIVE = "receive"
    #: An event that both sends and receives (permitted by the paper's model).
    SEND_RECEIVE = "send_receive"

    @property
    def is_send(self) -> bool:
        """True if the event emits at least one message."""
        return self in (EventKind.SEND, EventKind.SEND_RECEIVE)

    @property
    def is_receive(self) -> bool:
        """True if the event consumes at least one message."""
        return self in (EventKind.RECEIVE, EventKind.SEND_RECEIVE)


# An event id is (process index, local event index).  Local index 0 is the
# initial event, so real events have indices >= 1.
EventId = Tuple[int, int]


@dataclass(frozen=True)
class Event:
    """One event of a distributed computation.

    Attributes:
        process: Index of the process the event occurs on.
        index: Position in the process's local sequence (0 = initial event).
        kind: Event classification (initial / internal / send / receive).
        values: Snapshot of the process's monitored local variables *after*
            executing this event.  Predicates are evaluated against these
            values.  Keys are variable names; values are arbitrary (booleans
            and integers in this library).
        label: Optional human-readable name (e.g. the paper's ``e, f, g, h``).
    """

    process: int
    index: int
    kind: EventKind = EventKind.INTERNAL
    values: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    @property
    def event_id(self) -> EventId:
        """The ``(process, index)`` identifier of this event."""
        return (self.process, self.index)

    @property
    def is_initial(self) -> bool:
        """True for the fictitious initial event of a process."""
        return self.index == 0

    def value(self, name: str, default: Any = None) -> Any:
        """Return the value of local variable ``name`` after this event."""
        return self.values.get(name, default)

    def __str__(self) -> str:
        tag = self.label if self.label is not None else f"e{self.process}.{self.index}"
        return f"{tag}@p{self.process}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(process={self.process}, index={self.index}, "
            f"kind={self.kind.value}, label={self.label!r})"
        )
