"""JSON (de)serialization of computations.

The on-disk format is deliberately simple and stable so traces recorded by
other tooling can be imported::

    {
      "format": "repro-trace-v1",
      "processes": [
        [ {"kind": "initial", "values": {...}},
          {"kind": "send", "values": {...}, "label": "f"}, ... ],
        ...
      ],
      "messages": [ [[1, 1], [2, 1]], ... ]
    }

Only JSON-representable variable values survive a round trip (bool, int,
float, str, None, and nested lists/dicts thereof) — which covers every
predicate in this library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.computation import Computation
from repro.events import Event, EventKind

__all__ = [
    "computation_to_dict",
    "computation_from_dict",
    "dump_computation",
    "load_computation",
]

FORMAT = "repro-trace-v1"


def computation_to_dict(computation: Computation) -> Dict[str, Any]:
    """Serialize to a JSON-compatible dictionary."""
    processes: List[List[Dict[str, Any]]] = []
    for p in range(computation.num_processes):
        events: List[Dict[str, Any]] = []
        for ev in computation.events_of(p):
            record: Dict[str, Any] = {
                "kind": ev.kind.value,
                "values": dict(ev.values),
            }
            if ev.label is not None:
                record["label"] = ev.label
            events.append(record)
        processes.append(events)
    return {
        "format": FORMAT,
        "processes": processes,
        "messages": [
            [list(send), list(recv)] for send, recv in computation.messages
        ],
    }


def computation_from_dict(data: Dict[str, Any]) -> Computation:
    """Deserialize a computation; validates structure and format tag."""
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported trace format {data.get('format')!r}; expected {FORMAT!r}"
        )
    process_events: List[List[Event]] = []
    for p, records in enumerate(data["processes"]):
        events: List[Event] = []
        for i, record in enumerate(records):
            events.append(
                Event(
                    process=p,
                    index=i,
                    kind=EventKind(record["kind"]),
                    values=dict(record.get("values", {})),
                    label=record.get("label"),
                )
            )
        process_events.append(events)
    messages = [
        ((send[0], send[1]), (recv[0], recv[1]))
        for send, recv in data.get("messages", [])
    ]
    return Computation(process_events, messages)


def dump_computation(
    computation: Computation, path: Union[str, Path]
) -> None:
    """Write the computation as JSON to ``path``."""
    payload = computation_to_dict(computation)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_computation(path: Union[str, Path]) -> Computation:
    """Read a computation previously written by :func:`dump_computation`."""
    return computation_from_dict(json.loads(Path(path).read_text()))
