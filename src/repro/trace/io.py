"""JSON (de)serialization of computations.

The on-disk format is deliberately simple and stable so traces recorded by
other tooling can be imported::

    {
      "format": "repro-trace-v1",
      "processes": [
        [ {"kind": "initial", "values": {...}},
          {"kind": "send", "values": {...}, "label": "f"}, ... ],
        ...
      ],
      "messages": [ [[1, 1], [2, 1]], ... ],
      "meta": {"faults": {...}}          # optional provenance metadata
    }

Only JSON-representable variable values survive a round trip (bool, int,
float, str, None, and nested lists/dicts thereof) — which covers every
predicate in this library.

Malformed payloads raise :class:`TraceFormatError` (a ``ValueError``) with
a message naming the file, the offending key, and the expected shape —
never a raw ``KeyError``/``TypeError``.  Payloads that parse but violate
the computation's *semantic* rules (dangling message endpoints, cyclic
dependencies, ...) still raise the usual
:class:`~repro.computation.errors.ComputationError` subclasses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.computation import Computation
from repro.events import Event, EventKind

__all__ = [
    "TraceFormatError",
    "computation_to_dict",
    "computation_from_dict",
    "dump_computation",
    "load_computation",
]

FORMAT = "repro-trace-v1"


class TraceFormatError(ValueError):
    """A trace payload is structurally malformed (bad JSON shape)."""


def computation_to_dict(computation: Computation) -> Dict[str, Any]:
    """Serialize to a JSON-compatible dictionary."""
    processes: List[List[Dict[str, Any]]] = []
    for p in range(computation.num_processes):
        events: List[Dict[str, Any]] = []
        for ev in computation.events_of(p):
            record: Dict[str, Any] = {
                "kind": ev.kind.value,
                "values": dict(ev.values),
            }
            if ev.label is not None:
                record["label"] = ev.label
            events.append(record)
        processes.append(events)
    payload: Dict[str, Any] = {
        "format": FORMAT,
        "processes": processes,
        "messages": [
            [list(send), list(recv)] for send, recv in computation.messages
        ],
    }
    if computation.meta:
        payload["meta"] = dict(computation.meta)
    return payload


def _parse_endpoint(
    entry: Any, what: str, fail: "_Fail"
) -> tuple:
    if (
        not isinstance(entry, Sequence)
        or isinstance(entry, (str, bytes))
        or len(entry) != 2
    ):
        fail(f"{what} must be a [process, index] pair, got {entry!r}")
    process, index = entry
    for part in (process, index):
        if isinstance(part, bool) or not isinstance(part, int):
            fail(f"{what} components must be integers, got {entry!r}")
    return (process, index)


class _Fail:
    """Raises :class:`TraceFormatError` with an optional source prefix."""

    def __init__(self, source: Optional[str]):
        self._prefix = f"{source}: " if source else ""

    def __call__(self, message: str) -> None:
        raise TraceFormatError(self._prefix + message)


def computation_from_dict(
    data: Mapping[str, Any], source: Optional[str] = None
) -> Computation:
    """Deserialize a computation; validates structure and format tag.

    Args:
        data: The parsed JSON payload.
        source: Optional provenance (e.g. a file name) prefixed to error
            messages.

    Raises:
        TraceFormatError: If the payload shape is malformed.
        ComputationError: If the payload parses but describes an invalid
            computation (bad message endpoints, cycles, ...).
    """
    fail = _Fail(source)
    if not isinstance(data, Mapping):
        fail(f"trace must be a JSON object, got {type(data).__name__}")
    fmt = data.get("format")
    if fmt != FORMAT:
        fail(f"unsupported trace format {fmt!r}; expected {FORMAT!r}")
    if "processes" not in data:
        fail("missing required key 'processes'")
    raw_processes = data["processes"]
    if not isinstance(raw_processes, Sequence) or isinstance(
        raw_processes, (str, bytes)
    ):
        fail(
            "'processes' must be a list of per-process event lists, got "
            f"{type(raw_processes).__name__}"
        )
    process_events: List[List[Event]] = []
    for p, records in enumerate(raw_processes):
        if not isinstance(records, Sequence) or isinstance(records, (str, bytes)):
            fail(
                f"process {p}: events must be a list, got "
                f"{type(records).__name__}"
            )
        events: List[Event] = []
        for i, record in enumerate(records):
            where = f"process {p}, event {i}"
            if not isinstance(record, Mapping):
                fail(f"{where}: expected an object, got {type(record).__name__}")
            if "kind" not in record:
                fail(f"{where}: missing required key 'kind'")
            try:
                kind = EventKind(record["kind"])
            except ValueError:
                fail(
                    f"{where}: unknown event kind {record['kind']!r} "
                    f"(expected one of {sorted(k.value for k in EventKind)})"
                )
            values = record.get("values", {})
            if not isinstance(values, Mapping):
                fail(
                    f"{where}: 'values' must be an object, got "
                    f"{type(values).__name__}"
                )
            label = record.get("label")
            if label is not None and not isinstance(label, str):
                fail(f"{where}: 'label' must be a string, got {label!r}")
            events.append(
                Event(
                    process=p,
                    index=i,
                    kind=kind,
                    values=dict(values),
                    label=label,
                )
            )
        process_events.append(events)
    raw_messages = data.get("messages", [])
    if not isinstance(raw_messages, Sequence) or isinstance(
        raw_messages, (str, bytes)
    ):
        fail(f"'messages' must be a list, got {type(raw_messages).__name__}")
    messages = []
    for m, entry in enumerate(raw_messages):
        if (
            not isinstance(entry, Sequence)
            or isinstance(entry, (str, bytes))
            or len(entry) != 2
        ):
            fail(
                f"message {m} must be a [send, receive] pair, got {entry!r}"
            )
        send = _parse_endpoint(entry[0], f"message {m} send endpoint", fail)
        recv = _parse_endpoint(entry[1], f"message {m} receive endpoint", fail)
        messages.append((send, recv))
    meta = data.get("meta")
    if meta is not None and not isinstance(meta, Mapping):
        fail(f"'meta' must be an object, got {type(meta).__name__}")
    return Computation(process_events, messages, meta=meta)


def dump_computation(
    computation: Computation, path: Union[str, Path]
) -> None:
    """Write the computation as JSON to ``path``."""
    payload = computation_to_dict(computation)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_computation(path: Union[str, Path]) -> Computation:
    """Read a computation previously written by :func:`dump_computation`.

    Raises:
        TraceFormatError: On an unreadable file, invalid JSON, or a
            malformed payload — always with the file name in the message.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise TraceFormatError(f"{path}: cannot read trace: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: invalid JSON: {exc}") from exc
    return computation_from_dict(data, source=str(path))
