"""Trace generation and serialization (substrate S11)."""

from repro.trace.generator import (
    ArbitraryWalkVar,
    BoolVar,
    UnitWalkVar,
    grouped_computation,
    random_computation,
)
from repro.trace.io import (
    TraceFormatError,
    computation_from_dict,
    computation_to_dict,
    dump_computation,
    load_computation,
)

__all__ = [
    "ArbitraryWalkVar",
    "BoolVar",
    "TraceFormatError",
    "UnitWalkVar",
    "computation_from_dict",
    "computation_to_dict",
    "dump_computation",
    "grouped_computation",
    "load_computation",
    "random_computation",
]
