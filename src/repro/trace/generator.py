"""Seeded random trace generation (substrate S11).

The benchmarks sweep detection algorithms over families of computations
with controlled shape: number of processes, events per process, message
density, where receives/sends may occur (to produce the receive-ordered /
send-ordered special cases of Section 3.2), and which monitored variables
events carry:

* boolean variables with a tunable true-density (for CNF predicates);
* ±1 integer random walks (the paper's Section 4.2 regime);
* arbitrary-increment integer walks (the NP-complete regime of Theorem 2).

Generation is a single left-to-right pass over a random interleaving, so
message edges always point forward in a valid run and the result is a
legal computation by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.computation import Computation, ComputationBuilder
from repro.events import EventId

__all__ = [
    "BoolVar",
    "UnitWalkVar",
    "ArbitraryWalkVar",
    "random_computation",
    "grouped_computation",
]


@dataclass(frozen=True)
class BoolVar:
    """A boolean variable: true after an event with probability ``density``."""

    name: str
    density: float = 0.3
    initial: bool = False


@dataclass(frozen=True)
class UnitWalkVar:
    """An integer variable changing by -1, 0, or +1 per event.

    ``p_up``/``p_down`` are the per-event probabilities of +1/-1; the value
    never drops below ``floor`` (steps that would are redrawn as 0).
    """

    name: str
    initial: int = 0
    p_up: float = 0.4
    p_down: float = 0.4
    floor: Optional[int] = 0


@dataclass(frozen=True)
class ArbitraryWalkVar:
    """An integer variable jumping by a uniform amount in ±max_step."""

    name: str
    initial: int = 0
    max_step: int = 10


VariableSpec = BoolVar | UnitWalkVar | ArbitraryWalkVar


def random_computation(
    num_processes: int,
    events_per_process: int,
    message_density: float = 0.3,
    seed: int = 0,
    variables: Sequence[VariableSpec] = (),
    receive_sites: Optional[Sequence[int]] = None,
    send_sites: Optional[Sequence[int]] = None,
) -> Computation:
    """Generate a random computation.

    Args:
        num_processes: Number of processes (>= 1).
        events_per_process: Non-initial events per process.
        message_density: Per-event probability of attempting a send, and
            independently of attempting a receive of a pending message.
        seed: RNG seed — same arguments, same computation, on every run
            and under every ``PYTHONHASHSEED`` (the fuzzer's corpus
            provenance depends on this).
        variables: Monitored-variable specs applied to every process.
        receive_sites: If given, only these processes may receive.
        send_sites: If given, only these processes may send.
    """
    if num_processes < 1:
        raise ValueError("need at least one process")
    if events_per_process < 0:
        raise ValueError("events_per_process must be non-negative")
    if not 0.0 <= message_density <= 1.0:
        raise ValueError("message_density must be within [0, 1]")
    rng = random.Random(seed)
    builder = ComputationBuilder(num_processes)
    # Determinism contract: identical arguments (including seed) produce the
    # identical computation on every run, regardless of PYTHONHASHSEED.  To
    # keep that true, nothing here may iterate a set or dict whose order
    # feeds an RNG draw — membership sites are stored as sorted frozensets
    # (order-free queries only) and every choice indexes a list.
    may_receive = frozenset(
        receive_sites if receive_sites is not None else range(num_processes)
    )
    may_send = frozenset(
        send_sites if send_sites is not None else range(num_processes)
    )

    # Variable state per process.  Built in ``variables`` order — a
    # sequence, not a set — so initial-value dicts have a stable order too.
    state: List[Dict[str, object]] = []
    for p in range(num_processes):
        values: Dict[str, object] = {
            spec.name: spec.initial for spec in variables
        }
        builder.init_values(p, **values)
        state.append(values)

    # Random interleaving of all events.
    schedule: List[int] = []
    for p in range(num_processes):
        schedule.extend([p] * events_per_process)
    rng.shuffle(schedule)

    pending_sends: List[Tuple[int, EventId]] = []  # (sender, send event id)

    for p in schedule:
        receives_from: Optional[EventId] = None
        if p in may_receive and pending_sends and rng.random() < message_density:
            candidates = [
                (i, eid)
                for i, (sender, eid) in enumerate(pending_sends)
                if sender != p
            ]
            if candidates:
                index, receives_from = candidates[
                    rng.randrange(len(candidates))
                ]
                pending_sends.pop(index)
        sends = p in may_send and rng.random() < message_density

        values = _step_variables(rng, state[p], variables)
        if receives_from is not None and sends:
            eid = builder.send_receive(p, **values)
            builder.message(receives_from, eid)
            pending_sends.append((p, eid))
        elif receives_from is not None:
            eid = builder.receive(p, **values)
            builder.message(receives_from, eid)
        elif sends:
            eid = builder.send(p, **values)
            pending_sends.append((p, eid))
        else:
            builder.internal(p, **values)

    return builder.build()


def _step_variables(
    rng: random.Random,
    state: Dict[str, object],
    variables: Sequence[VariableSpec],
) -> Dict[str, object]:
    """Advance every variable one step; returns the updates to record."""
    updates: Dict[str, object] = {}
    for spec in variables:
        if isinstance(spec, BoolVar):
            value = rng.random() < spec.density
        elif isinstance(spec, UnitWalkVar):
            current = int(state[spec.name])  # type: ignore[arg-type]
            roll = rng.random()
            if roll < spec.p_up:
                step = 1
            elif roll < spec.p_up + spec.p_down:
                step = -1
            else:
                step = 0
            value = current + step
            if spec.floor is not None and value < spec.floor:
                value = current
        else:  # ArbitraryWalkVar
            current = int(state[spec.name])  # type: ignore[arg-type]
            value = current + rng.randint(-spec.max_step, spec.max_step)
        state[spec.name] = value
        updates[spec.name] = value
    return updates


def grouped_computation(
    num_groups: int,
    group_size: int,
    events_per_process: int,
    message_density: float = 0.3,
    seed: int = 0,
    variables: Sequence[VariableSpec] = (),
    ordering: Optional[str] = None,
) -> Computation:
    """A computation whose processes split into equal clause groups.

    Group j owns processes ``j*group_size .. (j+1)*group_size - 1`` — the
    layout the singular-CNF benchmarks use for their clause groups.

    ``ordering`` produces the paper's Section 3.2 special cases:

    * ``"receive"`` — only the first process of each group may receive, so
      every group's receives are totally ordered (receive-ordered);
    * ``"send"`` — dually for sends (send-ordered);
    * None — unrestricted (the general, NP-complete regime).
    """
    if num_groups < 1 or group_size < 1:
        raise ValueError("need at least one group of at least one process")
    n = num_groups * group_size
    receive_sites = send_sites = None
    if ordering == "receive":
        receive_sites = [g * group_size for g in range(num_groups)]
    elif ordering == "send":
        send_sites = [g * group_size for g in range(num_groups)]
    elif ordering is not None:
        raise ValueError("ordering must be 'receive', 'send' or None")
    return random_computation(
        num_processes=n,
        events_per_process=events_per_process,
        message_density=message_density,
        seed=seed,
        variables=variables,
        receive_sites=receive_sites,
        send_sites=send_sites,
    )
