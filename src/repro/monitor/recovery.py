"""Checkpoint / restore for online monitors (crash-tolerant monitoring).

The checker process of a deployed monitor can itself crash.  Because
:class:`~repro.monitor.online.OnlineConjunctiveMonitor` keeps only a small
amount of state — the pending candidate queues, per-process stream
positions, and the gap/quarantine bookkeeping — that state serializes to a
compact JSON document.  A monitor restarted from a checkpoint resumes the
stream exactly where it left off: feeding the remainder of the
observations yields the same verdict and witness as an uninterrupted run
(verified property in the tests).

This module is the monitor's serialization *friend*: it reaches into the
monitor's private fields so the hot observation path stays free of any
persistence concerns.

::

    from repro.monitor import recovery

    state = recovery.checkpoint_monitor(monitor)      # JSON-safe dict
    recovery.save_monitor(monitor, "monitor.ckpt")    # ... or straight to disk

    monitor = recovery.restore_monitor(state)         # after the restart
    monitor = recovery.load_monitor("monitor.ckpt")

:class:`~repro.monitor.multiplex.MonitorGroup` checkpoints the same way
with :func:`checkpoint_group` / :func:`restore_group`.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Mapping, Union

from repro.events import VectorClock
from repro.monitor.multiplex import MonitorGroup
from repro.monitor.online import MonitorError, OnlineConjunctiveMonitor, _Candidate

__all__ = [
    "MONITOR_STATE_FORMAT",
    "GROUP_STATE_FORMAT",
    "checkpoint_group",
    "checkpoint_monitor",
    "load_group",
    "load_monitor",
    "restore_group",
    "restore_monitor",
    "save_group",
    "save_monitor",
    "write_checkpoint_text",
]

MONITOR_STATE_FORMAT = "repro-monitor-state-v1"
GROUP_STATE_FORMAT = "repro-monitor-group-state-v1"


def checkpoint_monitor(monitor: OnlineConjunctiveMonitor) -> Dict[str, Any]:
    """Serialize the monitor's full state to a JSON-safe dictionary.

    Per-process entries are sorted by process id (and the document is
    written with ``sort_keys=True`` by :func:`save_monitor`), so two
    monitors with identical logical state checkpoint to byte-identical
    JSON regardless of registration or restore order.
    """
    witness = None
    if monitor._witness is not None:
        witness = [
            [p, index, list(clock)]
            for p, (index, clock) in sorted(monitor._witness.items())
        ]
    return {
        "format": MONITOR_STATE_FORMAT,
        "num_processes": monitor._n,
        "monitored": sorted(monitor._monitored),
        "lossy": monitor._lossy,
        "last_index": [[p, i] for p, i in sorted(monitor._last_index.items())],
        "finished": sorted(
            p for p, done in monitor._finished.items() if done
        ),
        "queues": [
            [p, [[c.index, list(c.clock)] for c in queue]]
            for p, queue in sorted(monitor._queues.items())
        ],
        "gaps": [
            [p, [list(span) for span in spans]]
            for p, spans in sorted(monitor._gaps.items())
        ],
        "quarantined": [
            [p, [[index, list(clock), truth] for index, clock, truth in items]]
            for p, items in sorted(monitor._quarantine.items())
        ],
        "witness": witness,
        "witness_gapped": monitor._witness_gapped,
        "impossible": monitor._impossible,
        "observations": monitor.observations,
        "eliminations": monitor.eliminations,
        "stale_dropped": monitor.stale_dropped,
    }


def restore_monitor(state: Mapping[str, Any]) -> OnlineConjunctiveMonitor:
    """Rebuild a monitor from a :func:`checkpoint_monitor` dictionary.

    Raises:
        MonitorError: If the state document is malformed.
    """
    if not isinstance(state, Mapping):
        raise MonitorError(
            f"monitor state must be an object, got {type(state).__name__}"
        )
    fmt = state.get("format")
    if fmt != MONITOR_STATE_FORMAT:
        raise MonitorError(
            f"unsupported monitor state format {fmt!r}; "
            f"expected {MONITOR_STATE_FORMAT!r}"
        )
    try:
        monitor = OnlineConjunctiveMonitor(
            state["num_processes"],
            state["monitored"],
            lossy=state.get("lossy", False),
        )
        for p, index in state["last_index"]:
            if p not in monitor._last_index:
                raise MonitorError(f"state refers to unmonitored process {p}")
            monitor._last_index[p] = index
        for p in state.get("finished", []):
            if p not in monitor._finished:
                raise MonitorError(f"state refers to unmonitored process {p}")
            monitor._finished[p] = True
        for p, queue in state["queues"]:
            if p not in monitor._queues:
                raise MonitorError(f"state refers to unmonitored process {p}")
            monitor._queues[p] = deque(
                _Candidate(index, VectorClock(clock)) for index, clock in queue
            )
        for p, spans in state.get("gaps", []):
            monitor._gaps[p] = [(a, b) for a, b in spans]
        for p, items in state.get("quarantined", []):
            monitor._quarantine[p] = [
                (index, VectorClock(clock), bool(truth))
                for index, clock, truth in items
            ]
        witness = state.get("witness")
        if witness is not None:
            monitor._witness = {
                p: (index, VectorClock(clock)) for p, index, clock in witness
            }
        monitor._witness_gapped = bool(state.get("witness_gapped", False))
        monitor._impossible = bool(state.get("impossible", False))
        monitor.observations = int(state.get("observations", 0))
        monitor.eliminations = int(state.get("eliminations", 0))
        monitor.stale_dropped = int(state.get("stale_dropped", 0))
    except MonitorError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise MonitorError(f"malformed monitor state: {exc!r}") from exc
    return monitor


def checkpoint_group(group: MonitorGroup) -> Dict[str, Any]:
    """Serialize a :class:`MonitorGroup` and all its monitors.

    Monitors are sorted by name so the checkpoint bytes do not depend on
    registration order.
    """
    return {
        "format": GROUP_STATE_FORMAT,
        "num_processes": group._n,
        "lossy": group._lossy,
        "monitors": [
            [name, checkpoint_monitor(monitor)]
            for name, monitor in sorted(group._monitors.items())
        ],
    }


def restore_group(state: Mapping[str, Any]) -> MonitorGroup:
    """Rebuild a :class:`MonitorGroup` from a :func:`checkpoint_group` dict."""
    if not isinstance(state, Mapping):
        raise MonitorError(
            f"group state must be an object, got {type(state).__name__}"
        )
    fmt = state.get("format")
    if fmt != GROUP_STATE_FORMAT:
        raise MonitorError(
            f"unsupported group state format {fmt!r}; "
            f"expected {GROUP_STATE_FORMAT!r}"
        )
    try:
        group = MonitorGroup(
            state["num_processes"], lossy=state.get("lossy", False)
        )
        for name, monitor_state in state["monitors"]:
            monitor = restore_monitor(monitor_state)
            group._monitors[name] = monitor
            for p in monitor.monitored:
                group._interested.setdefault(p, []).append(name)
    except MonitorError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise MonitorError(f"malformed group state: {exc!r}") from exc
    return group


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def write_checkpoint_text(path: Union[str, Path], text: str) -> None:
    """Crash-safe file write: temp file in the same directory + rename.

    A checkpoint exists to survive the very crash that may interrupt
    writing it, so the bytes are staged in a sibling temp file, flushed
    and fsynced, and only then atomically renamed over ``path`` — a
    reader (or a restart) sees either the previous complete checkpoint
    or the new complete one, never a torn prefix.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        # On any failure past creation (including a failed rename) the
        # target is untouched; just drop the stale temp file.
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass


def save_monitor(
    monitor: OnlineConjunctiveMonitor, path: Union[str, Path]
) -> None:
    """Atomically write the monitor's checkpoint as JSON to ``path``."""
    write_checkpoint_text(
        path, json.dumps(checkpoint_monitor(monitor), indent=2, sort_keys=True)
    )


def load_monitor(path: Union[str, Path]) -> OnlineConjunctiveMonitor:
    """Read a checkpoint previously written by :func:`save_monitor`."""
    return restore_monitor(_load_json(path))


def save_group(group: MonitorGroup, path: Union[str, Path]) -> None:
    """Atomically write the group's checkpoint as JSON to ``path``."""
    write_checkpoint_text(
        path, json.dumps(checkpoint_group(group), indent=2, sort_keys=True)
    )


def load_group(path: Union[str, Path]) -> MonitorGroup:
    """Read a checkpoint previously written by :func:`save_group`."""
    return restore_group(_load_json(path))


def _load_json(path: Union[str, Path]) -> Any:
    path = Path(path)
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise MonitorError(f"{path}: cannot read checkpoint: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise MonitorError(f"{path}: invalid JSON: {exc}") from exc
