"""Online (streaming) conjunctive predicate detection.

The offline CPDHB scan (:mod:`repro.detection.garg_waldecker`) assumes the
whole trace is available.  In a deployed monitor — the paper's motivating
setting — each process reports its events *as they happen*, and a checker
process must raise the alarm the moment ``possibly(B)`` becomes true.

:class:`OnlineConjunctiveMonitor` is that checker.  Each monitored process
streams ``(index, vector clock, local-predicate value)`` triples in local
order (any interleaving across processes).  The monitor keeps a queue of
pending true events per process and runs the Garg–Waldecker elimination
incrementally, exploiting the O(1) happened-before test

    ``succ(e) -> f   <=>   vc(f)[p(e)] >= index(e) + 2``

(component ``p`` of a Fidge–Mattern clock counts the events of process
``p``, including its initial event, in the causal past), so eliminations
never need the successor's full clock — a candidate pair's verdict is
final the moment both clocks are known.  Detection is therefore announced
at the earliest possible observation point, with the witness event per
process.

The stream for process p must include *all* its events (true and false):
false events cost O(1) and carry the causal information that eliminates
stale candidates... they are simply ignored by the queues, but feeding
them is how a real monitor works and keeps indices honest.

**Lossy streams.**  A monitor watching a faulty system cannot assume its
own observation channel is perfect.  With ``lossy=True`` the monitor
tolerates imperfect streams instead of raising :class:`MonitorError`:

* *gaps* — a jump in the reported index (equivalently, in the process's
  own vector-clock component, since ``clock[p] == index + 1`` for a
  Fidge–Mattern labeling) means observations were lost; the gap is
  recorded and the stream continues;
* *stale or duplicated observations* (index at or below the last seen
  one, e.g. a duplicated report) are dropped and counted;
* *corrupted observations* whose index contradicts their own clock
  component are quarantined — kept aside, never used for detection.

Detection remains **sound** under gaps: every queued candidate was really
observed with its true clock, eliminations rely only on observed clocks,
and a witness is a genuinely pairwise-consistent set of true events.  What
loss costs is *completeness*: a witness whose events fell into a gap can
be missed, so (a) a detection after any gap is reported as
``detected_despite_gaps`` (an earlier witness may exist), and (b) the
monitor never concludes ``impossible`` once a gap occurred — the verdict
becomes ``inconclusive`` instead.  See ``docs/FAULTS.md``.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.events import VectorClock
from repro.obs import STATE, registry

__all__ = ["OnlineConjunctiveMonitor", "MonitorError"]


class MonitorError(Exception):
    """Monitor misuse: out-of-order or malformed observations."""


class _Candidate:
    __slots__ = ("index", "clock")

    def __init__(self, index: int, clock: VectorClock):
        self.index = index
        self.clock = clock


class OnlineConjunctiveMonitor:
    """Streaming detector for a conjunctive predicate.

    Args:
        num_processes: Total processes in the system (clock dimension).
        monitored: The processes hosting a conjunct, in any order.

    Feed observations with :meth:`observe`; query :attr:`detected` /
    :attr:`witness` at any time.  Call :meth:`finish` when a process's
    stream ends so the monitor can conclude impossibility.

    Args:
        lossy: Tolerate imperfect streams (observation gaps, duplicates,
            corrupted reports) instead of raising; see the module
            docstring for the exact semantics.
    """

    def __init__(
        self,
        num_processes: int,
        monitored: Sequence[int],
        lossy: bool = False,
    ):
        if not monitored:
            raise MonitorError("need at least one monitored process")
        seen = set()
        for p in monitored:
            if not 0 <= p < num_processes:
                raise MonitorError(f"process {p} out of range")
            if p in seen:
                raise MonitorError(f"process {p} monitored twice")
            seen.add(p)
        self._n = num_processes
        self._monitored: Tuple[int, ...] = tuple(monitored)
        self._lossy = bool(lossy)
        self._queues: Dict[int, Deque[_Candidate]] = {
            p: deque() for p in self._monitored
        }
        self._last_index: Dict[int, int] = {p: -1 for p in self._monitored}
        self._finished: Dict[int, bool] = {p: False for p in self._monitored}
        self._witness: Optional[Dict[int, Tuple[int, VectorClock]]] = None
        self._witness_gapped = False
        self._impossible = False
        #: Per process, the inclusive (first, last) index ranges never observed.
        self._gaps: Dict[int, List[Tuple[int, int]]] = {
            p: [] for p in self._monitored
        }
        #: Per process, quarantined (index, clock, truth) observations whose
        #: index contradicted their own clock component.
        self._quarantine: Dict[int, List[Tuple[int, VectorClock, bool]]] = {
            p: [] for p in self._monitored
        }
        self.observations = 0
        self.eliminations = 0
        self.stale_dropped = 0
        self._created_at = perf_counter()

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    @property
    def detected(self) -> bool:
        """Has a witness (pairwise-consistent true events) been found?"""
        return self._witness is not None

    @property
    def impossible(self) -> bool:
        """Has the monitor proven the predicate can never hold?"""
        return self._impossible

    @property
    def witness(self) -> Optional[Dict[int, Tuple[int, VectorClock]]]:
        """Per monitored process, the witness (event index, clock)."""
        if self._witness is None:
            return None
        return dict(self._witness)

    @property
    def lossy(self) -> bool:
        """Was the monitor created in lossy-stream mode?"""
        return self._lossy

    @property
    def monitored(self) -> Tuple[int, ...]:
        """The monitored processes, in registration order."""
        return self._monitored

    @property
    def gaps(self) -> Dict[int, List[Tuple[int, int]]]:
        """Per process, the inclusive index ranges lost from its stream."""
        return {p: list(ranges) for p, ranges in self._gaps.items()}

    @property
    def had_gaps(self) -> bool:
        """Did any monitored stream lose or corrupt observations?"""
        return any(self._gaps.values()) or any(self._quarantine.values())

    @property
    def quarantined(self) -> Dict[int, int]:
        """Per process, the number of quarantined (corrupted) observations."""
        return {p: len(items) for p, items in self._quarantine.items()}

    @property
    def verdict(self) -> str:
        """Current verdict as a string.

        * ``"detected"`` — witness found on a gap-free stream;
        * ``"detected_despite_gaps"`` — witness found, but observations had
          been lost or quarantined by then, so an earlier witness may have
          been missed;
        * ``"impossible"`` — complete streams ended without a witness;
        * ``"inconclusive"`` — streams ended without a witness, but gaps
          mean one may have gone unobserved;
        * ``"undecided"`` — streams still open, nothing found yet.
        """
        if self.detected:
            return "detected_despite_gaps" if self._witness_gapped else "detected"
        if self._impossible:
            return "impossible"
        if all(self._finished.values()):
            # Streams ended, no witness, impossibility not provable
            # (gaps may have hidden one).
            return "inconclusive"
        return "undecided"

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def observe(
        self,
        process: int,
        index: int,
        clock: VectorClock,
        truth: bool,
    ) -> bool:
        """Report one event of a monitored process.

        Args:
            process: The reporting process.
            index: The event's local index (0 = initial event); must arrive
                in strictly increasing order per process.
            clock: The event's Fidge–Mattern clock.
            truth: Whether the process's conjunct holds after this event.

        Returns:
            True iff the predicate has been detected (now or earlier).
        """
        if self.detected or self._impossible:
            return self.detected
        if process not in self._queues:
            raise MonitorError(f"process {process} is not monitored")
        if len(clock) != self._n:
            raise MonitorError("clock dimension mismatch")
        if self._finished[process]:
            if self._lossy:
                # A restarted reporter may replay its tail; drop quietly.
                self.stale_dropped += 1
                if STATE.enabled:
                    registry().counter("monitor.stale_observations").inc()
                return self.detected
            raise MonitorError(f"process {process} already finished")
        if index <= self._last_index[process]:
            if self._lossy:
                # Duplicate or stale delivery of an observation.
                self.stale_dropped += 1
                if STATE.enabled:
                    registry().counter("monitor.stale_observations").inc()
                return self.detected
            raise MonitorError(
                f"out-of-order observation for process {process}: "
                f"{index} after {self._last_index[process]}"
            )
        if self._lossy:
            if clock[process] != index + 1:
                # In a Fidge-Mattern labeling an event's own component is
                # its index + 1; a mismatch means the observation itself is
                # corrupt.  Quarantine it rather than poisoning the queues
                # (or killing the monitor).
                self._quarantine[process].append((index, clock, truth))
                if STATE.enabled:
                    registry().counter("monitor.quarantined_observations").inc()
                return self.detected
            if index > self._last_index[process] + 1:
                # Vector-clock discontinuity: observations were lost.
                self._gaps[process].append(
                    (self._last_index[process] + 1, index - 1)
                )
                if STATE.enabled:
                    registry().counter("monitor.gaps").inc()
        self._last_index[process] = index
        self.observations += 1
        if STATE.enabled:
            registry().counter("monitor.observations").inc()
        if truth:
            self._queues[process].append(_Candidate(index, clock))
            if STATE.enabled:
                registry().counter("monitor.candidates_queued").inc()
            already = self.detected
            self._settle()
            if STATE.enabled and self.detected and not already:
                registry().counter("monitor.detections").inc()
                registry().gauge("monitor.observations_to_detection").set(
                    self.observations
                )
                registry().histogram("monitor.time_to_detection.ms").record(
                    (perf_counter() - self._created_at) * 1000.0
                )
        return self.detected

    def degrade_to_lossy(self) -> None:
        """Switch a strict monitor to lossy-stream mode, in place.

        Used by overload control (the service's ``degrade`` backpressure
        policy): once observations are being shed on purpose, the stream
        is lossy by construction, so gaps must be recorded rather than
        raised.  A no-op on monitors already in lossy mode; irreversible
        — verdicts after the flip carry lossy semantics
        (``detected_despite_gaps`` / ``inconclusive``).
        """
        self._lossy = True

    def finish(self, process: int) -> None:
        """Declare that a monitored process will report no more events."""
        if process not in self._finished:
            raise MonitorError(f"process {process} is not monitored")
        self._finished[process] = True
        self._check_impossible()

    def finish_all(self) -> None:
        """Declare the end of every stream."""
        for p in self._monitored:
            self._finished[p] = True
        self._check_impossible()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _eliminates(left: _Candidate, left_process: int, right: _Candidate) -> bool:
        """succ(left) happened-before right (O(1) clock-component test)."""
        return right.clock[left_process] >= left.index + 2

    def _settle(self) -> None:
        """Run eliminations until the heads are stable, then conclude."""
        changed = True
        while changed:
            changed = False
            for i in self._monitored:
                if not self._queues[i]:
                    continue
                head_i = self._queues[i][0]
                for j in self._monitored:
                    if i == j or not self._queues[j]:
                        continue
                    head_j = self._queues[j][0]
                    if self._eliminates(head_i, i, head_j):
                        # head_i can never pair with head_j nor with any
                        # later true event of j: clocks grow monotonically
                        # along a process, so the test stays true for them.
                        self._queues[i].popleft()
                        self.eliminations += 1
                        if STATE.enabled:
                            registry().counter("monitor.eliminations").inc()
                        changed = True
                        break
                    if self._eliminates(head_j, j, head_i):
                        self._queues[j].popleft()
                        self.eliminations += 1
                        if STATE.enabled:
                            registry().counter("monitor.eliminations").inc()
                        changed = True
                        break
                if changed:
                    break
        if all(self._queues[p] for p in self._monitored):
            self._witness = {
                p: (self._queues[p][0].index, self._queues[p][0].clock)
                for p in self._monitored
            }
            self._witness_gapped = self.had_gaps
        else:
            self._check_impossible()

    def _check_impossible(self) -> None:
        if self.detected:
            return
        if self._lossy and self.had_gaps:
            # A true event lost in a gap could have completed a witness, so
            # impossibility is no longer provable; the verdict stays
            # "inconclusive" once the streams finish.
            return
        for p in self._monitored:
            if not self._queues[p] and self._finished[p]:
                self._impossible = True
                if STATE.enabled:
                    registry().counter("monitor.impossible_verdicts").inc()
                return
