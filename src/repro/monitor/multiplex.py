"""Running many conjunctive monitors over one observation stream.

Real debugging sessions watch many queries at once — e.g. mutual exclusion
is ``possibly(cs_i AND cs_j)`` for *every* pair of processes.  Feeding
each monitor separately re-delivers the stream once per query;
:class:`MonitorGroup` fans a single stream out to any number of
:class:`~repro.monitor.online.OnlineConjunctiveMonitor` instances and
reports detections as they fire.

Convenience constructors cover the common shapes: all pairs over a set of
processes (mutual exclusion, Section 1 of the paper) and one monitor per
explicit process set.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.events import VectorClock
from repro.monitor.online import MonitorError, OnlineConjunctiveMonitor

__all__ = ["MonitorGroup"]

#: Maps a process to whether its conjunct holds after the observed event.
TruthFunction = Callable[[int], bool]


class MonitorGroup:
    """A set of named conjunctive monitors sharing one observation stream.

    Args:
        num_processes: Clock dimension of the monitored system.

    Observations carry per-process truth *per query*: ``observe`` takes the
    event's process, index, clock, and a mapping ``query name -> truth of
    that query's conjunct on this process`` (queries not monitoring the
    process ignore the entry).

    Args:
        lossy: Create every member monitor in lossy-stream mode (tolerate
            gaps, duplicates and corrupted observations instead of
            raising; see :class:`OnlineConjunctiveMonitor`).
    """

    def __init__(self, num_processes: int, lossy: bool = False):
        self._n = num_processes
        self._lossy = bool(lossy)
        self._monitors: Dict[str, OnlineConjunctiveMonitor] = {}
        self._interested: Dict[int, List[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, name: str, processes: Sequence[int]) -> None:
        """Register a conjunctive query over the given processes."""
        if name in self._monitors:
            raise MonitorError(f"duplicate monitor name {name!r}")
        monitor = OnlineConjunctiveMonitor(self._n, processes, lossy=self._lossy)
        self._monitors[name] = monitor
        for p in processes:
            self._interested.setdefault(p, []).append(name)

    @classmethod
    def all_pairs(
        cls,
        num_processes: int,
        processes: Optional[Iterable[int]] = None,
        lossy: bool = False,
    ) -> "MonitorGroup":
        """One monitor per unordered pair — the mutual-exclusion shape."""
        group = cls(num_processes, lossy=lossy)
        pool = list(processes) if processes is not None else list(
            range(num_processes)
        )
        for i, j in itertools.combinations(pool, 2):
            group.add(f"pair({i},{j})", [i, j])
        return group

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def observe(
        self,
        process: int,
        index: int,
        clock: VectorClock,
        truth: bool,
    ) -> List[str]:
        """Deliver one event to every monitor watching ``process``.

        ``truth`` is the process's local-predicate value after the event
        (shared by all queries — the common case of one variable, e.g.
        ``cs``).  Returns the names of monitors that fired *on this
        observation*.
        """
        fired: List[str] = []
        for name in self._interested.get(process, ()):
            monitor = self._monitors[name]
            if monitor.detected or monitor.impossible:
                continue
            if monitor.observe(process, index, clock, truth):
                fired.append(name)
        return fired

    def finish_all(self) -> None:
        """Declare the end of every stream to every monitor."""
        for monitor in self._monitors.values():
            if not monitor.detected:
                monitor.finish_all()

    def degrade_to_lossy(self) -> None:
        """Flip the group (and every member monitor) to lossy-stream mode.

        See :meth:`OnlineConjunctiveMonitor.degrade_to_lossy`; the flip
        is irreversible and applies to monitors added later too.
        """
        self._lossy = True
        for monitor in self._monitors.values():
            monitor.degrade_to_lossy()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def detected(self) -> Dict[str, OnlineConjunctiveMonitor]:
        """All monitors that found a witness, by name."""
        return {
            name: monitor
            for name, monitor in self._monitors.items()
            if monitor.detected
        }

    def verdicts(self) -> Dict[str, bool]:
        """Name -> detected for every registered monitor."""
        return {
            name: monitor.detected
            for name, monitor in self._monitors.items()
        }

    def witnesses(
        self,
    ) -> Dict[str, Dict[int, Tuple[int, VectorClock]]]:
        """Name -> witness (per-process event index + clock) for every
        monitor that found one."""
        return {
            name: monitor.witness
            for name, monitor in self._monitors.items()
            if monitor.detected
        }

    def detailed_verdicts(self) -> Dict[str, str]:
        """Name -> verdict string, distinguishing ``detected`` from
        ``detected_despite_gaps`` (and ``impossible`` from
        ``inconclusive``) for lossy streams."""
        return {
            name: monitor.verdict
            for name, monitor in self._monitors.items()
        }

    @property
    def lossy(self) -> bool:
        """Were the member monitors created in lossy-stream mode?"""
        return self._lossy

    def __len__(self) -> int:
        return len(self._monitors)

    def __getitem__(self, name: str) -> OnlineConjunctiveMonitor:
        return self._monitors[name]
