"""Online (streaming) predicate monitors."""

from repro.monitor import recovery
from repro.monitor.multiplex import MonitorGroup
from repro.monitor.online import MonitorError, OnlineConjunctiveMonitor

__all__ = [
    "MonitorError",
    "MonitorGroup",
    "OnlineConjunctiveMonitor",
    "recovery",
]
