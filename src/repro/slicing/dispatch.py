"""Slice-first dispatch: conjunctive over-approximation as a universal pruner.

``possibly``/``definitely`` of an arbitrary predicate B are NP-hard, and
the enumeration engines pay for it by walking the full cut lattice.  The
slicing observation (Mittal & Garg's follow-up line, cs/0303010) is that
any *conjunctive* predicate B' weaker than B — ``B ⟹ B'`` — confines
every B-satisfying cut to the slice of B', a distributive sublattice
bracketed by ``round_up(⊥)`` and ``round_down(⊤)``.  Enumeration
restricted to that box is sound and complete for B, and often
exponentially smaller.

This module computes the over-approximation and wraps the enumeration
engines:

* :func:`conjunctive_approximation` — exact for conjunctive/local/1-CNF
  predicates; clause projection for CNF (single-process clauses survive,
  same-process clauses merge by conjunction, multi-process clauses are
  dropped — only ever *weakening* the predicate); per-process value-bound
  projection for relational sums and symmetric count predicates; ``None``
  when no useful approximation exists (the dispatcher then falls back to
  the unsliced engine, so slicing never costs correctness).
* :func:`sliced_possibly_enumerate` / :func:`sliced_definitely_enumerate`
  — the slice-first defaults for the enumeration paths of
  :mod:`repro.detection.api` (opt out with ``detect(..., slice=False)``).
  Both open an ``engine.slice`` span and report the box-volume
  contraction as the ``perf.slice.reduction`` gauge plus skipped work as
  the ``perf.slice.cuts_pruned`` counter.
* :func:`avoidance_bounds` — the same box for avoidance searches
  (``reachable_avoiding``): cuts outside the box can never satisfy the
  avoided predicate, so the search may skip their evaluation and
  short-circuit the moment it escapes above the box.

Detection modules are imported lazily inside functions: slicing sits
below :mod:`repro.detection` in the layering, and the lazy imports keep
``repro.slicing`` importable without dragging the engine stack in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.computation import Computation
from repro.obs import STATE, registry, span
from repro.obs.stats import StatCounters
from repro.predicates.base import GlobalPredicate
from repro.predicates.boolean import CNFPredicate, Clause
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import LocalPredicate
from repro.predicates.relational import RelationalSumPredicate, Relop
from repro.predicates.symmetric import SymmetricPredicate
from repro.slicing.slice import ConjunctiveSlice

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids the cycle
    from repro.detection.result import DetectionResult

__all__ = [
    "SliceInfo",
    "avoidance_bounds",
    "conjunctive_approximation",
    "slice_info",
    "sliced_definitely_enumerate",
    "sliced_possibly_enumerate",
]

Frontier = Tuple[int, ...]


# ----------------------------------------------------------------------
# Conjunctive over-approximation
# ----------------------------------------------------------------------
def _restrictive(
    computation: Computation, conjunct: LocalPredicate
) -> bool:
    """Does the conjunct reject at least one event of its process?

    Tautological conjuncts constrain nothing — the slice they induce is
    the full lattice — so the approximation drops them (which preserves
    equivalence, not just implication).
    """
    return any(
        not conjunct.holds_after(event)
        for event in computation.events_of(conjunct.process)
    )


def _from_cnf(
    computation: Computation, predicate: CNFPredicate
) -> Optional[Tuple[ConjunctivePredicate, bool]]:
    """Clause projection: keep single-process clauses, drop the rest.

    A clause whose literals all live on one process is itself a local
    predicate of that process; clauses sharing a process merge by
    conjunction into one :class:`LocalPredicate` (a conjunctive predicate
    carries at most one conjunct per process).  Multi-process clauses are
    dropped, which only weakens the predicate — exactly what an
    over-approximation may do.  Returns ``(approximation, exact)`` or
    None when no clause projects.
    """
    by_process: Dict[int, List[Clause]] = {}
    dropped = 0
    for cl in predicate.clauses:
        procs = cl.processes()
        if len(procs) == 1:
            (p,) = procs
            by_process.setdefault(p, []).append(cl)
        else:
            dropped += 1
    if not by_process:
        return None
    conjuncts: List[LocalPredicate] = []
    for p, cls in sorted(by_process.items()):

        def fn(event, _cls=tuple(cls)) -> bool:
            return all(
                any(lit.holds_after(event) for lit in c.literals)
                for c in _cls
            )

        conjunct = LocalPredicate(p, fn, f"cnf-projection@p{p}")
        if _restrictive(computation, conjunct):
            conjuncts.append(conjunct)
    if not conjuncts:
        return None
    return ConjunctivePredicate(conjuncts), dropped == 0


def _from_sum_interval(
    computation: Computation,
    variable: str,
    lo: Optional[int],
    hi: Optional[int],
    as_bool: bool,
) -> Optional[ConjunctivePredicate]:
    """Per-process value bounds for ``lo <= sum(variable) <= hi``.

    If the sum lies in ``[lo, hi]`` then each process's own value must lie
    in ``[lo - Σ_{q≠p} max_q, hi - Σ_{q≠p} min_q]`` — a local predicate
    per process.  Only restrictive conjuncts are kept; returns None when
    the interval constrains no process.
    """
    n = computation.num_processes

    def value_of(event) -> int:
        raw = event.value(variable, False if as_bool else 0)
        return int(bool(raw)) if as_bool else int(raw)

    mins: List[int] = []
    maxs: List[int] = []
    for p in range(n):
        values = [value_of(event) for event in computation.events_of(p)]
        mins.append(min(values))
        maxs.append(max(values))
    total_min, total_max = sum(mins), sum(maxs)
    conjuncts: List[LocalPredicate] = []
    for p in range(n):
        floor = None if lo is None else lo - (total_max - maxs[p])
        ceil = None if hi is None else hi - (total_min - mins[p])

        def fn(event, _lo=floor, _hi=ceil) -> bool:
            v = value_of(event)
            if _lo is not None and v < _lo:
                return False
            if _hi is not None and v > _hi:
                return False
            return True

        conjunct = LocalPredicate(p, fn, f"sum-bound@p{p}")
        if _restrictive(computation, conjunct):
            conjuncts.append(conjunct)
    if not conjuncts:
        return None
    return ConjunctivePredicate(conjuncts)


def _sum_interval(
    predicate: RelationalSumPredicate,
) -> Optional[Tuple[Optional[int], Optional[int]]]:
    """The interval of sums on which the relational predicate holds."""
    k = predicate.constant
    relop = predicate.relop
    if relop is Relop.LT:
        return None, k - 1
    if relop is Relop.LE:
        return None, k
    if relop is Relop.GT:
        return k + 1, None
    if relop is Relop.GE:
        return k, None
    if relop is Relop.EQ:
        return k, k
    return None  # NE constrains no per-process interval


def conjunctive_approximation(
    computation: Computation,
    predicate: GlobalPredicate,
    infer: bool = True,
) -> Optional[Tuple[ConjunctivePredicate, bool]]:
    """A conjunctive B' with ``B ⟹ B'``, or None when none is useful.

    Returns ``(approximation, exact)``; ``exact`` means B' is equivalent
    to B, so the slice contains *exactly* the satisfying cuts.  A useless
    approximation (every conjunct tautological — the slice would be the
    whole lattice) reports None, which the dispatchers treat as "run the
    unsliced engine".

    When ``infer`` is True (the default) an opaque predicate with no
    structural approximation is handed to the static classifier
    (:mod:`repro.analysis.classify`); a differentially validated
    certificate's conjunctive over-approximation bounds the enumeration
    box exactly like a structural one.
    """
    if isinstance(predicate, ConjunctivePredicate):
        return predicate, True
    if isinstance(predicate, LocalPredicate):
        return ConjunctivePredicate([predicate]), True
    if isinstance(predicate, CNFPredicate):
        return _from_cnf(computation, predicate)
    if isinstance(predicate, RelationalSumPredicate):
        interval = _sum_interval(predicate)
        if interval is None:
            return None
        approx = _from_sum_interval(
            computation, predicate.variable, *interval, as_bool=False
        )
        return None if approx is None else (approx, False)
    if isinstance(predicate, SymmetricPredicate):
        if not predicate.counts:
            # Empty count set: the predicate holds nowhere; any
            # unsatisfiable conjunct makes the slice (correctly) empty.
            never = LocalPredicate(0, lambda event: False, "false")
            return ConjunctivePredicate([never]), True
        lo, hi = min(predicate.counts), max(predicate.counts)
        approx = _from_sum_interval(
            computation, predicate.variable, lo, hi, as_bool=True
        )
        if approx is None:
            return None
        exact = predicate.counts == frozenset(range(lo, hi + 1))
        return approx, exact
    if infer:
        return _inferred_approximation(computation, predicate)
    return None


def _inferred_approximation(
    computation: Computation, predicate: GlobalPredicate
) -> Optional[Tuple[ConjunctivePredicate, bool]]:
    """Classifier-inferred over-approximation for opaque predicates.

    Tautological conjuncts are dropped (preserving equivalence, so the
    certificate's ``exact`` flag survives the filter); None when the
    classifier finds nothing or nothing restrictive remains.
    """
    from repro.analysis.classify import cached_approximation

    inferred = cached_approximation(predicate, computation)
    if inferred is None:
        return None
    approximation, exact = inferred
    conjuncts = [
        c
        for c in approximation.conjuncts
        if _restrictive(computation, c)
    ]
    if not conjuncts:
        return None
    return ConjunctivePredicate(conjuncts), exact


# ----------------------------------------------------------------------
# Slice handles
# ----------------------------------------------------------------------
@dataclass
class SliceInfo:
    """One predicate's slice handle: approximation, slice, and box."""

    computation: Computation
    predicate: GlobalPredicate
    approximation: Optional[ConjunctivePredicate]
    exact: bool
    slice: Optional[ConjunctiveSlice]

    @property
    def useful(self) -> bool:
        """Did a non-trivial conjunctive over-approximation exist?"""
        return self.slice is not None

    @property
    def empty(self) -> bool:
        """True iff the slice (hence the satisfying-cut set) is empty."""
        return self.slice is not None and self.slice.empty

    @property
    def bounds(self) -> Optional[Tuple[Frontier, Frontier]]:
        """``(least, greatest)`` frontier tuples, or None when unusable."""
        if self.slice is None:
            return None
        return self.slice.bounds_frontiers()

    def reduction(self) -> float:
        """Frontier-space contraction factor of the slice bounding box.

        The ratio of the full frontier-space volume (product of the
        per-process event counts) to the box volume; 1.0 when slicing was
        not useful, the full volume when the slice is empty (the whole
        lattice is skipped).
        """
        lengths = [
            len(self.computation.events_of(p))
            for p in range(self.computation.num_processes)
        ]
        full = 1.0
        for length in lengths:
            full *= length
        if self.slice is None:
            return 1.0
        bounds = self.slice.bounds_frontiers()
        if bounds is None:
            return full
        least, greatest = bounds
        box = 1.0
        for lo, hi in zip(least, greatest):
            box *= hi - lo + 1
        return full / box


def slice_info(
    computation: Computation,
    predicate: GlobalPredicate,
    infer: bool = True,
) -> SliceInfo:
    """Compute the predicate's conjunctive approximation and its slice."""
    approx = conjunctive_approximation(computation, predicate, infer=infer)
    if approx is None:
        return SliceInfo(computation, predicate, None, False, None)
    approximation, exact = approx
    return SliceInfo(
        computation,
        predicate,
        approximation,
        exact,
        ConjunctiveSlice(computation, approximation),
    )


def avoidance_bounds(
    computation: Computation, predicate: GlobalPredicate
) -> Tuple[bool, Optional[Tuple[Frontier, Frontier]]]:
    """``(trivially_avoidable, bounds)`` for an avoidance search over B.

    When the slice of B's over-approximation is empty, B holds on *no*
    cut: every run avoids it and the search may be skipped outright
    (first component True).  Otherwise the bounds (when available) let
    :func:`repro.computation.lattice.reachable_avoiding` skip evaluating
    B outside the box and short-circuit above it.
    """
    info = slice_info(computation, predicate)
    if not info.useful:
        return False, None
    if info.empty:
        return True, None
    return False, info.bounds


# ----------------------------------------------------------------------
# Slice-first enumeration engines
# ----------------------------------------------------------------------
def _emit_slice_metrics(reduction: float, pruned: int) -> None:
    if not STATE.enabled:
        return
    registry().gauge("perf.slice.reduction").set(reduction)
    if pruned:
        registry().counter("perf.slice.cuts_pruned").inc(pruned)


def _empty_slice_result(info: SliceInfo, sp) -> "DetectionResult":
    from repro.detection.result import DetectionResult

    reduction = info.reduction()
    stats = StatCounters("engine.slice")
    stats.inc("cuts_explored", 0)
    stats.inc("cuts_pruned", 0)
    stats.set("reduction", reduction)
    sp.set(empty=True, holds=False, reduction=reduction)
    _emit_slice_metrics(reduction, 0)
    return DetectionResult(
        holds=False, algorithm="slice", stats=stats.as_dict()
    )


def sliced_possibly_enumerate(
    computation: Computation,
    predicate: GlobalPredicate,
    infer: bool = True,
) -> "DetectionResult":
    """``possibly(B)`` by enumeration restricted to B's slice box.

    Slice-first default for the enumeration fallback of
    :func:`repro.detection.api.possibly`.  Falls back to the unsliced
    Cooper–Marzullo engine when no useful approximation exists; an empty
    slice answers False without touching the lattice.  The witness (when
    found) is a minimum-size satisfying cut — the same guarantee the
    unsliced level-order BFS gives.
    """
    from repro.detection.cooper_marzullo import possibly_enumerate
    from repro.detection.result import DetectionResult

    info = slice_info(computation, predicate, infer=infer)
    if not info.useful:
        return possibly_enumerate(computation, predicate)
    with span("engine.slice", modality="possibly", exact=info.exact) as sp:
        if info.empty:
            return _empty_slice_result(info, sp)
        inner = possibly_enumerate(computation, predicate, bounds=info.bounds)
        reduction = info.reduction()
        pruned = int(inner.stats.get("cuts_pruned", 0))
        stats = dict(inner.stats)
        stats["reduction"] = reduction
        sp.set(
            holds=inner.holds,
            cuts_explored=stats.get("cuts_explored"),
            reduction=reduction,
        )
        _emit_slice_metrics(reduction, pruned)
        return DetectionResult(
            holds=inner.holds,
            witness=inner.witness,
            algorithm="slice:" + inner.algorithm,
            stats=stats,
        )


def sliced_definitely_enumerate(
    computation: Computation,
    predicate: GlobalPredicate,
    infer: bool = True,
) -> "DetectionResult":
    """``definitely(B)`` by avoidance search with slice-box pruning.

    Cuts outside the box cannot satisfy B, so the search never evaluates
    B on them; the moment the search climbs above the box it knows an
    avoiding run exists (every later cut of any extension stays outside)
    and answers False immediately.  Falls back unsliced when no useful
    approximation exists; an empty slice answers False outright (no cut
    satisfies B, so every run avoids it).
    """
    from repro.detection.cooper_marzullo import definitely_enumerate
    from repro.detection.result import DetectionResult

    info = slice_info(computation, predicate, infer=infer)
    if not info.useful:
        return definitely_enumerate(computation, predicate)
    with span(
        "engine.slice", modality="definitely", exact=info.exact
    ) as sp:
        if info.empty:
            return _empty_slice_result(info, sp)
        inner = definitely_enumerate(
            computation, predicate, bounds=info.bounds
        )
        reduction = info.reduction()
        pruned = int(inner.stats.get("cuts_pruned", 0))
        stats = dict(inner.stats)
        stats["reduction"] = reduction
        sp.set(
            holds=inner.holds,
            cuts_explored=stats.get("cuts_explored"),
            reduction=reduction,
        )
        _emit_slice_metrics(reduction, pruned)
        return DetectionResult(
            holds=inner.holds,
            witness=inner.witness,
            algorithm="slice:" + inner.algorithm,
            stats=stats,
        )
