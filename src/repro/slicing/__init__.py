"""Computation slicing (the follow-up line to the paper's algorithms)."""

from repro.slicing.slice import ConjunctiveSlice

__all__ = ["ConjunctiveSlice"]
