"""Computation slicing (the follow-up line to the paper's algorithms)."""

from repro.slicing.dispatch import (
    SliceInfo,
    avoidance_bounds,
    conjunctive_approximation,
    slice_info,
    sliced_definitely_enumerate,
    sliced_possibly_enumerate,
)
from repro.slicing.slice import ConjunctiveSlice

__all__ = [
    "ConjunctiveSlice",
    "SliceInfo",
    "avoidance_bounds",
    "conjunctive_approximation",
    "slice_info",
    "sliced_definitely_enumerate",
    "sliced_possibly_enumerate",
]
