"""Computation slicing for conjunctive (regular) predicates.

A *slice* of a computation with respect to a predicate B is a compact
representation of exactly the consistent cuts satisfying B.  For
*conjunctive* predicates the satisfying cuts are closed under union and
intersection (the frontier of a union/intersection is, per process, the
frontier event of one of the operands), so they form a distributive
sublattice of the cut lattice — the key structural fact behind the
slicing line of work that grew out of this paper (Mittal & Garg).

:class:`ConjunctiveSlice` materializes that sublattice lazily:

* emptiness, the least and the greatest satisfying cut, in polynomial time
  (the least via the CPDHB scan run forward, the greatest via the scan on
  the reversed computation);
* membership tests, and *rounding*: the least satisfying cut above a given
  consistent cut (or None), again polynomial;
* enumeration and counting of all satisfying cuts by breadth-first search
  inside the sublattice (output-sensitive: linear in the number of
  satisfying cuts times polynomial factors — exponentially better than
  filtering the full lattice when B is selective).

Every operation is cross-checked against brute-force lattice filtering in
the tests.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set

from repro.computation import Computation, Cut
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import LocalPredicate, true_events

__all__ = ["ConjunctiveSlice"]


class ConjunctiveSlice:
    """The sublattice of consistent cuts satisfying a conjunctive predicate.

    Args:
        computation: The trace.
        predicate: The conjunctive predicate (processes without a conjunct
            are unconstrained).
    """

    def __init__(self, computation: Computation, predicate: ConjunctivePredicate):
        self._comp = computation
        self._pred = predicate
        self._conjunct_of: Dict[int, LocalPredicate] = {
            conj.process: conj for conj in predicate.conjuncts
        }
        #: Per constrained process, indices (counting initial) of its true
        #: events, ascending.
        self._true_indices: Dict[int, List[int]] = {}
        for p, conj in self._conjunct_of.items():
            self._true_indices[p] = [
                eid[1] for eid in true_events(computation, conj)
            ]
        self._least: Optional[Cut] = None
        self._greatest: Optional[Cut] = None
        self._bounds_computed = False

    # ------------------------------------------------------------------
    # Membership and rounding
    # ------------------------------------------------------------------
    def satisfies(self, cut: Cut) -> bool:
        """Does the (consistent) cut belong to the slice?"""
        return self._pred.evaluate(cut)

    def round_up(self, cut: Cut) -> Optional[Cut]:
        """Least satisfying consistent cut that contains ``cut``.

        Returns None when no satisfying cut lies above.  The rounding loop
        alternates two closures until a fixpoint: advance every constrained
        process to its next true event at-or-after the current frontier,
        and restore consistency by pulling in causal pasts.  Both closures
        only ever move frontiers up, and the target (if any) is above every
        intermediate cut, so the fixpoint is the least satisfying cut.
        """
        comp = self._comp
        frontier = list(cut.frontier)
        changed = True
        while changed:
            changed = False
            # Predicate closure: land every constrained frontier on a true
            # event at or after its current position.
            for p, indices in self._true_indices.items():
                current = frontier[p] - 1
                if current in indices:
                    continue
                nxt = next((i for i in indices if i >= current), None)
                if nxt is None:
                    return None  # no later true event: nothing above works
                frontier[p] = nxt + 1
                changed = True
            # Consistency closure: include causal pasts of frontier events.
            stable = False
            while not stable:
                stable = True
                for p in range(comp.num_processes):
                    if frontier[p] == 1:
                        continue
                    clk = comp.clock((p, frontier[p] - 1))
                    for q in range(comp.num_processes):
                        if clk[q] > frontier[q]:
                            frontier[q] = clk[q]
                            stable = False
                            changed = True
        result = Cut(comp, frontier)
        assert result.is_consistent()
        if not self._pred.evaluate(result):  # pragma: no cover - invariant
            raise AssertionError("rounding fixpoint must satisfy the predicate")
        return result

    # ------------------------------------------------------------------
    # Extremes
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """True iff no consistent cut satisfies the predicate."""
        self._compute_bounds()
        return self._least is None

    @property
    def least(self) -> Optional[Cut]:
        """The smallest satisfying cut (None when the slice is empty)."""
        self._compute_bounds()
        return self._least

    @property
    def greatest(self) -> Optional[Cut]:
        """The largest satisfying cut (None when the slice is empty)."""
        self._compute_bounds()
        return self._greatest

    def _compute_bounds(self) -> None:
        if self._bounds_computed:
            return
        self._bounds_computed = True
        from repro.computation import initial_cut

        self._least = self.round_up(initial_cut(self._comp))
        if self._least is None:
            return
        self._greatest = self._greatest_cut()

    def _greatest_cut(self) -> Cut:
        """Largest satisfying cut: the dual rounding from the final cut."""
        from repro.computation import final_cut

        result = self.round_down(final_cut(self._comp))
        assert result is not None, "a non-empty slice must have a greatest cut"
        return result

    def round_down(self, cut: Cut) -> Optional[Cut]:
        """Greatest satisfying consistent cut contained in ``cut``.

        The dual of :meth:`round_up`: lower every constrained process to
        its last true event at-or-before the current frontier, and restore
        consistency by *lowering* any process whose frontier event's causal
        past sticks out of the cut.  Both moves only go down and every
        satisfying cut below the start is below every intermediate cut, so
        the fixpoint is the greatest satisfying cut below — or None when a
        constrained process runs out of true events.
        """
        comp = self._comp
        frontier = list(cut.frontier)
        changed = True
        while changed:
            changed = False
            for p, indices in self._true_indices.items():
                current = frontier[p] - 1
                if current in indices:
                    continue
                prev = next(
                    (i for i in reversed(indices) if i <= current), None
                )
                if prev is None:
                    return None  # no earlier true event: nothing below works
                frontier[p] = prev + 1
                changed = True
            stable = False
            while not stable:
                stable = True
                for p in range(comp.num_processes):
                    while frontier[p] > 1:
                        clk = comp.clock((p, frontier[p] - 1))
                        if all(
                            clk[q] <= frontier[q]
                            for q in range(comp.num_processes)
                        ):
                            break
                        frontier[p] -= 1
                        stable = False
                        changed = True
        result = Cut(comp, frontier)
        assert result.is_consistent()
        if not self._pred.evaluate(result):  # pragma: no cover - invariant
            raise AssertionError("rounding fixpoint must satisfy the predicate")
        return result

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Cut]:
        """All satisfying cuts, in non-decreasing size order."""
        least = self.least
        if least is None:
            return
        seen: Set[Cut] = {least}
        queue: deque[Cut] = deque([least])
        while queue:
            cut = queue.popleft()
            yield cut
            for nxt in self._slice_successors(cut):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)

    def _slice_successors(self, cut: Cut) -> Iterator[Cut]:
        """Satisfying cuts reached by one minimal advance inside the slice.

        For each process p, advance p past its current frontier and round
        up; the results generate the sublattice above ``cut`` (every
        satisfying D > C dominates C advanced on some process, and
        rounding that advance yields a satisfying cut <= D).
        """
        comp = self._comp
        for p in range(comp.num_processes):
            if cut.frontier[p] >= len(comp.events_of(p)):
                continue
            bumped = list(cut.frontier)
            bumped[p] += 1
            rounded = self.round_up(Cut(comp, bumped))
            if rounded is not None:
                yield rounded

    def count(self) -> int:
        """Number of satisfying cuts (output-sensitive enumeration)."""
        return sum(1 for _ in self)

    def __contains__(self, cut: Cut) -> bool:
        return cut.is_consistent() and self.satisfies(cut)
