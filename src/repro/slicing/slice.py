"""Computation slicing for conjunctive (regular) predicates.

A *slice* of a computation with respect to a predicate B is a compact
representation of exactly the consistent cuts satisfying B.  For
*conjunctive* predicates the satisfying cuts are closed under union and
intersection (the frontier of a union/intersection is, per process, the
frontier event of one of the operands), so they form a distributive
sublattice of the cut lattice — the key structural fact behind the
slicing line of work that grew out of this paper (Mittal & Garg).

:class:`ConjunctiveSlice` materializes that sublattice lazily:

* emptiness, the least and the greatest satisfying cut, in polynomial time
  (the least via the CPDHB scan run forward, the greatest via the scan on
  the reversed computation);
* membership tests, and *rounding*: the least satisfying cut above a given
  cut (or None), again polynomial — the input need **not** be consistent,
  see :meth:`round_up`;
* enumeration and counting of all satisfying cuts in non-decreasing
  ``(size, frontier)`` order (output-sensitive: linear in the number of
  satisfying cuts times polynomial factors — exponentially better than
  filtering the full lattice when B is selective).

The hot paths lean on :class:`~repro.perf.causality.CausalityIndex`: the
rounding closures read raw vector-clock tuples, enumeration tracks plain
frontier tuples in its visited set (no per-cut ``Cut`` retention), and
yielded cuts come out of the computation's shared
:class:`~repro.perf.interning.CutInterner`.  Rounding steps locate true
events with :func:`bisect.bisect_left` over the ascending per-process
index lists, so each closure pass is O(log t) per process rather than a
linear scan.

Every operation is cross-checked against brute-force lattice filtering in
the tests.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from heapq import heappop, heappush
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.computation import Computation, Cut
from repro.obs.progress import tracker
from repro.perf import CausalityIndex
from repro.predicates.conjunctive import ConjunctivePredicate
from repro.predicates.local import LocalPredicate, true_events

__all__ = ["ConjunctiveSlice"]

Frontier = Tuple[int, ...]


class ConjunctiveSlice:
    """The sublattice of consistent cuts satisfying a conjunctive predicate.

    Args:
        computation: The trace.
        predicate: The conjunctive predicate (processes without a conjunct
            are unconstrained).
    """

    def __init__(self, computation: Computation, predicate: ConjunctivePredicate):
        self._comp = computation
        self._pred = predicate
        self._index = CausalityIndex.of(computation)
        self._conjunct_of: Dict[int, LocalPredicate] = {
            conj.process: conj for conj in predicate.conjuncts
        }
        #: Per constrained process, indices (counting initial) of its true
        #: events, ascending — the bisect universe of the rounding closures.
        self._true_indices: Dict[int, List[int]] = {}
        for p, conj in self._conjunct_of.items():
            self._true_indices[p] = [
                eid[1] for eid in true_events(computation, conj)
            ]
        self._least_fr: Optional[Frontier] = None
        self._greatest_fr: Optional[Frontier] = None
        self._bounds_computed = False

    # ------------------------------------------------------------------
    # Membership and rounding
    # ------------------------------------------------------------------
    def satisfies(self, cut: Cut) -> bool:
        """Does the (consistent) cut belong to the slice?"""
        return self._pred.evaluate(cut)

    def round_up(self, cut: Cut) -> Optional[Cut]:
        """Least satisfying consistent cut that contains ``cut``.

        The input need **not** be consistent: rounding starts with a
        consistency closure (pulling the causal past of every frontier
        event into the cut), then alternates two monotone closures until a
        fixpoint — advance every constrained process to its next true
        event at-or-after the current frontier, and restore consistency.
        Both closures only ever move frontiers up, and every satisfying
        cut above the input is above every intermediate cut, so the
        fixpoint is the least satisfying cut above the input's consistency
        closure.  This widened contract is what :meth:`_slice_successors`
        relies on: bumping a single process past a frontier may break
        consistency (the bumped event can be a receive whose send is not
        in the cut), and the closure-first guarantee makes that safe.

        Returns None when no satisfying cut lies above.
        """
        frontier = self._round_up_frontier(list(cut.frontier))
        if frontier is None:
            return None
        result = self._index.interner.get(frontier)
        assert result.is_consistent()
        if not self._pred.evaluate(result):  # pragma: no cover - invariant
            raise AssertionError("rounding fixpoint must satisfy the predicate")
        return result

    def _round_up_frontier(self, frontier: List[int]) -> Optional[Frontier]:
        """Tuple-level :meth:`round_up`: mutates ``frontier``, no ``Cut``."""
        n = self._index.num_processes
        clk_all = self._index._clk
        changed = True
        while changed:
            changed = False
            # Consistency closure first (the widened-contract guarantee):
            # include causal pasts of frontier events, via raw clock rows.
            stable = False
            while not stable:
                stable = True
                for p in range(n):
                    if frontier[p] == 1:
                        continue
                    clk = clk_all[p][frontier[p] - 1]
                    for q in range(n):
                        if clk[q] > frontier[q]:
                            frontier[q] = clk[q]
                            stable = False
                            changed = True
            # Predicate closure: land every constrained frontier on a true
            # event at or after its current position (bisect, not a scan).
            for p, indices in self._true_indices.items():
                current = frontier[p] - 1
                pos = bisect_left(indices, current)
                if pos == len(indices):
                    return None  # no later true event: nothing above works
                nxt = indices[pos]
                if nxt != current:
                    frontier[p] = nxt + 1
                    changed = True
        return tuple(frontier)

    # ------------------------------------------------------------------
    # Extremes
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """True iff no consistent cut satisfies the predicate."""
        self._compute_bounds()
        return self._least_fr is None

    @property
    def least(self) -> Optional[Cut]:
        """The smallest satisfying cut (None when the slice is empty)."""
        self._compute_bounds()
        if self._least_fr is None:
            return None
        return self._index.interner.get(self._least_fr)

    @property
    def greatest(self) -> Optional[Cut]:
        """The largest satisfying cut (None when the slice is empty)."""
        self._compute_bounds()
        if self._greatest_fr is None:
            return None
        return self._index.interner.get(self._greatest_fr)

    def bounds_frontiers(self) -> Optional[Tuple[Frontier, Frontier]]:
        """``(least, greatest)`` as raw frontier tuples, or None when empty.

        The pair bounds the box every satisfying cut lives in — the handle
        the sliced BFS engines (see :mod:`repro.slicing.dispatch`) use to
        prune out-of-slice cuts without constructing them.
        """
        self._compute_bounds()
        if self._least_fr is None:
            return None
        assert self._greatest_fr is not None
        return self._least_fr, self._greatest_fr

    def _compute_bounds(self) -> None:
        if self._bounds_computed:
            return
        self._bounds_computed = True
        n = self._index.num_processes
        self._least_fr = self._round_up_frontier([1] * n)
        if self._least_fr is None:
            return
        self._greatest_fr = self._round_down_frontier(
            list(self._index._lengths)
        )
        assert (
            self._greatest_fr is not None
        ), "a non-empty slice must have a greatest cut"

    def round_down(self, cut: Cut) -> Optional[Cut]:
        """Greatest satisfying consistent cut contained in ``cut``.

        The dual of :meth:`round_up` (and with the same widened contract —
        the input need not be consistent): lower every constrained process
        to its last true event at-or-before the current frontier, and
        restore consistency by *lowering* any process whose frontier
        event's causal past sticks out of the cut.  Both moves only go
        down and every satisfying cut below the input is below every
        intermediate cut, so the fixpoint is the greatest satisfying cut
        below — or None when a constrained process runs out of true
        events.
        """
        frontier = self._round_down_frontier(list(cut.frontier))
        if frontier is None:
            return None
        result = self._index.interner.get(frontier)
        assert result.is_consistent()
        if not self._pred.evaluate(result):  # pragma: no cover - invariant
            raise AssertionError("rounding fixpoint must satisfy the predicate")
        return result

    def _round_down_frontier(self, frontier: List[int]) -> Optional[Frontier]:
        """Tuple-level :meth:`round_down`: mutates ``frontier``, no ``Cut``."""
        n = self._index.num_processes
        clk_all = self._index._clk
        changed = True
        while changed:
            changed = False
            # Predicate closure: last true event at-or-before, by bisect.
            for p, indices in self._true_indices.items():
                current = frontier[p] - 1
                pos = bisect_right(indices, current) - 1
                if pos < 0:
                    return None  # no earlier true event: nothing below works
                prev = indices[pos]
                if prev != current:
                    frontier[p] = prev + 1
                    changed = True
            # Consistency closure: retreat any process whose frontier
            # event's causal past sticks out of the cut.
            stable = False
            while not stable:
                stable = True
                for p in range(n):
                    while frontier[p] > 1:
                        clk = clk_all[p][frontier[p] - 1]
                        if all(clk[q] <= frontier[q] for q in range(n)):
                            break
                        frontier[p] -= 1
                        stable = False
                        changed = True
        return tuple(frontier)

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Cut]:
        """All satisfying cuts, in non-decreasing ``(size, frontier)`` order.

        Yields interned cuts; the visited set holds plain frontier tuples
        (shared with the computation's interner keys), never ``Cut``
        objects, so a large slice costs one tuple per member — not a
        retained ``Cut`` graph.
        """
        interner = self._index.interner
        for frontier in self._iter_frontiers():
            yield interner.get(frontier)

    def _iter_frontiers(self) -> Iterator[Frontier]:
        """Tuple-level enumeration backing :meth:`__iter__` and :meth:`count`.

        A best-first walk over the sublattice: successors always have
        strictly larger size (a bump plus an upward rounding), so a heap
        keyed by ``(size, frontier)`` yields members in canonical
        non-decreasing size order.
        """
        self._compute_bounds()
        least = self._least_fr
        if least is None:
            return
        trk = tracker("slice.cuts", check_every=64)
        seen: Set[Frontier] = {least}
        heap: List[Tuple[int, Frontier]] = [(sum(least), least)]
        while heap:
            _, frontier = heappop(heap)
            trk.step()
            yield frontier
            for nxt in self._slice_successor_frontiers(frontier):
                if nxt not in seen:
                    seen.add(nxt)
                    heappush(heap, (sum(nxt), nxt))

    def _slice_successors(self, cut: Cut) -> Iterator[Cut]:
        """Satisfying cuts reached by one minimal advance inside the slice.

        For each process p, advance p past its current frontier and round
        up; the results generate the sublattice above ``cut`` (every
        satisfying D > C dominates C advanced on some process, and
        rounding that advance yields a satisfying cut <= D).  The bumped
        frontier may be inconsistent — :meth:`round_up`'s
        consistency-closure-first contract covers exactly this call.
        """
        interner = self._index.interner
        for frontier in self._slice_successor_frontiers(cut.frontier):
            yield interner.get(frontier)

    def _slice_successor_frontiers(
        self, frontier: Frontier
    ) -> Iterator[Frontier]:
        lengths = self._index._lengths
        for p in range(self._index.num_processes):
            if frontier[p] >= lengths[p]:
                continue
            bumped = list(frontier)
            bumped[p] += 1
            rounded = self._round_up_frontier(bumped)
            if rounded is not None:
                yield rounded

    def count(self) -> int:
        """Number of satisfying cuts (output-sensitive enumeration)."""
        return sum(1 for _ in self._iter_frontiers())

    def __contains__(self, cut: Cut) -> bool:
        return cut.is_consistent() and self.satisfies(cut)
