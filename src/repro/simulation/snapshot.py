"""Chandy–Lamport distributed snapshots on the simulator.

The classical online algorithm for *stable* predicate detection (the
lineage cell of the paper's Figure 1): an initiator records its local
state and floods MARKER messages; every process records its state on the
first marker and relays markers; channel states are the messages received
between recording and the marker's arrival on each channel.

:class:`SnapshotAdapter` wraps any application program with the marker
protocol (FIFO channels required — use
:class:`~repro.simulation.channels.FIFODelayChannel`).  The recorded
snapshot identifies, per process, *how many events it had executed* when
it recorded — i.e. a frontier vector.  The celebrated correctness theorem
says that frontier is a **consistent cut** of the underlying computation;
the tests assert exactly that via
:meth:`repro.computation.Cut.is_consistent`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.computation import Computation, Cut
from repro.simulation.process import Message, ProcessContext, ProcessProgram

__all__ = ["SnapshotAdapter", "snapshot_cut"]

_MARKER = "__chandy_lamport_marker__"


class SnapshotAdapter(ProcessProgram):
    """Wraps an application program with the Chandy–Lamport marker protocol.

    Args:
        inner: The application program.
        num_processes: Total process count (markers flood to everyone).
        initiate_at: Simulated time at which *this* process spontaneously
            initiates a snapshot (None = never; exactly one process should
            initiate in a single-snapshot run).

    After the run, :attr:`recorded_event_count` holds the number of
    non-initial events this process had executed when it recorded its
    state, :attr:`recorded_values` the local variable values at that
    moment, and :attr:`channel_states` the in-flight messages recorded per
    incoming channel.
    """

    def __init__(
        self,
        inner: ProcessProgram,
        num_processes: int,
        initiate_at: Optional[float] = None,
    ):
        self._inner = inner
        self._n = num_processes
        self._initiate_at = initiate_at
        self._events = 0
        self._recorded = False
        self.recorded_event_count: Optional[int] = None
        self.recorded_values: Optional[Dict[str, Any]] = None
        #: Per source process: messages recorded as "in the channel".
        self.channel_states: Dict[int, List[Any]] = {}
        self._channel_open: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Marker protocol
    # ------------------------------------------------------------------
    def _record(self, ctx: ProcessContext) -> None:
        """Record local state and start monitoring incoming channels."""
        self._recorded = True
        # The event currently being executed has not completed yet, so the
        # recorded frontier counts only prior events.
        self.recorded_event_count = self._events
        self.recorded_values = ctx.all_values()
        for src in range(self._n):
            if src != ctx.process_id:
                self._channel_open[src] = True
                self.channel_states[src] = []
        for dst in range(self._n):
            if dst != ctx.process_id:
                ctx.send(dst, _MARKER)

    # ------------------------------------------------------------------
    # ProcessProgram interface
    # ------------------------------------------------------------------
    def on_init(self, ctx: ProcessContext) -> None:
        self._inner.on_init(ctx)

    def on_start(self, ctx: ProcessContext) -> None:
        self._inner.on_start(ctx)
        if self._initiate_at is not None:
            ctx.set_timer(self._initiate_at, _MARKER)
        self._events += 1

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        if name == _MARKER:
            if not self._recorded:
                self._record(ctx)
            self._events += 1
            return
        self._inner.on_timer(ctx, name)
        self._events += 1

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        if message.payload == _MARKER:
            if not self._recorded:
                # First marker: record; this channel's state is empty.
                self._record(ctx)
            self._channel_open[message.source] = False
            self._events += 1
            return
        if self._recorded and self._channel_open.get(message.source, False):
            self.channel_states[message.source].append(message.payload)
        self._inner.on_message(ctx, message)
        self._events += 1


def snapshot_cut(
    computation: Computation, adapters: List[SnapshotAdapter]
) -> Cut:
    """The global cut the snapshot recorded.

    Every adapter must have recorded (run the simulation long enough).
    Returns the frontier cut; the Chandy–Lamport theorem promises it is
    consistent, which callers (and our tests) can assert via
    :meth:`~repro.computation.Cut.is_consistent`.
    """
    frontier: List[int] = []
    for p, adapter in enumerate(adapters):
        if adapter.recorded_event_count is None:
            raise ValueError(f"process {p} never recorded its state")
        frontier.append(adapter.recorded_event_count + 1)
    return Cut(computation, frontier)
