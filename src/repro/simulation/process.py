"""Process programming model for the simulator.

A simulated process is a :class:`ProcessProgram` subclass.  The simulator
invokes its callbacks; every callback invocation becomes exactly one event
of the recorded computation, whose kind is derived from what the callback
did (received a message / sent messages / neither).

Callbacks interact with the world only through the :class:`ProcessContext`
they are handed — sending messages, arming timers, updating the monitored
local variables that global predicates later read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Message", "ProcessContext", "ProcessProgram"]


@dataclass(frozen=True)
class Message:
    """A message in flight or being delivered.

    Attributes:
        source: Sending process.
        destination: Receiving process.
        payload: Arbitrary application data (kept immutable by convention).
    """

    source: int
    destination: int
    payload: Any


class ProcessContext:
    """Capabilities available to a process callback.

    Created fresh by the simulator for each callback invocation; the
    messages sent and values updated during the invocation are collected
    and turned into one trace event.
    """

    def __init__(
        self,
        process_id: int,
        now: float,
        rng: random.Random,
        values: Dict[str, Any],
        num_processes: int,
    ):
        self.process_id = process_id
        self.now = now
        self.random = rng
        self.num_processes = num_processes
        self._values = values
        self.sent: List[Message] = []
        self.timers: List[Tuple[float, str]] = []
        self.stopped = False

    def send(self, destination: int, payload: Any) -> None:
        """Send a message (delivery time decided by the channel model)."""
        if not 0 <= destination < self.num_processes:
            raise ValueError(f"destination {destination} out of range")
        if destination == self.process_id:
            raise ValueError("self-sends are not modelled; use a timer")
        self.sent.append(Message(self.process_id, destination, payload))

    def set_timer(self, delay: float, name: str = "timer") -> None:
        """Arm a local timer firing after ``delay`` simulated time units."""
        if delay <= 0:
            raise ValueError("timer delay must be positive")
        self.timers.append((delay, name))

    def set_value(self, name: str, value: Any) -> None:
        """Update a monitored local variable (read by global predicates)."""
        self._values[name] = value

    def get_value(self, name: str, default: Any = None) -> Any:
        """Current value of a monitored local variable."""
        return self._values.get(name, default)

    def all_values(self) -> Dict[str, Any]:
        """Snapshot (copy) of all monitored local variables."""
        return dict(self._values)

    def stop(self) -> None:
        """Ask the simulator to ignore future deliveries to this process."""
        self.stopped = True


class ProcessProgram:
    """Base class for simulated processes.  Override the callbacks you need.

    Lifecycle: ``on_init`` (sets initial variable values; produces no
    event), then ``on_start`` at time 0 (one event), then ``on_message`` /
    ``on_timer`` as deliveries and timers fire.
    """

    def on_init(self, ctx: ProcessContext) -> None:
        """Set initial monitored values.  Must not send or arm timers."""

    def on_start(self, ctx: ProcessContext) -> None:
        """First action of the process at simulated time 0."""

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        """A message was delivered to this process."""

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        """A previously armed timer fired."""

    def on_restart(self, ctx: ProcessContext) -> None:
        """The process recovered from a crash (fault injection only).

        Called when a :class:`~repro.simulation.faults.CrashSpec` with a
        restart time fires; the invocation records the first event of the
        process's new epoch.  Volatile state did not survive the crash:
        timers armed before the crash never fire, and deliveries that
        arrived while the process was down were lost.  Override to model
        what recovery looks like for the protocol — resetting in-memory
        structures, re-announcing presence, re-arming timers.  Monitored
        variable values persist in the trace unless explicitly reset here.
        """
