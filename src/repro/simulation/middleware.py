"""Vector-clock middleware for simulated protocols.

Wraps any :class:`~repro.simulation.process.ProcessProgram` so that every
message piggybacks the sender's Fidge–Mattern vector clock and every
process maintains its own clock online — exactly how a deployed
predicate-detection monitor timestamps events.  The recorded per-event
clocks are exposed for comparison against the offline clocks that
:class:`~repro.computation.Computation` computes from the trace; the tests
verify they agree, validating both implementations against each other.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.events import VectorClock
from repro.simulation.process import Message, ProcessContext, ProcessProgram

__all__ = ["ClockedMessage", "VectorClockMiddleware"]


class ClockedMessage:
    """Envelope carrying the application payload plus the sender's clock."""

    __slots__ = ("payload", "clock")

    def __init__(self, payload: Any, clock: VectorClock):
        self.payload = payload
        self.clock = clock


class VectorClockMiddleware(ProcessProgram):
    """Decorates a program with online vector-clock maintenance.

    The wrapped program sees plain payloads; the middleware unwraps
    envelopes on delivery and wraps sends.  After the simulation,
    :attr:`event_clocks` holds the clock of every event of this process, in
    local order (excluding the initial event).
    """

    def __init__(self, inner: ProcessProgram, num_processes: int):
        self._inner = inner
        self._n = num_processes
        self._clock: VectorClock | None = None
        #: Clock after each event of this process, in local order.
        self.event_clocks: List[VectorClock] = []

    def on_init(self, ctx: ProcessContext) -> None:
        # Mirror the offline convention: the running clock starts at
        # all-ones (every initial event precedes every other event).
        self._clock = VectorClock((1,) * self._n)
        self._inner.on_init(ctx)

    def on_start(self, ctx: ProcessContext) -> None:
        self._inner.on_start(self._wrap(ctx))
        self._after(ctx, received_clock=None)

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        self._inner.on_timer(self._wrap(ctx), name)
        self._after(ctx, received_clock=None)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        envelope = message.payload
        if not isinstance(envelope, ClockedMessage):
            raise TypeError("message without a clock envelope reached the middleware")
        inner_message = Message(
            source=message.source,
            destination=message.destination,
            payload=envelope.payload,
        )
        self._inner.on_message(self._wrap(ctx), inner_message)
        self._after(ctx, received_clock=envelope.clock)

    # ------------------------------------------------------------------
    def _wrap(self, ctx: ProcessContext) -> ProcessContext:
        # The inner program shares the context; sends are rewritten after
        # the callback returns (the clock tick must account for the event).
        return ctx

    def _after(self, ctx: ProcessContext, received_clock: VectorClock | None) -> None:
        assert self._clock is not None, "on_init must run first"
        clock = self._clock
        if received_clock is not None:
            clock = clock.merge(received_clock)
        clock = clock.tick(ctx.process_id)
        self._clock = clock
        self.event_clocks.append(clock)
        # Stamp outgoing messages with the post-event clock.
        for i, message in enumerate(ctx.sent):
            ctx.sent[i] = Message(
                source=message.source,
                destination=message.destination,
                payload=ClockedMessage(message.payload, clock),
            )
