"""Channel models for the simulator.

The paper assumes reliable channels that need not be FIFO (Section 2.1).
:class:`UniformDelayChannel` is the default: every message is delivered
after an independent uniform random delay, so messages routinely overtake
one another.  :class:`FIFODelayChannel` clamps delivery times to be
monotone per (source, destination) pair — required by Chandy–Lamport
snapshots.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

__all__ = ["Channel", "UniformDelayChannel", "FIFODelayChannel"]


class Channel:
    """Delivery-time policy for messages.

    Subclasses implement :meth:`delivery_time`; the simulator calls it once
    per message send.
    """

    def delivery_time(self, source: int, destination: int, now: float) -> float:
        """Absolute simulated time at which the message arrives."""
        raise NotImplementedError


class UniformDelayChannel(Channel):
    """Reliable, non-FIFO: i.i.d. uniform delay in [min_delay, max_delay]."""

    def __init__(self, rng: random.Random, min_delay: float = 1.0, max_delay: float = 10.0):
        # Zero-delay channels are legal (instant delivery, useful for
        # stress tests); only negative delays are rejected.
        if min_delay < 0 or max_delay < min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")
        self._rng = rng
        self._min = min_delay
        self._max = max_delay

    def delivery_time(self, source: int, destination: int, now: float) -> float:
        return now + self._rng.uniform(self._min, self._max)


class FIFODelayChannel(Channel):
    """Reliable FIFO: random delays, but per-pair delivery order preserved."""

    def __init__(self, rng: random.Random, min_delay: float = 1.0, max_delay: float = 10.0):
        if min_delay < 0 or max_delay < min_delay:
            raise ValueError("need 0 <= min_delay <= max_delay")
        self._rng = rng
        self._min = min_delay
        self._max = max_delay
        self._last_delivery: Dict[Tuple[int, int], float] = {}

    def delivery_time(self, source: int, destination: int, now: float) -> float:
        raw = now + self._rng.uniform(self._min, self._max)
        key = (source, destination)
        # Nudge past the previous delivery so order is strictly preserved.
        at = max(raw, self._last_delivery.get(key, 0.0) + 1e-9)
        self._last_delivery[key] = at
        return at
