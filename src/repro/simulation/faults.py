"""Deterministic fault injection for the simulator (substrate S9).

The paper's monitoring setting watches *real* distributed executions —
executions where messages are lost or duplicated, the network partitions,
and processes crash (and sometimes come back).  A :class:`FaultPlan`
describes such an adversarial environment declaratively; the simulator
applies it on top of any channel model, so every protocol in
:mod:`repro.simulation.protocols` can be exercised on faulty runs without
changing a line of protocol code.

Fault classes:

* **message loss** — a sent message is silently dropped;
* **message duplication** — a sent message is delivered twice (each copy
  draws its own channel delay, so duplicates reorder freely);
* **delay spikes** — adversarial reordering: a message occasionally picks
  up a large extra delay on top of the channel's;
* **partitions** — during a time window the process set is split into
  groups; messages sent across groups are dropped;
* **crash / crash-restart** — a process dies at a given time: its pending
  deliveries and timers are lost and its event sequence is truncated.
  With a restart time, the process later begins a new *epoch*: the
  simulator invokes :meth:`~repro.simulation.process.ProcessProgram.on_restart`,
  which records a recovery event causally after everything the process did
  before the crash (it extends the same process line).  Timers armed in an
  earlier epoch never fire (volatile state does not survive a crash);
  messages that arrive while the process is down are lost, while messages
  arriving after the restart are delivered normally.

Determinism: every probabilistic decision draws from a single
:class:`random.Random` stream owned by the :class:`FaultInjector`, seeded
either by the plan's own ``seed`` or derived from the simulator's master
seed.  The same (programs, seed, plan) triple therefore always records the
same computation, byte for byte — faulty runs are as replayable as clean
ones.

Every injected fault is appended to a structured record list that the
simulator attaches to the resulting computation as metadata (see
``Computation.meta["faults"]``), so detection verdicts can be
cross-referenced with the exact faults that produced the trace.  The
injector also mirrors per-class counters into :mod:`repro.obs` as
``sim.faults.*`` when observability is enabled.

JSON schema (see ``docs/FAULTS.md`` for the full reference)::

    {
      "seed": 7,
      "message_loss": 0.1,
      "message_duplication": 0.05,
      "delay_spike": {"probability": 0.1, "extra_min": 5.0, "extra_max": 20.0},
      "partitions": [{"start": 10.0, "end": 20.0, "groups": [[0, 1], [2, 3]]}],
      "crashes": [{"process": 2, "at": 4.5},
                  {"process": 0, "at": 5.0, "restart_at": 6.0}]
    }
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.obs import STATE, registry

__all__ = [
    "CrashSpec",
    "DelaySpike",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "PartitionWindow",
    "load_fault_plan",
]


class FaultPlanError(ValueError):
    """A fault plan is malformed (bad schema, bad value, bad reference)."""


def _require_number(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultPlanError(f"{what} must be a number, got {value!r}")
    return float(value)


def _require_probability(value: Any, what: str) -> float:
    number = _require_number(value, what)
    if not 0.0 <= number <= 1.0:
        raise FaultPlanError(f"{what} must be in [0, 1], got {number}")
    return number


@dataclass(frozen=True)
class DelaySpike:
    """Occasional extra delivery delay (adversarial reordering).

    With probability ``probability`` a delivered message copy picks up an
    extra delay drawn uniformly from ``[extra_min, extra_max]`` on top of
    whatever the channel model assigned.
    """

    probability: float
    extra_min: float
    extra_max: float

    def __post_init__(self) -> None:
        _require_probability(self.probability, "delay_spike.probability")
        if self.extra_min < 0 or self.extra_max < self.extra_min:
            raise FaultPlanError(
                "delay spike needs 0 <= extra_min <= extra_max, got "
                f"[{self.extra_min}, {self.extra_max}]"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DelaySpike":
        if not isinstance(data, Mapping):
            raise FaultPlanError(
                f"'delay_spike' must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"probability", "extra_min", "extra_max"}
        if unknown:
            raise FaultPlanError(
                f"unknown delay_spike key(s): {sorted(unknown)}"
            )
        if "probability" not in data:
            raise FaultPlanError("delay_spike is missing 'probability'")
        return cls(
            probability=_require_probability(
                data["probability"], "delay_spike.probability"
            ),
            extra_min=_require_number(
                data.get("extra_min", 0.0), "delay_spike.extra_min"
            ),
            extra_max=_require_number(
                data.get("extra_max", data.get("extra_min", 0.0)),
                "delay_spike.extra_max",
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "probability": self.probability,
            "extra_min": self.extra_min,
            "extra_max": self.extra_max,
        }


@dataclass(frozen=True)
class PartitionWindow:
    """A network partition active during ``[start, end)``.

    ``groups`` lists disjoint process groups; a message is dropped iff it
    is sent during the window and its endpoints lie in *different* groups.
    Processes not listed in any group are unaffected (they can talk to
    everyone), which keeps plans short when only part of the system splits.
    """

    start: float
    end: float
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise FaultPlanError(
                f"partition window needs start < end, got "
                f"[{self.start}, {self.end})"
            )
        seen: set = set()
        for group in self.groups:
            for p in group:
                if p in seen:
                    raise FaultPlanError(
                        f"process {p} appears in two partition groups"
                    )
                seen.add(p)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartitionWindow":
        if not isinstance(data, Mapping):
            raise FaultPlanError(
                f"partition entry must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"start", "end", "groups"}
        if unknown:
            raise FaultPlanError(f"unknown partition key(s): {sorted(unknown)}")
        for key in ("start", "end", "groups"):
            if key not in data:
                raise FaultPlanError(f"partition entry is missing {key!r}")
        groups = data["groups"]
        if not isinstance(groups, Sequence) or isinstance(groups, (str, bytes)):
            raise FaultPlanError("partition 'groups' must be a list of lists")
        parsed: List[Tuple[int, ...]] = []
        for i, group in enumerate(groups):
            if not isinstance(group, Sequence) or isinstance(group, (str, bytes)):
                raise FaultPlanError(f"partition group {i} must be a list")
            members: List[int] = []
            for member in group:
                if isinstance(member, bool) or not isinstance(member, int):
                    raise FaultPlanError(
                        f"partition group {i} member {member!r} is not a "
                        "process index"
                    )
                members.append(member)
            parsed.append(tuple(members))
        return cls(
            start=_require_number(data["start"], "partition.start"),
            end=_require_number(data["end"], "partition.end"),
            groups=tuple(parsed),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "groups": [list(group) for group in self.groups],
        }

    def severs(self, source: int, destination: int, now: float) -> bool:
        """True iff a message sent now from source to destination crosses
        the partition."""
        if not self.start <= now < self.end:
            return False
        side_s = side_d = None
        for i, group in enumerate(self.groups):
            if source in group:
                side_s = i
            if destination in group:
                side_d = i
        return side_s is not None and side_d is not None and side_s != side_d


@dataclass(frozen=True)
class CrashSpec:
    """A process crash at simulated time ``at``, optionally restarting.

    Without ``restart_at`` the crash is permanent: the process's event
    sequence is truncated at the last event it executed before ``at``.
    With ``restart_at`` the process recovers: ``on_restart`` runs at that
    time and records the first event of the new epoch.
    """

    process: int
    at: float
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.process, bool) or not isinstance(self.process, int):
            raise FaultPlanError(
                f"crash 'process' must be an integer, got {self.process!r}"
            )
        if self.process < 0:
            raise FaultPlanError(f"crash process {self.process} is negative")
        if self.at < 0:
            raise FaultPlanError(f"crash time {self.at} is negative")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise FaultPlanError(
                f"process {self.process}: restart_at ({self.restart_at}) "
                f"must be after the crash time ({self.at})"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CrashSpec":
        if not isinstance(data, Mapping):
            raise FaultPlanError(
                f"crash entry must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"process", "at", "restart_at"}
        if unknown:
            raise FaultPlanError(f"unknown crash key(s): {sorted(unknown)}")
        for key in ("process", "at"):
            if key not in data:
                raise FaultPlanError(f"crash entry is missing {key!r}")
        restart = data.get("restart_at")
        return cls(
            process=data["process"],
            at=_require_number(data["at"], "crash.at"),
            restart_at=(
                None if restart is None
                else _require_number(restart, "crash.restart_at")
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"process": self.process, "at": self.at}
        if self.restart_at is not None:
            record["restart_at"] = self.restart_at
        return record


_PLAN_KEYS = {
    "seed",
    "message_loss",
    "message_duplication",
    "delay_spike",
    "partitions",
    "crashes",
}


@dataclass(frozen=True)
class FaultPlan:
    """A composable, declarative description of the faults to inject.

    All components default to "no fault", so plans list only what they
    exercise.  Plans are immutable and JSON round-trippable
    (:meth:`from_dict` / :meth:`to_dict`), and the plan used for a run is
    embedded verbatim in the recorded computation's metadata.
    """

    seed: Optional[int] = None
    message_loss: float = 0.0
    message_duplication: float = 0.0
    delay_spike: Optional[DelaySpike] = None
    partitions: Tuple[PartitionWindow, ...] = ()
    crashes: Tuple[CrashSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.seed is not None and (
            isinstance(self.seed, bool) or not isinstance(self.seed, int)
        ):
            raise FaultPlanError(f"plan seed must be an integer, got {self.seed!r}")
        _require_probability(self.message_loss, "message_loss")
        _require_probability(self.message_duplication, "message_duplication")
        # Crash schedules must be well-ordered per process: strictly
        # increasing, each restart after its crash, and nothing after a
        # permanent (restart-less) crash.
        per_process: Dict[int, List[CrashSpec]] = {}
        for spec in self.crashes:
            per_process.setdefault(spec.process, []).append(spec)
        for process, specs in per_process.items():
            specs = sorted(specs, key=lambda s: s.at)
            for earlier, later in zip(specs, specs[1:]):
                if earlier.restart_at is None:
                    raise FaultPlanError(
                        f"process {process} crashes again at {later.at} "
                        f"after a permanent crash at {earlier.at}"
                    )
                if later.at <= earlier.restart_at:
                    raise FaultPlanError(
                        f"process {process}: crash at {later.at} overlaps "
                        f"the restart at {earlier.restart_at}"
                    )

    @property
    def any_faults(self) -> bool:
        """True iff the plan can inject at least one fault."""
        return bool(
            self.message_loss
            or self.message_duplication
            or self.delay_spike is not None
            or self.partitions
            or self.crashes
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Parse and validate a plan; raises :class:`FaultPlanError`."""
        if not isinstance(data, Mapping):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - _PLAN_KEYS
        if unknown:
            raise FaultPlanError(f"unknown fault plan key(s): {sorted(unknown)}")
        spike = data.get("delay_spike")
        partitions = data.get("partitions", [])
        crashes = data.get("crashes", [])
        for name, value in (("partitions", partitions), ("crashes", crashes)):
            if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
                raise FaultPlanError(f"{name!r} must be a list")
        return cls(
            seed=data.get("seed"),
            message_loss=_require_probability(
                data.get("message_loss", 0.0), "message_loss"
            ),
            message_duplication=_require_probability(
                data.get("message_duplication", 0.0), "message_duplication"
            ),
            delay_spike=None if spike is None else DelaySpike.from_dict(spike),
            partitions=tuple(
                PartitionWindow.from_dict(entry) for entry in partitions
            ),
            crashes=tuple(CrashSpec.from_dict(entry) for entry in crashes),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form; omits defaulted components."""
        record: Dict[str, Any] = {}
        if self.seed is not None:
            record["seed"] = self.seed
        if self.message_loss:
            record["message_loss"] = self.message_loss
        if self.message_duplication:
            record["message_duplication"] = self.message_duplication
        if self.delay_spike is not None:
            record["delay_spike"] = self.delay_spike.to_dict()
        if self.partitions:
            record["partitions"] = [w.to_dict() for w in self.partitions]
        if self.crashes:
            record["crashes"] = [c.to_dict() for c in self.crashes]
        return record

    def max_process(self) -> int:
        """Largest process index the plan refers to (-1 if none)."""
        largest = -1
        for spec in self.crashes:
            largest = max(largest, spec.process)
        for window in self.partitions:
            for group in window.groups:
                largest = max(largest, max(group, default=-1))
        return largest


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read and validate a JSON fault plan from disk."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise FaultPlanError(f"{path}: cannot read fault plan: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"{path}: invalid JSON: {exc}") from exc
    try:
        return FaultPlan.from_dict(data)
    except FaultPlanError as exc:
        raise FaultPlanError(f"{path}: {exc}") from exc


class FaultInjector:
    """Runtime state of a fault plan during one simulation.

    Owned by the simulator.  All probabilistic decisions draw from ``rng``
    in a fixed order (partition check — no draw — then loss, duplication,
    and one spike draw per delivered copy), so runs are deterministic.
    Every injected fault is appended to :attr:`records` and counted in
    :attr:`counts`; both end up in the computation's metadata.
    """

    def __init__(self, plan: FaultPlan, rng: random.Random, num_processes: int):
        if plan.max_process() >= num_processes:
            raise FaultPlanError(
                f"fault plan refers to process {plan.max_process()} but the "
                f"simulation has only {num_processes} processes"
            )
        self.plan = plan
        self._rng = rng
        self.records: List[Dict[str, Any]] = []
        self.counts: Dict[str, int] = {}
        #: (process, event index) of the first event of each post-restart epoch.
        self.epochs: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def message_fate(self, source: int, destination: int, now: float) -> List[float]:
        """Decide what happens to a message sent right now.

        Returns one extra-delay value per delivered copy: ``[]`` means the
        message is dropped, ``[0.0]`` is a clean delivery, two entries mean
        duplication.  The caller adds each extra delay on top of the
        channel's own delivery time.
        """
        for window in self.plan.partitions:
            if window.severs(source, destination, now):
                self._record(
                    "partition_drop",
                    time=now,
                    source=source,
                    destination=destination,
                )
                return []
        if self.plan.message_loss and self._rng.random() < self.plan.message_loss:
            self._record("loss", time=now, source=source, destination=destination)
            return []
        copies = 1
        if (
            self.plan.message_duplication
            and self._rng.random() < self.plan.message_duplication
        ):
            copies = 2
            self._record(
                "duplicate", time=now, source=source, destination=destination
            )
        extras: List[float] = []
        spike = self.plan.delay_spike
        for _ in range(copies):
            extra = 0.0
            if spike is not None and self._rng.random() < spike.probability:
                extra = self._rng.uniform(spike.extra_min, spike.extra_max)
                self._record(
                    "delay_spike",
                    time=now,
                    source=source,
                    destination=destination,
                    extra=extra,
                )
            extras.append(extra)
        return extras

    # ------------------------------------------------------------------
    # Occurrences reported by the simulator
    # ------------------------------------------------------------------
    def record_crash(self, process: int, now: float) -> None:
        """A process crashed (its event sequence is truncated here)."""
        self._record("crash", time=now, process=process)

    def record_restart(self, process: int, now: float, event_index: int) -> None:
        """A crashed process recovered; ``event_index`` starts its new epoch."""
        self._record(
            "restart", time=now, process=process, event_index=event_index
        )
        self.epochs.append((process, event_index))

    def record_crash_drop(self, process: int, now: float) -> None:
        """A message arrived while its destination was down."""
        self._record("crash_drop", time=now, process=process)

    def record_timer_lost(self, process: int, now: float) -> None:
        """A timer fired for a crashed process or for an earlier epoch."""
        self._record("timer_lost", time=now, process=process)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def metadata(self) -> Dict[str, Any]:
        """JSON-safe summary attached to the recorded computation."""
        return {
            "plan": self.plan.to_dict(),
            "injected": list(self.records),
            "counts": dict(self.counts),
            "epochs": [[p, index] for p, index in self.epochs],
        }

    def _record(self, fault_type: str, **fields: Any) -> None:
        self.records.append({"type": fault_type, **fields})
        self.counts[fault_type] = self.counts.get(fault_type, 0) + 1
        if STATE.enabled:
            registry().counter(f"sim.faults.{fault_type}").inc()
