"""Discrete-event message-passing simulator (substrate S9).

Runs a set of :class:`~repro.simulation.process.ProcessProgram` instances
under a channel model and records the resulting *distributed computation*
— the exact trace object the paper's detection algorithms consume.  One
callback invocation = one event; messages become message edges; monitored
variables snapshot into each event's value map.

Determinism: all randomness flows from the seed passed to
:class:`Simulator` (channel delays, per-process RNGs, tie-breaking), so a
given (programs, seed) pair always records the same computation.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.computation import Computation, ComputationBuilder
from repro.events import EventId, EventKind
from repro.obs import STATE, registry, span
from repro.simulation.channels import Channel, UniformDelayChannel
from repro.simulation.faults import FaultInjector, FaultPlan
from repro.simulation.process import Message, ProcessContext, ProcessProgram

__all__ = ["Simulator", "SimulationError"]


class SimulationError(Exception):
    """Raised on simulator misuse (bad program behaviour, bad configuration)."""


@dataclass(order=True)
class _Scheduled:
    time: float
    sequence: int
    # "start" | "message" | "timer" | "crash" | "restart"
    kind: str = field(compare=False)
    process: int = field(compare=False)
    message: Optional[Message] = field(compare=False, default=None)
    send_event: Optional[EventId] = field(compare=False, default=None)
    timer_name: str = field(compare=False, default="")
    # Epoch the timer was armed in; timers never survive a crash.
    epoch: int = field(compare=False, default=0)


class Simulator:
    """Executes programs and records the computation.

    Args:
        programs: One program per process.
        seed: Master seed; derives channel and per-process RNG streams.
        channel: Channel model; defaults to a reliable non-FIFO channel
            with uniform delays (the paper's weakest assumption).
        faults: Optional :class:`~repro.simulation.faults.FaultPlan`;
            seeded fault injection (loss, duplication, delay spikes,
            partitions, crash/restart) applied on top of the channel.
            The faults actually injected are recorded on the resulting
            computation's :attr:`~repro.computation.Computation.meta`
            under the ``"faults"`` key.
    """

    def __init__(
        self,
        programs: Sequence[ProcessProgram],
        seed: int = 0,
        channel: Optional[Channel] = None,
        faults: Optional[FaultPlan] = None,
    ):
        if not programs:
            raise SimulationError("need at least one process program")
        self._programs = list(programs)
        n = len(self._programs)
        master = random.Random(seed)
        self._channel = channel or UniformDelayChannel(
            random.Random(master.randrange(2**63))
        )
        self._process_rngs = [
            random.Random(master.randrange(2**63)) for _ in range(n)
        ]
        # The fault stream is drawn last so fault-free runs keep the exact
        # RNG streams (and hence traces) they recorded before faults existed.
        self._injector: Optional[FaultInjector] = None
        if faults is not None:
            fault_seed = (
                faults.seed if faults.seed is not None
                else master.randrange(2**63)
            )
            self._injector = FaultInjector(faults, random.Random(fault_seed), n)
        self._values: List[Dict[str, Any]] = [{} for _ in range(n)]
        self._builder = ComputationBuilder(n)
        self._queue: List[_Scheduled] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._stopped = [False] * n
        self._crashed = [False] * n
        self._epochs = [0] * n
        self._events_executed = 0
        self._finished = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callback invocations executed so far."""
        return self._events_executed

    def run(
        self,
        max_events: int = 10_000,
        until: Optional[float] = None,
    ) -> Computation:
        """Run to quiescence (or a bound) and return the recorded trace.

        Args:
            max_events: Hard cap on callback invocations (guards against
                non-terminating protocols).
            until: Optional simulated-time horizon; scheduled occurrences
                after it are discarded.
        """
        if self._finished:
            raise SimulationError("simulator already ran; create a new one")
        self._finished = True

        n = len(self._programs)
        with span("sim.run", processes=n) as sp:
            # Initialization: on_init sets initial values (no event recorded).
            for p, program in enumerate(self._programs):
                ctx = self._context(p)
                program.on_init(ctx)
                if ctx.sent or ctx.timers:
                    raise SimulationError(
                        f"process {p} sent or armed timers in on_init"
                    )
                self._builder.init_values(p, **self._values[p])

            for p in range(n):
                self._schedule(
                    _Scheduled(
                        time=0.0,
                        sequence=next(self._sequence),
                        kind="start",
                        process=p,
                    )
                )
            if self._injector is not None:
                for spec in self._injector.plan.crashes:
                    self._schedule(
                        _Scheduled(
                            time=spec.at,
                            sequence=next(self._sequence),
                            kind="crash",
                            process=spec.process,
                        )
                    )
                    if spec.restart_at is not None:
                        self._schedule(
                            _Scheduled(
                                time=spec.restart_at,
                                sequence=next(self._sequence),
                                kind="restart",
                                process=spec.process,
                            )
                        )

            while self._queue and self._events_executed < max_events:
                item = heapq.heappop(self._queue)
                if until is not None and item.time > until:
                    break
                self._now = item.time
                self._execute(item)

            meta = None
            if self._injector is not None:
                meta = {"faults": self._injector.metadata()}
                sp.set(faults_injected=len(self._injector.records))
            sp.set(
                events=self._events_executed,
                simulated_time=self._now,
            )
            return self._builder.build(meta=meta)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _context(self, process: int) -> ProcessContext:
        return ProcessContext(
            process_id=process,
            now=self._now,
            rng=self._process_rngs[process],
            values=self._values[process],
            num_processes=len(self._programs),
        )

    def _schedule(self, item: _Scheduled) -> None:
        heapq.heappush(self._queue, item)

    def _execute(self, item: _Scheduled) -> None:
        p = item.process
        if self._stopped[p]:
            return
        if item.kind == "crash":
            if not self._crashed[p]:
                self._crashed[p] = True
                assert self._injector is not None
                self._injector.record_crash(p, self._now)
            return
        if item.kind == "restart":
            if not self._crashed[p]:
                return
            self._crashed[p] = False
            self._epochs[p] += 1
            # Falls through: on_restart runs as a callback and records the
            # first event of the new epoch.
        elif self._crashed[p]:
            # Deliveries and timer firings while the process is down are lost.
            if self._injector is not None:
                if item.kind == "message":
                    self._injector.record_crash_drop(p, self._now)
                elif item.kind == "timer":
                    self._injector.record_timer_lost(p, self._now)
            return
        if item.kind == "timer" and item.epoch != self._epochs[p]:
            # Armed before a crash; timers are volatile and did not survive.
            if self._injector is not None:
                self._injector.record_timer_lost(p, self._now)
            return
        program = self._programs[p]
        ctx = self._context(p)
        if item.kind == "start":
            program.on_start(ctx)
        elif item.kind == "timer":
            program.on_timer(ctx, item.timer_name)
        elif item.kind == "message":
            assert item.message is not None
            program.on_message(ctx, item.message)
        elif item.kind == "restart":
            program.on_restart(ctx)
        else:  # pragma: no cover - internal invariant
            raise SimulationError(f"unknown occurrence kind {item.kind!r}")
        self._events_executed += 1
        if STATE.enabled:
            reg = registry()
            reg.counter("sim.events").inc()
            reg.counter(f"sim.steps.{item.kind}").inc()
            if ctx.sent:
                reg.counter("sim.messages_sent").inc(len(ctx.sent))
            if ctx.timers:
                reg.counter("sim.timers_armed").inc(len(ctx.timers))

        received = item.kind == "message"
        sent = bool(ctx.sent)
        if received and sent:
            kind = EventKind.SEND_RECEIVE
        elif received:
            kind = EventKind.RECEIVE
        elif sent:
            kind = EventKind.SEND
        else:
            kind = EventKind.INTERNAL
        event_id = self._builder.event(p, kind, **dict(self._values[p]))
        if received:
            assert item.send_event is not None
            self._builder.message(item.send_event, event_id)
        if item.kind == "restart":
            assert self._injector is not None
            self._injector.record_restart(p, self._now, event_id[1])

        for message in ctx.sent:
            if self._injector is not None:
                fates = self._injector.message_fate(
                    message.source, message.destination, self._now
                )
            else:
                fates = [0.0]
            for extra_delay in fates:
                at = (
                    self._channel.delivery_time(
                        message.source, message.destination, self._now
                    )
                    + extra_delay
                )
                self._schedule(
                    _Scheduled(
                        time=at,
                        sequence=next(self._sequence),
                        kind="message",
                        process=message.destination,
                        message=message,
                        send_event=event_id,
                    )
                )
        for delay, name in ctx.timers:
            self._schedule(
                _Scheduled(
                    time=self._now + delay,
                    sequence=next(self._sequence),
                    kind="timer",
                    process=p,
                    timer_name=name,
                    epoch=self._epochs[p],
                )
            )
        if ctx.stopped:
            self._stopped[p] = True
