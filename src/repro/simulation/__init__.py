"""Discrete-event simulator, middleware, faults and snapshots (substrate S9)."""

from repro.simulation.channels import (
    Channel,
    FIFODelayChannel,
    UniformDelayChannel,
)
from repro.simulation.faults import (
    CrashSpec,
    DelaySpike,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    PartitionWindow,
    load_fault_plan,
)
from repro.simulation.middleware import ClockedMessage, VectorClockMiddleware
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import SimulationError, Simulator
from repro.simulation.snapshot import SnapshotAdapter, snapshot_cut

__all__ = [
    "Channel",
    "ClockedMessage",
    "CrashSpec",
    "DelaySpike",
    "FIFODelayChannel",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "Message",
    "PartitionWindow",
    "ProcessContext",
    "ProcessProgram",
    "SimulationError",
    "SnapshotAdapter",
    "Simulator",
    "UniformDelayChannel",
    "VectorClockMiddleware",
    "load_fault_plan",
    "snapshot_cut",
]
