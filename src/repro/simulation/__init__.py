"""Discrete-event simulator, middleware and snapshots (substrate S9)."""

from repro.simulation.channels import (
    Channel,
    FIFODelayChannel,
    UniformDelayChannel,
)
from repro.simulation.middleware import ClockedMessage, VectorClockMiddleware
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import SimulationError, Simulator
from repro.simulation.snapshot import SnapshotAdapter, snapshot_cut

__all__ = [
    "Channel",
    "ClockedMessage",
    "FIFODelayChannel",
    "Message",
    "ProcessContext",
    "ProcessProgram",
    "SimulationError",
    "SnapshotAdapter",
    "Simulator",
    "UniformDelayChannel",
    "VectorClockMiddleware",
    "snapshot_cut",
]
