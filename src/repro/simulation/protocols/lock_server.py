"""Lock servers and clients — the paper's deadlock-detection scenario (P5).

Section 1 motivates predicate detection with deadlock handling: "on
detecting a deadlock one of the processes must be aborted and restarted".
This workload produces both deadlocked and deadlock-free traces:

* two lock servers (processes 0 and 1) manage locks A and B with FIFO wait
  queues;
* two clients (processes 2 and 3) each acquire both locks, work, and
  release.  With a consistent acquisition order (both A-then-B) every run
  completes; with opposite orders (A-then-B vs B-then-A) the classic
  hold-and-wait cycle deadlocks the clients whenever the requests
  interleave.

Monitored client variables: ``blocked`` (sent a request, no grant yet),
``holding`` (number of locks held), ``holds_lock`` (boolean form of
``holding > 0``, the conjunct used by mutual-exclusion queries), and
``done`` (finished its work).

Detection story (exercised in tests and the deadlock example):

* transient double-block — ``possibly(blocked_2 AND blocked_3)`` — can be
  True even in deadlock-free runs (both clients briefly wait); this is the
  conjunctive ``possibly`` query, polynomial via CPDHB;
* actual deadlock is the *stable* strengthening: both clients blocked at
  the final cut (:func:`repro.detection.detect_stable`), true exactly for
  the deadlocked executions;
* under fault injection, a crash-restart of a lock server wipes its
  volatile holder table, so it can grant the same lock twice — the
  mutual-exclusion violation ``possibly(holds_lock_2 AND holds_lock_3)``
  that :func:`build_crash_restart_lock_scenario` produces deterministically.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.computation import Computation
from repro.simulation.channels import UniformDelayChannel
from repro.simulation.faults import CrashSpec, FaultPlan
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = [
    "LockServerProcess",
    "LockClientProcess",
    "build_crash_restart_lock_scenario",
    "build_lock_scenario",
    "crash_restart_lock_plan",
]


class LockServerProcess(ProcessProgram):
    """Grants one holder at a time; queues waiting clients FIFO.

    Args:
        strict: In strict mode (the default, suitable for fault-free
            runs) a RELEASE from a non-holder is a protocol-invariant
            violation and raises.  Under fault injection stale releases
            are *expected* — a restarted server has forgotten its holder —
            so non-strict servers ignore them.
    """

    def __init__(self, strict: bool = True) -> None:
        self._strict = strict
        self._holder: Optional[int] = None
        self._waiting: Deque[int] = deque()

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("queue_length", 0)
        ctx.set_value("held", False)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind = message.payload
        if kind == "ACQUIRE":
            if self._holder is None:
                self._holder = message.source
                ctx.send(message.source, ("GRANT", ctx.process_id))
            else:
                self._waiting.append(message.source)
        elif kind == "RELEASE":
            if message.source != self._holder:
                if self._strict:
                    raise AssertionError(
                        f"release from {message.source} but holder is "
                        f"{self._holder}"
                    )
                # Stale release (e.g. the server crash-restarted and lost
                # its holder table): ignore it.
            elif self._waiting:
                self._holder = self._waiting.popleft()
                ctx.send(self._holder, ("GRANT", ctx.process_id))
            else:
                self._holder = None
        ctx.set_value("queue_length", len(self._waiting))
        ctx.set_value("held", self._holder is not None)

    def on_restart(self, ctx: ProcessContext) -> None:
        # The holder table and wait queue were volatile: a recovered
        # server believes the lock is free — the crack through which two
        # clients can end up holding the same lock.
        self._holder = None
        self._waiting.clear()
        ctx.set_value("queue_length", 0)
        ctx.set_value("held", False)


class LockClientProcess(ProcessProgram):
    """Acquires the listed locks in order, works, then releases them all."""

    def __init__(
        self,
        lock_order: Sequence[int],
        start_delay: float,
        work_time: float = 3.0,
    ):
        self._order: Tuple[int, ...] = tuple(lock_order)
        self._delay = start_delay
        self._work = work_time
        self._acquired: List[int] = []

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("blocked", False)
        ctx.set_value("holding", 0)
        ctx.set_value("holds_lock", False)
        ctx.set_value("done", False)

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.set_timer(self._delay, "begin")

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        if name == "begin":
            self._request_next(ctx)
        elif name == "work-done":
            for server in reversed(self._acquired):
                ctx.send(server, "RELEASE")
            self._acquired.clear()
            ctx.set_value("holding", 0)
            ctx.set_value("holds_lock", False)
            ctx.set_value("done", True)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind, server = message.payload
        assert kind == "GRANT"
        self._acquired.append(server)
        ctx.set_value("blocked", False)
        ctx.set_value("holding", len(self._acquired))
        ctx.set_value("holds_lock", True)
        if len(self._acquired) < len(self._order):
            self._request_next(ctx)
        else:
            ctx.set_timer(self._work, "work-done")

    def on_restart(self, ctx: ProcessContext) -> None:
        # Amnesia: the client forgets which locks it held (it can no
        # longer release them — the servers' problem now).
        self._acquired.clear()
        ctx.set_value("blocked", False)
        ctx.set_value("holding", 0)
        ctx.set_value("holds_lock", False)

    def _request_next(self, ctx: ProcessContext) -> None:
        target = self._order[len(self._acquired)]
        ctx.set_value("blocked", True)
        ctx.send(target, "ACQUIRE")


def build_lock_scenario(
    consistent_order: bool,
    seed: int = 0,
    stagger: float = 0.5,
    faults: Optional[FaultPlan] = None,
) -> Computation:
    """Two servers + two clients; deadlock iff orders conflict and requests
    interleave.

    Args:
        consistent_order: True = both clients acquire A(0) then B(1), so no
            deadlock is possible; False = client 3 acquires B then A, so
            the run deadlocks when the first acquisitions overlap.
        seed: Simulation seed (controls message delays).
        stagger: Start-delay gap between the two clients; small values make
            the conflicting-order case overlap (and deadlock).
        faults: Optional fault plan (servers become non-strict so stale
            releases after a crash-restart are tolerated).
    """
    order_a = [0, 1]
    order_b = [0, 1] if consistent_order else [1, 0]
    strict = faults is None
    programs: List[ProcessProgram] = [
        LockServerProcess(strict=strict),
        LockServerProcess(strict=strict),
        LockClientProcess(order_a, start_delay=1.0),
        LockClientProcess(order_b, start_delay=1.0 + stagger),
    ]
    simulator = Simulator(programs, seed=seed, faults=faults)
    return simulator.run(max_events=400)


def crash_restart_lock_plan() -> FaultPlan:
    """The fault plan behind :func:`build_crash_restart_lock_scenario`.

    Client 2 crashes permanently at t=4.5, while it is guaranteed to hold
    lock A (the grant arrives by t=4.0 and work finishes no earlier than
    t=5.0 under the scenario's 0.5–1.5 delay channel); server 0
    crash-restarts over [5.0, 6.0], wiping its holder table.
    """
    return FaultPlan(
        crashes=(
            CrashSpec(process=2, at=4.5),
            CrashSpec(process=0, at=5.0, restart_at=6.0),
        )
    )


def build_crash_restart_lock_scenario(
    seed: int = 0, faults: Optional[FaultPlan] = None
) -> Computation:
    """A crash-restart run that violates mutual exclusion, deterministically.

    Both clients acquire only lock A (server 0).  Client 2 gets the grant,
    then crashes while holding; server 0 crash-restarts and — its holder
    table gone — grants the same lock to client 3, which starts at t=8.0,
    safely after the recovery.  Client 2's event sequence is truncated
    with ``holds_lock`` still true, so

        ``possibly(holds_lock@2 & holds_lock@3)``

    holds for *every* seed: the witness pairs client 2's final (grant)
    event with client 3's grant event, and the injected faults are
    recorded in the returned computation's ``meta["faults"]``.
    """
    plan = faults if faults is not None else crash_restart_lock_plan()
    programs: List[ProcessProgram] = [
        LockServerProcess(strict=False),
        LockServerProcess(strict=False),
        LockClientProcess([0], start_delay=1.0),
        LockClientProcess([0], start_delay=8.0),
    ]
    # A tight delay band keeps the crash times inside the holding window
    # for every seed (see crash_restart_lock_plan).
    channel = UniformDelayChannel(random.Random(seed), 0.5, 1.5)
    simulator = Simulator(programs, seed=seed, channel=channel, faults=plan)
    return simulator.run(max_events=200)
