"""Lock servers and clients — the paper's deadlock-detection scenario (P5).

Section 1 motivates predicate detection with deadlock handling: "on
detecting a deadlock one of the processes must be aborted and restarted".
This workload produces both deadlocked and deadlock-free traces:

* two lock servers (processes 0 and 1) manage locks A and B with FIFO wait
  queues;
* two clients (processes 2 and 3) each acquire both locks, work, and
  release.  With a consistent acquisition order (both A-then-B) every run
  completes; with opposite orders (A-then-B vs B-then-A) the classic
  hold-and-wait cycle deadlocks the clients whenever the requests
  interleave.

Monitored client variables: ``blocked`` (sent a request, no grant yet),
``holding`` (number of locks held), ``done`` (finished its work).

Detection story (exercised in tests and the deadlock example):

* transient double-block — ``possibly(blocked_2 AND blocked_3)`` — can be
  True even in deadlock-free runs (both clients briefly wait); this is the
  conjunctive ``possibly`` query, polynomial via CPDHB;
* actual deadlock is the *stable* strengthening: both clients blocked at
  the final cut (:func:`repro.detection.detect_stable`), true exactly for
  the deadlocked executions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.computation import Computation
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = ["LockServerProcess", "LockClientProcess", "build_lock_scenario"]


class LockServerProcess(ProcessProgram):
    """Grants one holder at a time; queues waiting clients FIFO."""

    def __init__(self) -> None:
        self._holder: Optional[int] = None
        self._waiting: Deque[int] = deque()

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("queue_length", 0)
        ctx.set_value("held", False)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind = message.payload
        if kind == "ACQUIRE":
            if self._holder is None:
                self._holder = message.source
                ctx.send(message.source, ("GRANT", ctx.process_id))
            else:
                self._waiting.append(message.source)
        elif kind == "RELEASE":
            if message.source != self._holder:
                raise AssertionError(
                    f"release from {message.source} but holder is {self._holder}"
                )
            if self._waiting:
                self._holder = self._waiting.popleft()
                ctx.send(self._holder, ("GRANT", ctx.process_id))
            else:
                self._holder = None
        ctx.set_value("queue_length", len(self._waiting))
        ctx.set_value("held", self._holder is not None)


class LockClientProcess(ProcessProgram):
    """Acquires the listed locks in order, works, then releases them all."""

    def __init__(
        self,
        lock_order: Sequence[int],
        start_delay: float,
        work_time: float = 3.0,
    ):
        self._order: Tuple[int, ...] = tuple(lock_order)
        self._delay = start_delay
        self._work = work_time
        self._acquired: List[int] = []

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("blocked", False)
        ctx.set_value("holding", 0)
        ctx.set_value("done", False)

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.set_timer(self._delay, "begin")

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        if name == "begin":
            self._request_next(ctx)
        elif name == "work-done":
            for server in reversed(self._acquired):
                ctx.send(server, "RELEASE")
            self._acquired.clear()
            ctx.set_value("holding", 0)
            ctx.set_value("done", True)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind, server = message.payload
        assert kind == "GRANT"
        self._acquired.append(server)
        ctx.set_value("blocked", False)
        ctx.set_value("holding", len(self._acquired))
        if len(self._acquired) < len(self._order):
            self._request_next(ctx)
        else:
            ctx.set_timer(self._work, "work-done")

    def _request_next(self, ctx: ProcessContext) -> None:
        target = self._order[len(self._acquired)]
        ctx.set_value("blocked", True)
        ctx.send(target, "ACQUIRE")


def build_lock_scenario(
    consistent_order: bool,
    seed: int = 0,
    stagger: float = 0.5,
) -> Computation:
    """Two servers + two clients; deadlock iff orders conflict and requests
    interleave.

    Args:
        consistent_order: True = both clients acquire A(0) then B(1), so no
            deadlock is possible; False = client 3 acquires B then A, so
            the run deadlocks when the first acquisitions overlap.
        seed: Simulation seed (controls message delays).
        stagger: Start-delay gap between the two clients; small values make
            the conflicting-order case overlap (and deadlock).
    """
    order_a = [0, 1]
    order_b = [0, 1] if consistent_order else [1, 0]
    programs: List[ProcessProgram] = [
        LockServerProcess(),
        LockServerProcess(),
        LockClientProcess(order_a, start_delay=1.0),
        LockClientProcess(order_b, start_delay=1.0 + stagger),
    ]
    simulator = Simulator(programs, seed=seed)
    return simulator.run(max_events=400)
