"""Two-phase commit (protocol workload P6).

The paper's own example for the ``definitely`` modality: "definitely true
predicates are useful for verifying the occurrence of good conditions such
as commit point of a transaction".  Process 0 coordinates; processes 1..n
are participants.

Phase 1: the coordinator sends PREPARE; each participant votes YES with
probability ``yes_probability`` (NO otherwise) and records ``voted``.
Phase 2: on unanimous YES the coordinator sends COMMIT, otherwise ABORT;
participants apply the decision (``committed`` / ``aborted``).

Monitored boolean variables per participant: ``voted``, ``committed``,
``aborted``.  The verification queries map straight onto the paper:

* **commit point** — ``definitely(all participants committed)`` holds on
  every all-YES run: whatever the interleaving, the system passes through
  the fully-committed state (and stays there — it is also stable);
* **atomicity** — ``possibly(committed_i AND aborted_j)`` must be False
  for every pair: no consistent global state mixes outcomes.  The
  injectable bug (a participant that unilaterally commits without waiting
  for the decision) makes exactly this query turn True.
"""

from __future__ import annotations

from typing import List, Optional

from repro.computation import Computation
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = [
    "CommitCoordinator",
    "CommitParticipant",
    "build_two_phase_commit",
]


class CommitCoordinator(ProcessProgram):
    """Collects votes; decides COMMIT on unanimity, else ABORT."""

    def __init__(self, num_participants: int):
        self._n = num_participants
        self._votes: List[bool] = []

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("decision", None)

    def on_start(self, ctx: ProcessContext) -> None:
        for participant in range(1, self._n + 1):
            ctx.send(participant, "PREPARE")

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind, vote = message.payload
        assert kind == "VOTE"
        self._votes.append(vote)
        if len(self._votes) == self._n:
            decision = "COMMIT" if all(self._votes) else "ABORT"
            ctx.set_value("decision", decision)
            for participant in range(1, self._n + 1):
                ctx.send(participant, decision)


class CommitParticipant(ProcessProgram):
    """Votes on PREPARE and applies the coordinator's decision.

    Args:
        yes_probability: Chance of voting YES (drawn from the process's
            seeded RNG, so runs are reproducible).
        unilateral: Injected bug — commit immediately after voting YES,
            without waiting for the global decision.
    """

    def __init__(self, yes_probability: float = 1.0, unilateral: bool = False):
        self._yes_probability = yes_probability
        self._unilateral = unilateral

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("voted", False)
        ctx.set_value("committed", False)
        ctx.set_value("aborted", False)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        payload = message.payload
        if payload == "PREPARE":
            vote = ctx.random.random() < self._yes_probability
            ctx.set_value("voted", True)
            if self._unilateral and vote:
                # Bug: apply the outcome before the decision arrives.
                ctx.set_value("committed", True)
            ctx.send(0, ("VOTE", vote))
        elif payload == "COMMIT":
            ctx.set_value("committed", True)
        elif payload == "ABORT":
            if not ctx.get_value("committed"):
                ctx.set_value("aborted", True)
            # A unilaterally-committed participant cannot abort: that is
            # precisely the atomicity violation the monitor should catch.


def build_two_phase_commit(
    num_participants: int,
    seed: int = 0,
    yes_probability: float = 1.0,
    unilateral_participant: Optional[int] = None,
) -> Computation:
    """Run one transaction and return the recorded computation.

    Args:
        num_participants: Number of participants (processes 1..n).
        seed: Simulation seed.
        yes_probability: Per-participant YES probability (1.0 = always).
        unilateral_participant: Participant index (1-based process id) with
            the unilateral-commit bug, or None.
    """
    if num_participants < 1:
        raise ValueError("need at least one participant")
    programs: List[ProcessProgram] = [CommitCoordinator(num_participants)]
    for p in range(1, num_participants + 1):
        programs.append(
            CommitParticipant(
                yes_probability=yes_probability,
                unilateral=(p == unilateral_participant),
            )
        )
    simulator = Simulator(programs, seed=seed)
    return simulator.run(max_events=20 * num_participants + 50)
