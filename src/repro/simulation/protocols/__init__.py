"""Protocol workloads (substrate S10) generating realistic traces."""

from repro.simulation.protocols.lock_server import (
    LockClientProcess,
    LockServerProcess,
    build_crash_restart_lock_scenario,
    build_lock_scenario,
    crash_restart_lock_plan,
)
from repro.simulation.protocols.leader_election import (
    ChangRobertsProcess,
    build_leader_election,
)
from repro.simulation.protocols.primary_backup import (
    BackupProcess,
    PrimaryProcess,
    build_primary_backup,
)
from repro.simulation.protocols.ricart_agrawala import (
    RicartAgrawalaProcess,
    build_ricart_agrawala,
)
from repro.simulation.protocols.resource_pool import (
    CoordinatorProcess,
    WorkerProcess,
    build_resource_pool,
)
from repro.simulation.protocols.token_ring import (
    TokenRingProcess,
    build_token_ring,
)
from repro.simulation.protocols.work_stealing import (
    WorkStealingWorker,
    build_work_stealing,
)
from repro.simulation.protocols.two_phase_commit import (
    CommitCoordinator,
    CommitParticipant,
    build_two_phase_commit,
)

__all__ = [
    "BackupProcess",
    "CommitCoordinator",
    "CommitParticipant",
    "ChangRobertsProcess",
    "CoordinatorProcess",
    "LockClientProcess",
    "LockServerProcess",
    "PrimaryProcess",
    "RicartAgrawalaProcess",
    "TokenRingProcess",
    "WorkStealingWorker",
    "WorkerProcess",
    "build_crash_restart_lock_scenario",
    "build_leader_election",
    "build_lock_scenario",
    "crash_restart_lock_plan",
    "build_primary_backup",
    "build_resource_pool",
    "build_ricart_agrawala",
    "build_token_ring",
    "build_two_phase_commit",
    "build_work_stealing",
]
