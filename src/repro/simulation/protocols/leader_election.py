"""Chang–Roberts ring leader election (protocol workload P2).

Every process starts an election by sending its unique identifier around a
unidirectional ring; identifiers smaller than the receiver's are swallowed,
larger ones are forwarded, and a process receiving its own identifier wins
and announces itself with an ELECTED round.

Monitored boolean variable per process: ``leader`` — "I believe I am the
leader".  The natural verification queries map onto the paper's machinery:

* *good outcome* — ``definitely(exactly one leader)``: a symmetric
  predicate with count set {1}, decided by Theorem 7(2);
* *safety* — ``possibly(two or more leaders)``: a symmetric predicate with
  count set {2..n}, decided in polynomial time (and False for a correct
  run).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.computation import Computation
from repro.simulation.faults import FaultPlan
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = ["ChangRobertsProcess", "build_leader_election"]


class ChangRobertsProcess(ProcessProgram):
    """One ring member running Chang–Roberts.

    Args:
        num_processes: Ring size.
        uid: This process's unique identifier.
        usurper: If True, this process declares itself leader as soon as it
            has forwarded any election message (injected bug producing a
            two-leader state).
    """

    def __init__(self, num_processes: int, uid: int, usurper: bool = False):
        self._n = num_processes
        self._uid = uid
        self._usurper = usurper

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("leader", False)
        ctx.set_value("elected_uid", None)
        ctx.set_value("participating", False)

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.set_value("participating", True)
        ctx.send(self._next(ctx), ("ELECTION", self._uid))

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind, value = message.payload
        if kind == "ELECTION":
            if value > self._uid:
                ctx.send(self._next(ctx), ("ELECTION", value))
                if self._usurper:
                    # Bug: claim leadership despite seeing a larger id.
                    ctx.set_value("leader", True)
                    ctx.set_value("elected_uid", self._uid)
            elif value == self._uid:
                ctx.set_value("leader", True)
                ctx.set_value("elected_uid", self._uid)
                ctx.send(self._next(ctx), ("ELECTED", self._uid))
            # value < uid: swallow (our own ELECTION already circulates).
        elif kind == "ELECTED":
            if value != self._uid:
                ctx.set_value("elected_uid", value)
                if not self._usurper:
                    ctx.set_value("leader", False)
                ctx.send(self._next(ctx), ("ELECTED", value))

    def _next(self, ctx: ProcessContext) -> int:
        return (ctx.process_id + 1) % self._n


def build_leader_election(
    num_processes: int,
    seed: int = 0,
    usurper_process: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> Computation:
    """Run an election and return the recorded computation.

    Identifiers are a seeded random permutation of 1..n, so the winner
    varies with the seed.  ``usurper_process`` optionally injects the
    two-leader bug.
    """
    if num_processes < 2:
        raise ValueError("election needs at least two processes")
    rng = random.Random(seed)
    uids = list(range(1, num_processes + 1))
    rng.shuffle(uids)
    programs: List[ProcessProgram] = [
        ChangRobertsProcess(
            num_processes, uids[p], usurper=(p == usurper_process)
        )
        for p in range(num_processes)
    ]
    simulator = Simulator(programs, seed=seed, faults=faults)
    return simulator.run(max_events=20 * num_processes * num_processes)
