"""Work-stealing workers with termination (protocol workload P7).

Termination detection is the canonical *stable* predicate: once every
process is idle and no work messages are in flight, that stays true
forever.  This workload produces traces for it: workers process a local
queue of tasks; each task may spawn subtasks shipped to random peers; when
a worker drains its queue it goes idle (and wakes on new arrivals).

Monitored variables per worker: ``idle`` (queue empty, not processing) and
``processed`` (tasks completed, +1 per completion — ±1 regime).

Detection story:

* "all workers idle" — a conjunctive predicate — is **not** stable on its
  own: workers can all be momentarily idle while a task is still in
  flight (and such transient global states are detectable with
  ``possibly``);
* true termination is "all idle at the *final* cut", i.e. the
  stable-predicate detector, or a Chandy–Lamport snapshot online: the
  snapshot additionally records the in-flight tasks, and termination holds
  iff all recorded states are idle *and* all recorded channels are empty —
  exactly the classical algorithm.
"""

from __future__ import annotations

from typing import List

from repro.computation import Computation
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = ["WorkStealingWorker", "build_work_stealing"]


class WorkStealingWorker(ProcessProgram):
    """Processes tasks; each task may spawn subtasks shipped to peers.

    Args:
        num_processes: Worker count.
        initial_tasks: Tasks seeded in this worker's queue at start.
        spawn_probability: Chance a processed task spawns one subtask.
        max_spawns: Global cap on spawns by this worker (guarantees
            termination).
        task_time: Simulated processing time per task.
    """

    def __init__(
        self,
        num_processes: int,
        initial_tasks: int,
        spawn_probability: float = 0.3,
        max_spawns: int = 5,
        task_time: float = 2.0,
    ):
        self._n = num_processes
        self._initial = initial_tasks
        self._spawn_probability = spawn_probability
        self._spawns_left = max_spawns
        self._task_time = task_time
        self._queue = 0
        self._busy = False

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("idle", True)
        ctx.set_value("processed", 0)

    def on_start(self, ctx: ProcessContext) -> None:
        self._queue = self._initial
        self._maybe_begin(ctx)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        assert message.payload == "TASK"
        self._queue += 1
        self._maybe_begin(ctx)

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        assert name == "task-done"
        self._busy = False
        ctx.set_value("processed", ctx.get_value("processed") + 1)
        if (
            self._spawns_left > 0
            and ctx.random.random() < self._spawn_probability
        ):
            self._spawns_left -= 1
            peer = ctx.random.randrange(self._n - 1)
            if peer >= ctx.process_id:
                peer += 1
            ctx.send(peer, "TASK")
        self._maybe_begin(ctx)

    def _maybe_begin(self, ctx: ProcessContext) -> None:
        if not self._busy and self._queue > 0:
            self._queue -= 1
            self._busy = True
            ctx.set_value("idle", False)
            ctx.set_timer(self._task_time, "task-done")
        elif not self._busy:
            ctx.set_value("idle", True)


def build_work_stealing(
    num_workers: int,
    initial_tasks: int = 2,
    seed: int = 0,
    spawn_probability: float = 0.3,
) -> Computation:
    """Run the workers to quiescence and return the recorded computation."""
    if num_workers < 2:
        raise ValueError("need at least two workers")
    programs: List[ProcessProgram] = [
        WorkStealingWorker(
            num_workers,
            initial_tasks,
            spawn_probability=spawn_probability,
        )
        for _ in range(num_workers)
    ]
    simulator = Simulator(programs, seed=seed)
    return simulator.run(max_events=200 * num_workers)
