"""Token-ring mutual exclusion (protocol workload P1).

A single token circulates a ring; a process enters its critical section
only while holding the token, so two processes are never in the critical
section simultaneously — *unless* the injectable bug is enabled, in which
case one rogue process periodically enters without the token.

The recorded trace carries two boolean variables per process:

* ``token`` — the process currently holds the token;
* ``cs`` — the process is in its critical section.

This is the paper's introductory debugging scenario: a mutual-exclusion
violation is ``possibly(cs_i AND cs_j)`` — a conjunctive predicate, solved
in polynomial time by CPDHB.  With the bug disabled the detector reports
False on every pair; with it enabled, pairs involving the rogue process
report True.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.computation import Computation
from repro.simulation.faults import FaultPlan
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = ["TokenRingProcess", "build_token_ring"]


class TokenRingProcess(ProcessProgram):
    """One member of the token ring.

    Args:
        num_processes: Ring size.
        hops: How many times the token is passed in total.
        rogue: If True, this process periodically enters the critical
            section without the token (the injected safety bug).
        hold_time: Simulated time spent in the critical section.
    """

    def __init__(
        self,
        num_processes: int,
        hops: int,
        rogue: bool = False,
        hold_time: float = 2.0,
    ):
        self._n = num_processes
        self._hops = hops
        self._rogue = rogue
        self._hold = hold_time
        # Remaining token passes allowed while this process holds the token.
        self._pending = 0

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("token", ctx.process_id == 0)
        ctx.set_value("cs", False)

    def on_start(self, ctx: ProcessContext) -> None:
        if ctx.process_id == 0:
            self._pending = self._hops
            ctx.set_timer(1.0, "enter")
        if self._rogue:
            ctx.set_timer(ctx.random.uniform(2.0, 8.0), "rogue-enter")

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        if name == "enter":
            ctx.set_value("cs", True)
            ctx.set_timer(self._hold, "exit")
        elif name == "exit":
            ctx.set_value("cs", False)
            self._pass_token(ctx)
        elif name == "rogue-enter":
            # Bug: enter the critical section without holding the token.
            ctx.set_value("cs", True)
            ctx.set_timer(self._hold, "rogue-exit")
        elif name == "rogue-exit":
            ctx.set_value("cs", False)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind, remaining = message.payload
        assert kind == "TOKEN"
        ctx.set_value("token", True)
        self._pending = remaining
        ctx.set_timer(1.0, "enter")

    def _pass_token(self, ctx: ProcessContext) -> None:
        if self._pending <= 0:
            return  # token retires here; ring goes quiet
        ctx.set_value("token", False)
        successor = (ctx.process_id + 1) % self._n
        ctx.send(successor, ("TOKEN", self._pending - 1))


def build_token_ring(
    num_processes: int,
    hops: int,
    seed: int = 0,
    rogue_process: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
) -> Computation:
    """Run the token ring and return the recorded computation.

    Args:
        num_processes: Ring size (>= 2).
        hops: Total token passes.
        seed: Simulation seed.
        rogue_process: Process index that violates mutual exclusion, or
            None for a correct execution.
    """
    if num_processes < 2:
        raise ValueError("token ring needs at least two processes")
    programs: List[ProcessProgram] = [
        TokenRingProcess(
            num_processes,
            hops,
            rogue=(p == rogue_process),
        )
        for p in range(num_processes)
    ]
    simulator = Simulator(programs, seed=seed, faults=faults)
    return simulator.run(max_events=50 * (hops + num_processes))
