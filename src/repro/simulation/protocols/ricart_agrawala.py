"""Ricart–Agrawala distributed mutual exclusion (protocol workload P8).

The permission-based counterpart to the token ring: a process wanting the
critical section broadcasts a timestamped REQUEST and enters after
collecting a REPLY from every peer; a peer defers its reply while it wants
(or holds) the critical section with an earlier (timestamp, id) pair.
Lamport logical clocks order the requests.

Monitored variables per process: ``cs`` (in critical section),
``requesting``, ``entries`` (completed critical sections, ±1 regime).

Detection story: with correct deferral, ``possibly(cs_i AND cs_j)`` is
False for every pair despite heavy message concurrency — a much stronger
workout for CPDHB than the token ring, where the token serializes
everything.  The injectable bug makes one process reply immediately even
when it should defer, and the violation becomes detectable.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.computation import Computation
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = ["RicartAgrawalaProcess", "build_ricart_agrawala"]


class RicartAgrawalaProcess(ProcessProgram):
    """One participant.

    Args:
        num_processes: Total participants.
        rounds: Number of critical-section entries this process performs.
        never_defers: Injected bug — always reply immediately, even while
            requesting/holding with priority.
        cs_time: Simulated time inside the critical section.
    """

    def __init__(
        self,
        num_processes: int,
        rounds: int,
        never_defers: bool = False,
        cs_time: float = 2.0,
    ):
        self._n = num_processes
        self._rounds = rounds
        self._never_defers = never_defers
        self._cs_time = cs_time
        self._lamport = 0
        self._request_stamp: Optional[Tuple[int, int]] = None
        self._replies: Set[int] = set()
        self._deferred: List[Tuple[int, Tuple[int, int]]] = []
        self._in_cs = False

    # ------------------------------------------------------------------
    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("cs", False)
        ctx.set_value("requesting", False)
        ctx.set_value("entries", 0)

    def on_start(self, ctx: ProcessContext) -> None:
        if self._rounds > 0:
            ctx.set_timer(ctx.random.uniform(0.5, 4.0), "want-cs")

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        if name == "want-cs":
            self._request(ctx)
        elif name == "leave-cs":
            self._release(ctx)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind, stamp, sender_clock = message.payload
        self._lamport = max(self._lamport, sender_clock) + 1
        if kind == "REQUEST":
            self._on_request(ctx, message.source, stamp)
        elif kind == "REPLY":
            self._on_reply(ctx, message.source, stamp)

    # ------------------------------------------------------------------
    def _request(self, ctx: ProcessContext) -> None:
        self._lamport += 1
        self._request_stamp = (self._lamport, ctx.process_id)
        self._replies = set()
        ctx.set_value("requesting", True)
        for peer in range(self._n):
            if peer != ctx.process_id:
                ctx.send(
                    peer, ("REQUEST", self._request_stamp, self._lamport)
                )
        if self._n == 1:  # pragma: no cover - degenerate configuration
            self._enter(ctx)

    def _on_request(self, ctx: ProcessContext, source: int, stamp) -> None:
        mine = self._request_stamp
        has_priority = (
            not self._never_defers
            and (self._in_cs or (mine is not None and tuple(mine) < tuple(stamp)))
        )
        if has_priority:
            self._deferred.append((source, tuple(stamp)))
        else:
            self._lamport += 1
            ctx.send(source, ("REPLY", tuple(stamp), self._lamport))

    def _on_reply(self, ctx: ProcessContext, source: int, stamp) -> None:
        if self._request_stamp is None or tuple(stamp) != self._request_stamp:
            return  # stale reply for an earlier request
        self._replies.add(source)
        if len(self._replies) == self._n - 1:
            self._enter(ctx)

    def _enter(self, ctx: ProcessContext) -> None:
        self._in_cs = True
        ctx.set_value("requesting", False)
        ctx.set_value("cs", True)
        ctx.set_value("entries", ctx.get_value("entries") + 1)
        ctx.set_timer(self._cs_time, "leave-cs")

    def _release(self, ctx: ProcessContext) -> None:
        self._in_cs = False
        self._request_stamp = None
        ctx.set_value("cs", False)
        for peer, stamp in self._deferred:
            self._lamport += 1
            ctx.send(peer, ("REPLY", stamp, self._lamport))
        self._deferred.clear()
        self._rounds -= 1
        if self._rounds > 0:
            ctx.set_timer(ctx.random.uniform(0.5, 4.0), "want-cs")


def build_ricart_agrawala(
    num_processes: int,
    rounds: int = 2,
    seed: int = 0,
    never_defers: Optional[int] = None,
) -> Computation:
    """Run the protocol and return the recorded computation.

    Args:
        num_processes: Participants (>= 2).
        rounds: Critical-section entries per process.
        seed: Simulation seed.
        never_defers: Process index with the injected reply-always bug, or
            None for a correct execution.
    """
    if num_processes < 2:
        raise ValueError("need at least two processes")
    programs: List[ProcessProgram] = [
        RicartAgrawalaProcess(
            num_processes,
            rounds,
            never_defers=(p == never_defers),
        )
        for p in range(num_processes)
    ]
    simulator = Simulator(programs, seed=seed)
    return simulator.run(max_events=100 * num_processes * rounds + 200)
