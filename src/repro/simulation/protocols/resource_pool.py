"""Counting-semaphore resource pool (protocol workload P4).

Process 0 is a coordinator holding ``capacity`` permits; worker processes
repeatedly request a permit, hold the resource for a while (boolean
variable ``busy`` true), release it, and idle.  Requests beyond capacity
queue at the coordinator.

The monitored ``busy`` variables feed the paper's Section 4.3 symmetric
predicates directly:

* ``absence_of_simple_majority("busy", n)`` — were more than half the
  workers ever simultaneously busy?  (possibly of the complement);
* ``exactly_k_tokens("busy", n, capacity)`` — was the pool ever saturated?
* ``exclusive_or`` / ``not_all_equal`` — the paper's other examples.

The coordinator enforces at most ``capacity`` concurrent holders, so
``possibly(busy-count = j)`` must be False for every ``j > capacity`` —
an invariant the integration tests check with the ±1 sum algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.computation import Computation
from repro.simulation.faults import FaultPlan
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = ["CoordinatorProcess", "WorkerProcess", "build_resource_pool"]


class CoordinatorProcess(ProcessProgram):
    """Grants up to ``capacity`` permits; queues excess requests."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._free = capacity
        self._waiting: Deque[int] = deque()

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("free_permits", self._capacity)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind = message.payload
        if kind == "REQUEST":
            if self._free > 0:
                self._free -= 1
                ctx.send(message.source, "GRANT")
            else:
                self._waiting.append(message.source)
        elif kind == "RELEASE":
            if self._waiting:
                ctx.send(self._waiting.popleft(), "GRANT")
            else:
                self._free += 1
        ctx.set_value("free_permits", self._free)


class WorkerProcess(ProcessProgram):
    """Requests, holds, releases — ``rounds`` times."""

    def __init__(self, rounds: int, hold_time: float = 4.0, think_time: float = 6.0):
        self._rounds = rounds
        self._hold = hold_time
        self._think = think_time

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("busy", False)

    def on_start(self, ctx: ProcessContext) -> None:
        if self._rounds > 0:
            ctx.set_timer(ctx.random.uniform(0.5, self._think), "request")

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        if name == "request":
            ctx.send(0, "REQUEST")
        elif name == "release":
            ctx.set_value("busy", False)
            ctx.send(0, "RELEASE")
            self._rounds -= 1
            if self._rounds > 0:
                ctx.set_timer(ctx.random.uniform(0.5, self._think), "request")

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        assert message.payload == "GRANT"
        ctx.set_value("busy", True)
        ctx.set_timer(ctx.random.uniform(0.5, self._hold), "release")


def build_resource_pool(
    num_workers: int,
    capacity: int,
    rounds: int = 2,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
) -> Computation:
    """Run the pool and return the recorded computation.

    Process 0 is the coordinator; workers are processes 1..num_workers.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    programs: List[ProcessProgram] = [CoordinatorProcess(capacity)]
    programs.extend(WorkerProcess(rounds) for _ in range(num_workers))
    simulator = Simulator(programs, seed=seed, faults=faults)
    return simulator.run(max_events=60 * num_workers * rounds + 200)
