"""Primary-backup replication (protocol workload P3).

Process 0 is the primary: it applies a stream of client updates locally
and asynchronously replicates each to every backup.  Each process monitors
the integer variable ``applied`` — the number of updates it has applied —
which increases by exactly one per apply event: the ±1 regime of the
paper's Section 4.2.

Natural relational-sum queries on the recorded trace:

* ``possibly(sum(applied) = j)`` for any j up to ``(backups+1) * updates``
  — decided by Theorem 7 in polynomial time;
* ``definitely(sum(applied) >= j)`` — replication progress guarantees;
* staleness questions (primary far ahead) via general predicates.
"""

from __future__ import annotations

from typing import List, Optional

from repro.computation import Computation
from repro.simulation.faults import FaultPlan
from repro.simulation.process import Message, ProcessContext, ProcessProgram
from repro.simulation.simulator import Simulator

__all__ = ["PrimaryProcess", "BackupProcess", "build_primary_backup"]


class PrimaryProcess(ProcessProgram):
    """Applies ``num_updates`` client updates and replicates each."""

    def __init__(self, num_processes: int, num_updates: int, interval: float = 3.0):
        self._n = num_processes
        self._updates = num_updates
        self._interval = interval
        self._applied = 0

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("applied", 0)

    def on_start(self, ctx: ProcessContext) -> None:
        if self._updates > 0:
            ctx.set_timer(self._interval, "client-update")

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        assert name == "client-update"
        self._applied += 1
        ctx.set_value("applied", self._applied)
        for backup in range(1, self._n):
            ctx.send(backup, ("REPLICATE", self._applied))
        if self._applied < self._updates:
            ctx.set_timer(self._interval, "client-update")


class BackupProcess(ProcessProgram):
    """Applies replicated updates in sequence-number order.

    Out-of-order deliveries (the channel is not FIFO) are buffered until
    the gap fills, so ``applied`` still rises by exactly one per apply.
    """

    def __init__(self) -> None:
        self._applied = 0
        self._buffer: set[int] = set()

    def on_init(self, ctx: ProcessContext) -> None:
        ctx.set_value("applied", 0)

    def on_message(self, ctx: ProcessContext, message: Message) -> None:
        kind, sequence = message.payload
        assert kind == "REPLICATE"
        self._buffer.add(sequence)
        self._apply_one(ctx)

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        assert name == "drain"
        self._apply_one(ctx)

    def _apply_one(self, ctx: ProcessContext) -> None:
        """Apply at most one update per event, preserving the ±1 regime."""
        if self._applied + 1 in self._buffer:
            self._buffer.remove(self._applied + 1)
            self._applied += 1
            ctx.set_value("applied", self._applied)
        if self._applied + 1 in self._buffer:
            ctx.set_timer(0.1, "drain")


def build_primary_backup(
    num_backups: int,
    num_updates: int,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
) -> Computation:
    """Run replication and return the recorded computation."""
    if num_backups < 1:
        raise ValueError("need at least one backup")
    if num_updates < 1:
        raise ValueError("need at least one update")
    n = num_backups + 1
    programs: List[ProcessProgram] = [PrimaryProcess(n, num_updates)]
    programs.extend(BackupProcess() for _ in range(num_backups))
    simulator = Simulator(programs, seed=seed, faults=faults)
    return simulator.run(max_events=10 * n * num_updates + 100)
