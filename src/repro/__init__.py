"""repro — global predicate detection in distributed computations.

A full reproduction of Mittal & Garg, *On Detecting Global Predicates in
Distributed Computations* (ICDCS 2001): the computation/cut/lattice
substrate, the paper's detection algorithms (singular k-CNF, conjunctive,
relational-sum, symmetric), its NP-completeness reductions, and a
message-passing simulator plus trace tooling for generating workloads.

Quickstart::

    from repro import ComputationBuilder, possibly
    from repro.predicates import conjunction, local

    b = ComputationBuilder(2)
    b.internal(0, cs=True)
    b.internal(1, cs=True)
    comp = b.build()
    both_in_cs = conjunction(local(0, "cs"), local(1, "cs"))
    assert possibly(comp, both_in_cs)
"""

from repro import obs
from repro.checker import TraceAssertionError, TraceChecker
from repro.computation import (
    Computation,
    ComputationBuilder,
    Cut,
    final_cut,
    initial_cut,
)
from repro.detection import definitely, detect, possibly
from repro.events import Event, EventId, EventKind, VectorClock

__version__ = "1.0.0"

__all__ = [
    "Computation",
    "obs",
    "TraceAssertionError",
    "TraceChecker",
    "ComputationBuilder",
    "Cut",
    "Event",
    "EventId",
    "EventKind",
    "VectorClock",
    "definitely",
    "detect",
    "final_cut",
    "initial_cut",
    "possibly",
    "__version__",
]
