"""Channel-state predicates: properties of the messages in flight.

A global state is more than the local states — it includes the channel
contents (the messages sent but not yet received at the cut).  Classical
conditions need them:

* termination = every process idle **and** no message in flight;
* token conservation = tokens held + tokens in flight = 1.

:class:`InFlightPredicate` counts the messages crossing a cut, optionally
restricted to one (source, destination) channel, and compares the count
against a constant.  Channel predicates carry no special structure the
paper's fast algorithms exploit, so the detection facade evaluates them by
enumeration (or as conjuncts of :class:`~repro.predicates.base.AndPredicate`
combinations); the stable-predicate detector handles the common
termination form in O(messages).
"""

from __future__ import annotations

from typing import Optional

from repro.computation import Cut
from repro.predicates.base import GlobalPredicate
from repro.predicates.relational import Relop

__all__ = ["InFlightPredicate", "in_flight", "quiescent"]


class InFlightPredicate(GlobalPredicate):
    """``#messages crossing the cut  relop  constant``.

    Args:
        relop: Comparison operator.
        constant: Right-hand side.
        source: Restrict to messages sent by this process (None = any).
        destination: Restrict to messages received by this process.
    """

    def __init__(
        self,
        relop: Relop,
        constant: int,
        source: Optional[int] = None,
        destination: Optional[int] = None,
    ):
        self.relop = relop
        self.constant = int(constant)
        self.source = source
        self.destination = destination

    def count(self, cut: Cut) -> int:
        """Number of matching in-flight messages at the cut."""
        total = 0
        for send, recv in cut.crossing_messages():
            if self.source is not None and send[0] != self.source:
                continue
            if self.destination is not None and recv[0] != self.destination:
                continue
            total += 1
        return total

    def evaluate(self, cut: Cut) -> bool:
        return self.relop.compare(self.count(cut), self.constant)

    def description(self) -> str:
        scope = ""
        if self.source is not None:
            scope += f" from p{self.source}"
        if self.destination is not None:
            scope += f" to p{self.destination}"
        return f"in_flight{scope} {self.relop.value} {self.constant}"

    def __repr__(self) -> str:
        return (
            f"InFlightPredicate({self.relop.value!r}, {self.constant}, "
            f"source={self.source}, destination={self.destination})"
        )


def in_flight(
    relop: str,
    constant: int,
    source: Optional[int] = None,
    destination: Optional[int] = None,
) -> InFlightPredicate:
    """Shorthand: ``in_flight("==", 0)`` — no message crossing the cut."""
    return InFlightPredicate(
        Relop.from_symbol(relop), constant, source, destination
    )


def quiescent() -> InFlightPredicate:
    """No message in flight — the channel half of termination."""
    return in_flight("==", 0)
