"""Detection modalities.

The predicate-detection problem comes in two modalities (paper, Section 2.3,
after Cooper–Marzullo):

* ``possibly(B)`` — some consistent cut of the computation satisfies B;
* ``definitely(B)`` — every run of the computation passes through a
  consistent cut satisfying B.

``possibly`` is suited to detecting *bad* conditions (mutual-exclusion
violations, absence of majority); ``definitely`` to verifying *good* ones
(commit points, leader election).
"""

from __future__ import annotations

import enum

__all__ = ["Modality"]


class Modality(enum.Enum):
    """Which quantification over runs/cuts a detection query uses."""

    POSSIBLY = "possibly"
    DEFINITELY = "definitely"

    def __str__(self) -> str:
        return self.value
