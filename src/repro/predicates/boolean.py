"""CNF predicates over per-process boolean variables.

The paper's headline object is the *singular k-CNF predicate*: a CNF whose
clauses contain variables from pairwise-disjoint sets of processes
(Section 2.3).  A singular 1-CNF is exactly a conjunctive predicate; the
paper proves singular 2-CNF detection NP-complete (Theorem 1), closing the
gap between the two.

:class:`Clause` is a disjunction of :class:`~repro.predicates.local.Literal`;
:class:`CNFPredicate` is a conjunction of clauses and knows whether it is
singular, what its clause *groups* (process sets) are, and how to evaluate
itself on a cut.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.computation import Cut
from repro.predicates.base import GlobalPredicate
from repro.predicates.errors import NotSingularError, PredicateError
from repro.predicates.local import Literal

__all__ = ["Clause", "CNFPredicate", "clause", "cnf", "singular_cnf"]


class Clause(GlobalPredicate):
    """A disjunction of literals."""

    def __init__(self, literals: Iterable[Literal]):
        self.literals: Tuple[Literal, ...] = tuple(literals)
        if not self.literals:
            raise PredicateError("a clause needs at least one literal")

    def evaluate(self, cut: Cut) -> bool:
        return any(lit.evaluate(cut) for lit in self.literals)

    def processes(self) -> FrozenSet[int]:
        """Set of processes hosting this clause's variables.

        The paper calls this the clause's *group* ``P_i``.
        """
        return frozenset(lit.process for lit in self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def description(self) -> str:
        return "(" + " OR ".join(lit.description() for lit in self.literals) + ")"

    def __repr__(self) -> str:
        return f"Clause({list(self.literals)!r})"


class CNFPredicate(GlobalPredicate):
    """A conjunction of clauses (CNF over per-process boolean variables)."""

    def __init__(self, clauses: Iterable[Clause]):
        self.clauses: Tuple[Clause, ...] = tuple(clauses)
        if not self.clauses:
            raise PredicateError("a CNF predicate needs at least one clause")

    def evaluate(self, cut: Cut) -> bool:
        return all(cl.evaluate(cut) for cl in self.clauses)

    @property
    def max_clause_size(self) -> int:
        """k such that the predicate is in k-CNF (maximum clause width)."""
        return max(len(cl) for cl in self.clauses)

    def is_singular(self) -> bool:
        """True iff no two clauses contain variables from the same process."""
        seen: Set[int] = set()
        for cl in self.clauses:
            procs = cl.processes()
            if seen & procs:
                return False
            seen |= procs
        return True

    def require_singular(self) -> None:
        """Raise :class:`NotSingularError` unless the predicate is singular."""
        seen: Set[int] = set()
        for cl in self.clauses:
            overlap = seen & cl.processes()
            if overlap:
                raise NotSingularError(
                    f"processes {sorted(overlap)} appear in more than one clause"
                )
            seen |= cl.processes()

    def groups(self) -> List[FrozenSet[int]]:
        """The process set of each clause, in clause order."""
        return [cl.processes() for cl in self.clauses]

    def is_conjunctive(self) -> bool:
        """True iff every clause has exactly one literal (1-CNF)."""
        return all(len(cl) == 1 for cl in self.clauses)

    def description(self) -> str:
        return " AND ".join(cl.description() for cl in self.clauses)

    def __repr__(self) -> str:
        return f"CNFPredicate({list(self.clauses)!r})"


def clause(*literals: Literal) -> Clause:
    """Build a clause from literals."""
    return Clause(literals)


def cnf(*clauses: Clause) -> CNFPredicate:
    """Build a CNF predicate from clauses (no singularity requirement)."""
    return CNFPredicate(clauses)


def singular_cnf(*clauses: Clause) -> CNFPredicate:
    """Build a CNF predicate, verifying the singularity condition."""
    predicate = CNFPredicate(clauses)
    predicate.require_singular()
    return predicate
