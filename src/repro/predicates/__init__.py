"""Predicate language (substrate S6): locals, CNF, conjunctive, relational,
symmetric predicates, boolean combinators, and modalities."""

from repro.predicates.base import (
    AndPredicate,
    ConstantPredicate,
    FunctionPredicate,
    GlobalPredicate,
    NotPredicate,
    OrPredicate,
    conjunction,
    disjunction,
    negation,
)
from repro.predicates.channel import InFlightPredicate, in_flight, quiescent
from repro.predicates.boolean import (
    Clause,
    CNFPredicate,
    clause,
    cnf,
    singular_cnf,
)
from repro.predicates.conjunctive import (
    ConjunctivePredicate,
    conjunctive,
    conjunctive_from_cnf,
)
from repro.predicates.errors import (
    NotSingularError,
    PredicateError,
    UnsupportedPredicateError,
)
from repro.predicates.inequity import InequityClause, InequityPredicate
from repro.predicates.local import (
    Literal,
    LocalPredicate,
    local,
    local_fn,
    true_events,
)
from repro.predicates.modalities import Modality
from repro.predicates.parser import PredicateSyntaxError, parse_predicate
from repro.predicates.relational import (
    RelationalSumPredicate,
    Relop,
    sum_predicate,
)
from repro.predicates.symmetric import (
    SymmetricPredicate,
    absence_of_simple_majority,
    absence_of_two_thirds_majority,
    all_equal,
    exactly_k_tokens,
    exclusive_or,
    not_all_equal,
    symmetric_from_counts,
    symmetric_from_truth_function,
)

__all__ = [
    "AndPredicate",
    "CNFPredicate",
    "Clause",
    "ConjunctivePredicate",
    "ConstantPredicate",
    "FunctionPredicate",
    "GlobalPredicate",
    "InFlightPredicate",
    "InequityClause",
    "InequityPredicate",
    "Literal",
    "LocalPredicate",
    "Modality",
    "NotPredicate",
    "NotSingularError",
    "OrPredicate",
    "PredicateError",
    "PredicateSyntaxError",
    "RelationalSumPredicate",
    "Relop",
    "SymmetricPredicate",
    "UnsupportedPredicateError",
    "absence_of_simple_majority",
    "absence_of_two_thirds_majority",
    "all_equal",
    "clause",
    "cnf",
    "conjunction",
    "conjunctive",
    "conjunctive_from_cnf",
    "disjunction",
    "exactly_k_tokens",
    "exclusive_or",
    "in_flight",
    "local",
    "local_fn",
    "negation",
    "not_all_equal",
    "parse_predicate",
    "quiescent",
    "singular_cnf",
    "sum_predicate",
    "symmetric_from_counts",
    "symmetric_from_truth_function",
    "true_events",
]
