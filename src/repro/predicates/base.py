"""Global predicate abstraction.

A *global predicate* is a boolean-valued function of a consistent cut
(paper, Section 2.3).  Every predicate in this library is a
:class:`GlobalPredicate`; concrete classes expose enough structure for the
detection layer to dispatch to the right algorithm (conjunctive scan, CNF
engines, min-cut, lattice search).

Combinators :func:`conjunction`, :func:`disjunction` and :func:`negation`
build arbitrary boolean combinations; they remain detectable by the
Cooper–Marzullo baseline and, where structure permits, by faster engines.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, List, Sequence, Tuple

from repro.computation import Cut

__all__ = [
    "GlobalPredicate",
    "FunctionPredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "ConstantPredicate",
    "conjunction",
    "disjunction",
    "negation",
]


class GlobalPredicate(abc.ABC):
    """A boolean-valued function on consistent cuts."""

    @abc.abstractmethod
    def evaluate(self, cut: Cut) -> bool:
        """Truth value of the predicate at the given cut."""

    def __call__(self, cut: Cut) -> bool:
        return self.evaluate(cut)

    # Convenience operators so predicates compose readably.
    def __and__(self, other: "GlobalPredicate") -> "AndPredicate":
        return AndPredicate([self, other])

    def __or__(self, other: "GlobalPredicate") -> "OrPredicate":
        return OrPredicate([self, other])

    def __invert__(self) -> "NotPredicate":
        return NotPredicate(self)

    def description(self) -> str:
        """Human-readable rendering (used in reports and benchmarks)."""
        return repr(self)


class FunctionPredicate(GlobalPredicate):
    """Wraps an arbitrary ``Cut -> bool`` function.

    The most general predicate form; only the enumeration-based detectors
    accept it.
    """

    def __init__(self, fn: Callable[[Cut], bool], name: str = "<function>"):
        self._fn = fn
        self._name = name

    @property
    def fn(self) -> Callable[[Cut], bool]:
        """The wrapped callable (the static classifier analyzes it)."""
        return self._fn

    def evaluate(self, cut: Cut) -> bool:
        return bool(self._fn(cut))

    def description(self) -> str:
        return self._name

    def __repr__(self) -> str:
        return f"FunctionPredicate({self._name})"


class ConstantPredicate(GlobalPredicate):
    """A predicate that ignores the cut."""

    def __init__(self, value: bool):
        self._value = bool(value)

    def evaluate(self, cut: Cut) -> bool:
        return self._value

    def __repr__(self) -> str:
        return f"ConstantPredicate({self._value})"


class AndPredicate(GlobalPredicate):
    """Conjunction of sub-predicates."""

    def __init__(self, parts: Iterable[GlobalPredicate]):
        self.parts: Tuple[GlobalPredicate, ...] = tuple(parts)
        if not self.parts:
            raise ValueError("empty conjunction (use ConstantPredicate(True))")

    def evaluate(self, cut: Cut) -> bool:
        return all(part.evaluate(cut) for part in self.parts)

    def description(self) -> str:
        return "(" + " AND ".join(p.description() for p in self.parts) + ")"

    def __repr__(self) -> str:
        return f"AndPredicate({list(self.parts)!r})"


class OrPredicate(GlobalPredicate):
    """Disjunction of sub-predicates.

    ``possibly`` distributes over disjunction (paper, Section 4.3), which the
    detection facade exploits: ``possibly(A or B) = possibly(A) or
    possibly(B)``.
    """

    def __init__(self, parts: Iterable[GlobalPredicate]):
        self.parts: Tuple[GlobalPredicate, ...] = tuple(parts)
        if not self.parts:
            raise ValueError("empty disjunction (use ConstantPredicate(False))")

    def evaluate(self, cut: Cut) -> bool:
        return any(part.evaluate(cut) for part in self.parts)

    def description(self) -> str:
        return "(" + " OR ".join(p.description() for p in self.parts) + ")"

    def __repr__(self) -> str:
        return f"OrPredicate({list(self.parts)!r})"


class NotPredicate(GlobalPredicate):
    """Negation of a sub-predicate."""

    def __init__(self, inner: GlobalPredicate):
        self.inner = inner

    def evaluate(self, cut: Cut) -> bool:
        return not self.inner.evaluate(cut)

    def description(self) -> str:
        return f"NOT {self.inner.description()}"

    def __repr__(self) -> str:
        return f"NotPredicate({self.inner!r})"


def conjunction(*parts: GlobalPredicate) -> GlobalPredicate:
    """AND of the given predicates (flattening nested ANDs)."""
    flat: List[GlobalPredicate] = []
    for part in parts:
        if isinstance(part, AndPredicate):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return AndPredicate(flat)


def disjunction(*parts: GlobalPredicate) -> GlobalPredicate:
    """OR of the given predicates (flattening nested ORs)."""
    flat: List[GlobalPredicate] = []
    for part in parts:
        if isinstance(part, OrPredicate):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return OrPredicate(flat)


def negation(part: GlobalPredicate) -> GlobalPredicate:
    """NOT of the given predicate (collapsing double negation)."""
    if isinstance(part, NotPredicate):
        return part.inner
    return NotPredicate(part)
