"""Errors raised by the predicate layer."""

from __future__ import annotations

__all__ = ["PredicateError", "NotSingularError", "UnsupportedPredicateError"]


class PredicateError(Exception):
    """Base class for predicate-layer errors."""


class NotSingularError(PredicateError):
    """A CNF predicate violates the singularity condition.

    A CNF predicate is *singular* iff no two clauses contain variables from
    the same process (paper, Section 2.3); algorithms that require
    singularity raise this error otherwise.
    """


class UnsupportedPredicateError(PredicateError):
    """A detection algorithm was handed a predicate class it cannot solve."""
