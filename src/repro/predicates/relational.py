"""Relational sum predicates: ``x_1 + ... + x_n relop k``.

Each ``x_i`` is an integer variable on process *i* (paper, Section 2.3,
following Tomlinson–Garg, with equality included as the paper does).  The
complexity landscape the paper establishes:

* relop in {<, <=, >, >=}: polynomial for arbitrary per-step changes
  (min-cut; Chase–Garg / Tomlinson–Garg cell of Figure 1);
* relop in {=, !=} with per-step changes of at most 1: polynomial
  (this paper, Theorems 4–7);
* relop = with arbitrary per-step changes: NP-complete
  (this paper, Theorem 2, via SUBSET-SUM).

:meth:`RelationalSumPredicate.unit_step` checks which regime a computation
falls in.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict

from repro.computation import Computation, Cut
from repro.predicates.base import GlobalPredicate
from repro.predicates.errors import PredicateError

__all__ = ["Relop", "RelationalSumPredicate", "sum_predicate"]


class Relop(enum.Enum):
    """Comparison operators for relational predicates."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    @property
    def compare(self) -> Callable[[int, int], bool]:
        """The operator as a two-argument function."""
        return _COMPARATORS[self]

    @classmethod
    def from_symbol(cls, symbol: str) -> "Relop":
        """Parse ``<  <=  >  >=  ==  =  !=`` into a :class:`Relop`."""
        normalized = {"=": "=="}.get(symbol, symbol)
        for op in cls:
            if op.value == normalized:
                return op
        raise PredicateError(f"unknown relational operator {symbol!r}")


_COMPARATORS: Dict[Relop, Callable[[int, int], bool]] = {
    Relop.LT: lambda a, b: a < b,
    Relop.LE: lambda a, b: a <= b,
    Relop.GT: lambda a, b: a > b,
    Relop.GE: lambda a, b: a >= b,
    Relop.EQ: lambda a, b: a == b,
    Relop.NE: lambda a, b: a != b,
}


class RelationalSumPredicate(GlobalPredicate):
    """``sum over processes of variable  relop  constant``."""

    def __init__(self, variable: str, relop: Relop, constant: int):
        self.variable = variable
        self.relop = relop
        self.constant = int(constant)

    def evaluate(self, cut: Cut) -> bool:
        return self.relop.compare(cut.variable_sum(self.variable), self.constant)

    def unit_step(self, computation: Computation) -> bool:
        """True iff every event changes the variable by at most 1.

        This is the hypothesis of the paper's polynomial algorithm for
        ``sum = k`` (Section 4.2); boolean variables encoded as 0/1 always
        satisfy it.
        """
        for p in range(computation.num_processes):
            events = computation.events_of(p)
            previous = int(events[0].value(self.variable, 0))
            for event in events[1:]:
                current = int(event.value(self.variable, 0))
                if abs(current - previous) > 1:
                    return False
                previous = current
        return True

    def description(self) -> str:
        return f"sum({self.variable}) {self.relop.value} {self.constant}"

    def __repr__(self) -> str:
        return (
            f"RelationalSumPredicate({self.variable!r}, "
            f"{self.relop.value!r}, {self.constant})"
        )


def sum_predicate(variable: str, relop: str, constant: int) -> RelationalSumPredicate:
    """Shorthand: ``sum_predicate("x", "<=", 3)``."""
    return RelationalSumPredicate(variable, Relop.from_symbol(relop), constant)
