"""Inequity predicates: conjunctions of ``u_i != v_i`` clauses.

The paper's Corollary 2: detecting a conjunction of clauses of the form
``x relop y`` with relop in {<, <=, >, >=, !=}, where each clause's two
integer variables live on their own pair of processes (no process serves
two clauses), is NP-complete.  The witness construction encodes a boolean
clause ``a OR b`` as ``u != v`` where ``u`` is 1 unless ``a`` holds (then
2) and ``v`` is 1 unless ``b`` holds (then 0) — see
:mod:`repro.reductions.inequity`.

This module provides the predicate class itself.  Each clause compares the
values of one variable on two distinct processes; the conjunction requires
every clause to hold at the cut.  Detection dispatches to enumeration (the
class is NP-complete in general; that is the point of the corollary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.computation import Cut
from repro.predicates.base import GlobalPredicate
from repro.predicates.errors import PredicateError
from repro.predicates.relational import Relop

__all__ = ["InequityClause", "InequityPredicate"]


@dataclass(frozen=True)
class InequityClause:
    """``variable@left  relop  variable@right`` on two distinct processes."""

    left_process: int
    right_process: int
    variable: str
    relop: Relop = Relop.NE

    def __post_init__(self) -> None:
        if self.left_process == self.right_process:
            raise PredicateError("inequity clause needs two distinct processes")
        if self.relop is Relop.EQ:
            raise PredicateError(
                "equality clauses are excluded by the corollary; use NE or "
                "an order comparison"
            )

    def evaluate(self, cut: Cut) -> bool:
        left = int(cut.value(self.left_process, self.variable, 0))
        right = int(cut.value(self.right_process, self.variable, 0))
        return self.relop.compare(left, right)

    def processes(self) -> Tuple[int, int]:
        return (self.left_process, self.right_process)

    def description(self) -> str:
        return (
            f"{self.variable}@p{self.left_process} {self.relop.value} "
            f"{self.variable}@p{self.right_process}"
        )


class InequityPredicate(GlobalPredicate):
    """Conjunction of inequity clauses over pairwise-disjoint process pairs.

    The process-disjointness mirrors the singularity condition of the
    paper's CNF predicates; it is what Corollary 2's hardness statement is
    about (without it the problem is *also* hard, but the corollary is the
    sharper claim).
    """

    def __init__(self, clauses: Iterable[InequityClause]):
        self.clauses: Tuple[InequityClause, ...] = tuple(clauses)
        if not self.clauses:
            raise PredicateError("an inequity predicate needs a clause")
        seen: Set[int] = set()
        for cl in self.clauses:
            procs = set(cl.processes())
            if seen & procs:
                raise PredicateError(
                    f"processes {sorted(seen & procs)} serve two clauses; "
                    "inequity predicates require disjoint pairs"
                )
            seen |= procs

    def evaluate(self, cut: Cut) -> bool:
        return all(cl.evaluate(cut) for cl in self.clauses)

    def groups(self) -> List[Tuple[int, int]]:
        """The process pair of each clause."""
        return [cl.processes() for cl in self.clauses]

    def description(self) -> str:
        return " AND ".join(cl.description() for cl in self.clauses)

    def __repr__(self) -> str:
        return f"InequityPredicate({list(self.clauses)!r})"
