"""Conjunctive predicates.

A *conjunctive predicate* is a conjunction of local predicates, at most one
per process (paper, Section 2.3; Garg–Waldecker).  It is the tractable end
of the spectrum the paper maps: ``possibly`` of a conjunctive predicate is
decidable in polynomial time by the CPDHB scan
(:mod:`repro.detection.garg_waldecker`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.computation import Cut
from repro.predicates.base import GlobalPredicate
from repro.predicates.boolean import CNFPredicate, Clause
from repro.predicates.errors import PredicateError
from repro.predicates.local import Literal, LocalPredicate

__all__ = ["ConjunctivePredicate", "conjunctive", "conjunctive_from_cnf"]


class ConjunctivePredicate(GlobalPredicate):
    """Conjunction of local predicates on pairwise-distinct processes."""

    def __init__(self, conjuncts: Iterable[LocalPredicate]):
        self.conjuncts: Tuple[LocalPredicate, ...] = tuple(conjuncts)
        if not self.conjuncts:
            raise PredicateError("a conjunctive predicate needs a conjunct")
        seen: Dict[int, LocalPredicate] = {}
        for conj in self.conjuncts:
            if conj.process in seen:
                raise PredicateError(
                    f"two conjuncts on process {conj.process}; conjunctive "
                    "predicates host at most one local predicate per process"
                )
            seen[conj.process] = conj

    def evaluate(self, cut: Cut) -> bool:
        return all(conj.evaluate(cut) for conj in self.conjuncts)

    @property
    def processes(self) -> List[int]:
        """Processes hosting a conjunct, in conjunct order."""
        return [conj.process for conj in self.conjuncts]

    def description(self) -> str:
        return " AND ".join(c.description() for c in self.conjuncts)

    def __repr__(self) -> str:
        return f"ConjunctivePredicate({list(self.conjuncts)!r})"


def conjunctive(*conjuncts: LocalPredicate) -> ConjunctivePredicate:
    """Build a conjunctive predicate from local predicates."""
    return ConjunctivePredicate(conjuncts)


def conjunctive_from_cnf(predicate: CNFPredicate) -> ConjunctivePredicate:
    """View a 1-CNF predicate as a conjunctive predicate.

    Raises :class:`PredicateError` if some clause has more than one literal
    or two clauses share a process.
    """
    conjuncts: List[LocalPredicate] = []
    for cl in predicate.clauses:
        if len(cl) != 1:
            raise PredicateError(
                "only 1-CNF predicates are conjunctive; clause "
                f"{cl.description()} has {len(cl)} literals"
            )
        conjuncts.append(cl.literals[0])
    return ConjunctivePredicate(conjuncts)
