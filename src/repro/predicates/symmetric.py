"""Symmetric global predicates on boolean variables.

A predicate of boolean variables is *symmetric* iff it is invariant under
every permutation of its variables (paper, Section 4.3).  A symmetric
predicate of n variables is fully specified by the set S of counts for
which it is true: it holds iff exactly j of the variables are true for some
j in S (Kohavi's classical characterization, cited by the paper).

Because booleans are 0/1-valued, every event changes the count by at most 1,
so ``possibly``/``definitely`` of each "exactly j" term reduces to the
paper's ±1 sum algorithm, and ``possibly`` distributes over the disjunction
across S.  Factories for the predicates the paper names are provided:
absence of simple majority, absence of two-thirds majority, exactly-k
tokens, exclusive-or, and not-all-equal.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Sequence

from repro.computation import Cut
from repro.predicates.base import GlobalPredicate
from repro.predicates.errors import PredicateError

__all__ = [
    "SymmetricPredicate",
    "symmetric_from_counts",
    "symmetric_from_truth_function",
    "absence_of_simple_majority",
    "absence_of_two_thirds_majority",
    "exactly_k_tokens",
    "exclusive_or",
    "not_all_equal",
    "all_equal",
]


class SymmetricPredicate(GlobalPredicate):
    """Holds iff the number of processes whose variable is true lies in S."""

    def __init__(self, variable: str, num_processes: int, counts: Iterable[int]):
        if num_processes <= 0:
            raise PredicateError("num_processes must be positive")
        self.variable = variable
        self.num_processes = num_processes
        self.counts: FrozenSet[int] = frozenset(int(c) for c in counts)
        for c in self.counts:
            if not 0 <= c <= num_processes:
                raise PredicateError(
                    f"count {c} outside [0, {num_processes}]"
                )

    def true_count(self, cut: Cut) -> int:
        """Number of processes whose variable is true at the cut."""
        total = 0
        for p in range(self.num_processes):
            if bool(cut.value(p, self.variable, False)):
                total += 1
        return total

    def evaluate(self, cut: Cut) -> bool:
        return self.true_count(cut) in self.counts

    def complement(self) -> "SymmetricPredicate":
        """The negated symmetric predicate (complement count set)."""
        return SymmetricPredicate(
            self.variable,
            self.num_processes,
            set(range(self.num_processes + 1)) - self.counts,
        )

    def description(self) -> str:
        return (
            f"|{{i : {self.variable}_i}}| in {sorted(self.counts)} "
            f"(n={self.num_processes})"
        )

    def __repr__(self) -> str:
        return (
            f"SymmetricPredicate({self.variable!r}, {self.num_processes}, "
            f"{sorted(self.counts)})"
        )


def symmetric_from_counts(
    variable: str, num_processes: int, counts: Iterable[int]
) -> SymmetricPredicate:
    """Symmetric predicate true exactly when the true-count lies in counts."""
    return SymmetricPredicate(variable, num_processes, counts)


def symmetric_from_truth_function(
    variable: str, num_processes: int, fn: Callable[[int, int], bool]
) -> SymmetricPredicate:
    """Build the count set by evaluating ``fn(count, n)`` for each count.

    Any symmetric boolean function arises this way; the factories below are
    special cases.
    """
    counts = [j for j in range(num_processes + 1) if fn(j, num_processes)]
    return SymmetricPredicate(variable, num_processes, counts)


def absence_of_simple_majority(variable: str, num_processes: int) -> SymmetricPredicate:
    """No strict majority of the processes has the variable true.

    Paper example: true iff the true-count is at most floor(n/2).
    """
    return symmetric_from_truth_function(
        variable, num_processes, lambda j, n: j <= n // 2
    )


def absence_of_two_thirds_majority(
    variable: str, num_processes: int
) -> SymmetricPredicate:
    """The true-count is below the two-thirds threshold ceil(2n/3)."""
    return symmetric_from_truth_function(
        variable, num_processes, lambda j, n: 3 * j < 2 * n
    )


def exactly_k_tokens(variable: str, num_processes: int, k: int) -> SymmetricPredicate:
    """Exactly ``k`` of the processes hold a token (variable true)."""
    return SymmetricPredicate(variable, num_processes, [k])


def exclusive_or(variable: str, num_processes: int) -> SymmetricPredicate:
    """XOR of the local predicates: an odd number of variables is true."""
    return symmetric_from_truth_function(
        variable, num_processes, lambda j, n: j % 2 == 1
    )


def not_all_equal(variable: str, num_processes: int) -> SymmetricPredicate:
    """Not all variables have the same value (count strictly between 0 and n)."""
    return symmetric_from_truth_function(
        variable, num_processes, lambda j, n: 0 < j < n
    )


def all_equal(variable: str, num_processes: int) -> SymmetricPredicate:
    """All variables equal: count 0 or n."""
    return SymmetricPredicate(variable, num_processes, [0, num_processes])
