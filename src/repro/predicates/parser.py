"""A small textual language for global predicates.

Lets traces be queried from the command line (:mod:`repro.cli`) and from
config files without writing Python::

    x@0 & x@1                  conjunctive: x true on processes 0 and 1
    !cs@2                      negated literal
    (x@0 | x@1) & (x@2 | x@3)  singular 2-CNF
    sum(v) == 3                relational sum predicate
    count(busy) >= 2           symmetric predicate (boolean true-count)
    count(leader) in {0, 2}    symmetric predicate with an explicit count set
    inflight == 0              channel predicate: messages crossing the cut
    inflight(1) <= 2           ... sent by process 1

Grammar (``|`` binds loosest, ``!`` tightest)::

    pred    := term ('|' term)*
    term    := factor ('&' factor)*
    factor  := '!' factor | '(' pred ')' | atom
    atom    := NAME '@' INT
             | 'sum' '(' NAME ')' RELOP INT
             | 'count' '(' NAME ')' RELOP INT
             | 'count' '(' NAME ')' 'in' '{' INT (',' INT)* '}'

The parser classifies the result structurally so the detection facade can
dispatch to the fastest engine: pure AND/OR nests over literals become
:class:`~repro.predicates.boolean.CNFPredicate` (conjunctive when 1-CNF);
everything else composes with the generic combinators.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Union

from repro.predicates.base import (
    AndPredicate,
    GlobalPredicate,
    NotPredicate,
    OrPredicate,
    conjunction,
    disjunction,
    negation,
)
from repro.predicates.boolean import Clause, CNFPredicate
from repro.predicates.errors import PredicateError
from repro.predicates.local import Literal
from repro.predicates.relational import RelationalSumPredicate, Relop
from repro.predicates.symmetric import SymmetricPredicate

__all__ = ["parse_predicate", "PredicateSyntaxError"]


class PredicateSyntaxError(PredicateError):
    """The predicate text does not conform to the grammar."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<relop><=|>=|==|!=|<|>|=)"
    r"|(?P<int>-?\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<sym>[@|&!(){},]))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    text = text.rstrip()
    position = 0
    while position < len(text):
        while position < len(text) and text[position].isspace():
            position += 1
        if position >= len(text):
            break
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PredicateSyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        tokens.append(match.group().strip())
        position = match.end()
    return [t for t in tokens if t]


class _Parser:
    def __init__(self, tokens: Sequence[str], num_processes: Optional[int]):
        self._tokens = list(tokens)
        self._index = 0
        self._num_processes = num_processes

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise PredicateSyntaxError("unexpected end of predicate")
        self._index += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._next()
        if got != token:
            raise PredicateSyntaxError(f"expected {token!r}, found {got!r}")

    def _expect_int(self) -> int:
        token = self._next()
        try:
            return int(token)
        except ValueError:
            raise PredicateSyntaxError(f"expected an integer, found {token!r}")

    # -- grammar -------------------------------------------------------
    def parse(self) -> GlobalPredicate:
        result = self._pred()
        if self._peek() is not None:
            raise PredicateSyntaxError(
                f"trailing input starting at {self._peek()!r}"
            )
        return result

    def _pred(self) -> GlobalPredicate:
        parts = [self._term()]
        while self._peek() == "|":
            self._next()
            parts.append(self._term())
        if len(parts) == 1:
            return parts[0]
        return disjunction(*parts)

    def _term(self) -> GlobalPredicate:
        parts = [self._factor()]
        while self._peek() == "&":
            self._next()
            parts.append(self._factor())
        if len(parts) == 1:
            return parts[0]
        return conjunction(*parts)

    def _factor(self) -> GlobalPredicate:
        token = self._peek()
        if token == "!":
            self._next()
            return negation(self._factor())
        if token == "(":
            self._next()
            inner = self._pred()
            self._expect(")")
            return inner
        return self._atom()

    def _atom(self) -> GlobalPredicate:
        name = self._next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", name):
            raise PredicateSyntaxError(f"expected a name, found {name!r}")
        if name == "sum" and self._peek() == "(":
            return self._sum_atom()
        if name == "count" and self._peek() == "(":
            return self._count_atom()
        if name == "inflight":
            return self._inflight_atom()
        self._expect("@")
        process = self._expect_int()
        if process < 0:
            raise PredicateSyntaxError("process indices are non-negative")
        return Literal(process, name)

    def _sum_atom(self) -> GlobalPredicate:
        self._expect("(")
        variable = self._next()
        self._expect(")")
        relop = Relop.from_symbol(self._next())
        constant = self._expect_int()
        return RelationalSumPredicate(variable, relop, constant)

    def _inflight_atom(self) -> GlobalPredicate:
        from repro.predicates.channel import InFlightPredicate

        source = None
        if self._peek() == "(":
            self._next()
            source = self._expect_int()
            self._expect(")")
        relop = Relop.from_symbol(self._next())
        constant = self._expect_int()
        return InFlightPredicate(relop, constant, source=source)

    def _count_atom(self) -> GlobalPredicate:
        self._expect("(")
        variable = self._next()
        self._expect(")")
        if self._num_processes is None:
            raise PredicateSyntaxError(
                "count(...) requires num_processes to be supplied"
            )
        n = self._num_processes
        token = self._next()
        if token == "in":
            self._expect("{")
            counts = [self._expect_int()]
            while self._peek() == ",":
                self._next()
                counts.append(self._expect_int())
            self._expect("}")
            return SymmetricPredicate(variable, n, counts)
        relop = Relop.from_symbol(token)
        bound = self._expect_int()
        counts = [j for j in range(n + 1) if relop.compare(j, bound)]
        if not counts:
            # An empty count set is a constant-false symmetric predicate;
            # SymmetricPredicate requires counts, so encode the empty set
            # as an impossible count... it accepts any subset of [0, n],
            # and the empty set is a legal frozen set.
            return SymmetricPredicate(variable, n, [])
        return SymmetricPredicate(variable, n, counts)


def _to_cnf(predicate: GlobalPredicate) -> Optional[CNFPredicate]:
    """Structurally rewrite AND/OR/NOT-of-literals into a CNF predicate."""

    def as_clause(node: GlobalPredicate) -> Optional[Clause]:
        literals = as_literals(node)
        if literals is None:
            return None
        return Clause(literals)

    def as_literals(node: GlobalPredicate) -> Optional[List[Literal]]:
        if isinstance(node, Literal):
            return [node]
        if isinstance(node, NotPredicate) and isinstance(node.inner, Literal):
            return [node.inner.negate()]
        if isinstance(node, OrPredicate):
            collected: List[Literal] = []
            for part in node.parts:
                sub = as_literals(part)
                if sub is None:
                    return None
                collected.extend(sub)
            return collected
        return None

    if isinstance(predicate, AndPredicate):
        clauses = []
        for part in predicate.parts:
            cl = as_clause(part)
            if cl is None:
                return None
            clauses.append(cl)
        return CNFPredicate(clauses)
    single = as_clause(predicate)
    if single is not None:
        return CNFPredicate([single])
    return None


def parse_predicate(
    text: str, num_processes: Optional[int] = None
) -> GlobalPredicate:
    """Parse predicate text into the most specific predicate class.

    Args:
        text: Predicate in the grammar above.
        num_processes: Required for ``count(...)`` atoms (the symmetric
            predicate needs to know n).

    Returns:
        A :class:`CNFPredicate` when the text is a boolean combination of
        literals expressible in CNF without expansion (the detection facade
        then picks CPDHB / CPDSC / chain-choice automatically), otherwise
        the composed predicate.
    """
    parser = _Parser(_tokenize(text), num_processes)
    predicate = parser.parse()
    rewritten = _to_cnf(predicate)
    if rewritten is not None:
        return rewritten
    return predicate
