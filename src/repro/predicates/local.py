"""Local predicates and literals.

A predicate is *local* iff it depends only on the variables of a single
process (paper, Section 2.3).  The library's standard local predicate is a
boolean variable or its negation — a :class:`Literal` — but arbitrary
per-process functions are supported via :class:`LocalPredicate`.

Given a local predicate, the *true events* of a computation are the events
after which the predicate holds; the paper's algorithms all operate on true
events rather than cuts directly (Observation 1 lets pairwise-consistent
true events be completed into a witness cut).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.computation import Computation, Cut
from repro.events import Event, EventId
from repro.predicates.base import GlobalPredicate

__all__ = [
    "LocalPredicate",
    "Literal",
    "local",
    "local_fn",
    "true_events",
]


class LocalPredicate(GlobalPredicate):
    """A predicate of the variables of a single process.

    Args:
        process: The hosting process.
        fn: Function of the process's current :class:`Event`.
        name: Human-readable label.
    """

    def __init__(self, process: int, fn: Callable[[Event], bool], name: str):
        if process < 0:
            raise ValueError("process must be non-negative")
        self.process = process
        self._fn = fn
        self._name = name

    def evaluate(self, cut: Cut) -> bool:
        return self.holds_after(cut.last_event(self.process))

    def holds_after(self, event: Event) -> bool:
        """Truth value after the given event of the hosting process."""
        if event.process != self.process:
            raise ValueError(
                f"event of process {event.process} passed to local predicate "
                f"of process {self.process}"
            )
        return bool(self._fn(event))

    def description(self) -> str:
        return self._name

    def __repr__(self) -> str:
        return f"LocalPredicate(p{self.process}: {self._name})"


@dataclass(frozen=True)
class _LiteralKey:
    process: int
    variable: str
    negated: bool


class Literal(LocalPredicate):
    """A boolean variable of one process, possibly negated.

    The building block of CNF predicates: clause ``x_1 OR NOT x_2`` is
    ``[Literal(1, "x"), Literal(2, "x", negated=True)]``.
    """

    def __init__(self, process: int, variable: str, negated: bool = False):
        self.variable = variable
        self.negated = bool(negated)
        sign = "¬" if negated else ""

        def fn(event: Event, _var: str = variable, _neg: bool = negated) -> bool:
            value = bool(event.value(_var, False))
            return (not value) if _neg else value

        super().__init__(process, fn, f"{sign}{variable}@p{process}")

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.process, self.variable, not self.negated)

    @property
    def key(self) -> _LiteralKey:
        """Hashable identity of the literal."""
        return _LiteralKey(self.process, self.variable, self.negated)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"Literal(p{self.process}, {self.variable!r}, negated={self.negated})"


def local(process: int, variable: str, negated: bool = False) -> Literal:
    """Shorthand for a (possibly negated) boolean-variable literal."""
    return Literal(process, variable, negated)


def local_fn(process: int, fn: Callable[[Event], bool], name: str) -> LocalPredicate:
    """Shorthand for an arbitrary per-process predicate."""
    return LocalPredicate(process, fn, name)


def true_events(
    computation: Computation,
    predicate: LocalPredicate,
    include_initial: bool = True,
) -> List[EventId]:
    """Events of the hosting process after which the predicate holds.

    Initial events are included by default because consistent cuts may pass
    through them (a variable may be true initially).
    """
    result: List[EventId] = []
    events = computation.events_of(predicate.process)
    start = 0 if include_initial else 1
    for event in events[start:]:
        if predicate.holds_after(event):
            result.append(event.event_id)
    return result
