"""Propositional CNF formulas and a DPLL SAT solver (substrate S8).

The NP-completeness side of the paper needs working satisfiability
machinery: formulas, evaluation, a complete solver (for verifying the
reduction both ways on real instances), and seeded random formula
generators for the benchmarks.  Everything is implemented here — no
external SAT solver.

Representation: variables are positive integers ``1..n``; a literal is a
non-zero integer (negative = negated); a clause is a tuple of literals; a
formula is a :class:`CNFFormula` wrapping a tuple of clauses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CNFFormula",
    "dpll_solve",
    "brute_force_solve",
    "random_3cnf",
]

Literal = int
ClauseT = Tuple[Literal, ...]
Assignment = Dict[int, bool]


@dataclass(frozen=True)
class CNFFormula:
    """A propositional formula in conjunctive normal form."""

    clauses: Tuple[ClauseT, ...]

    def __post_init__(self) -> None:
        for cl in self.clauses:
            if not cl:
                raise ValueError("empty clause (formula trivially unsat); "
                                 "represent unsatisfiability explicitly instead")
            if any(lit == 0 for lit in cl):
                raise ValueError("literal 0 is invalid")

    @classmethod
    def from_clauses(cls, clauses: Iterable[Sequence[Literal]]) -> "CNFFormula":
        """Build from any iterable of literal sequences."""
        return cls(tuple(tuple(cl) for cl in clauses))

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def variables(self) -> Set[int]:
        """The set of variables appearing in the formula."""
        return {abs(lit) for cl in self.clauses for lit in cl}

    def evaluate(self, assignment: Assignment) -> bool:
        """Truth value under a (total, for appearing variables) assignment."""
        for cl in self.clauses:
            if not any(self._lit_value(lit, assignment) for lit in cl):
                return False
        return True

    @staticmethod
    def _lit_value(lit: Literal, assignment: Assignment) -> bool:
        value = assignment.get(abs(lit), False)
        return value if lit > 0 else not value

    def is_tautological_clause(self, cl: ClauseT) -> bool:
        """Does the clause contain a variable and its negation?"""
        return any(-lit in cl for lit in cl)

    def without_tautologies(self) -> "CNFFormula":
        """Drop clauses containing complementary literals."""
        kept = tuple(
            cl for cl in self.clauses if not self.is_tautological_clause(cl)
        )
        if not kept:
            # All clauses tautological: formula is valid; represent by a
            # single tautological clause over variable 1.
            kept = ((1, -1),)
        return CNFFormula(kept)

    def is_nonmonotone_3cnf(self) -> bool:
        """Paper's non-monotone 3-SAT shape: clauses of at most three
        literals, and every 3-literal clause mixes a positive and a
        negative literal."""
        for cl in self.clauses:
            if len(cl) > 3:
                return False
            if len(cl) == 3:
                if not any(lit > 0 for lit in cl):
                    return False
                if not any(lit < 0 for lit in cl):
                    return False
        return True

    def __str__(self) -> str:
        def render(cl: ClauseT) -> str:
            return "(" + " v ".join(
                (f"x{lit}" if lit > 0 else f"~x{-lit}") for lit in cl
            ) + ")"

        return " & ".join(render(cl) for cl in self.clauses)


def dpll_solve(formula: CNFFormula) -> Optional[Assignment]:
    """Complete DPLL with unit propagation and pure-literal elimination.

    Returns a satisfying assignment covering every variable of the formula,
    or None when unsatisfiable.
    """
    assignment: Assignment = {}
    clauses = [frozenset(cl) for cl in formula.clauses]
    result = _dpll(clauses, assignment)
    if result is None:
        return None
    for var in formula.variables():
        result.setdefault(var, False)
    return result


def _dpll(
    clauses: List[FrozenSet[Literal]], assignment: Assignment
) -> Optional[Assignment]:
    clauses = list(clauses)
    assignment = dict(assignment)

    while True:
        simplified = _simplify(clauses, assignment)
        if simplified is None:
            return None
        clauses = simplified
        if not clauses:
            return assignment
        unit = next((cl for cl in clauses if len(cl) == 1), None)
        if unit is not None:
            (lit,) = unit
            assignment[abs(lit)] = lit > 0
            continue
        pure = _find_pure_literal(clauses)
        if pure is not None:
            assignment[abs(pure)] = pure > 0
            continue
        break

    # Branch on the most frequent variable.
    counts: Dict[int, int] = {}
    for cl in clauses:
        for lit in cl:
            counts[abs(lit)] = counts.get(abs(lit), 0) + 1
    var = max(counts, key=lambda v: (counts[v], -v))
    for value in (True, False):
        trial = dict(assignment)
        trial[var] = value
        result = _dpll(clauses, trial)
        if result is not None:
            return result
    return None


def _simplify(
    clauses: List[FrozenSet[Literal]], assignment: Assignment
) -> Optional[List[FrozenSet[Literal]]]:
    """Apply the assignment; None signals an empty (falsified) clause."""
    out: List[FrozenSet[Literal]] = []
    for cl in clauses:
        satisfied = False
        remaining: List[Literal] = []
        for lit in cl:
            var = abs(lit)
            if var in assignment:
                if (lit > 0) == assignment[var]:
                    satisfied = True
                    break
            else:
                remaining.append(lit)
        if satisfied:
            continue
        if not remaining:
            return None
        out.append(frozenset(remaining))
    return out


def _find_pure_literal(clauses: List[FrozenSet[Literal]]) -> Optional[Literal]:
    polarity: Dict[int, Set[bool]] = {}
    for cl in clauses:
        for lit in cl:
            polarity.setdefault(abs(lit), set()).add(lit > 0)
    for var, signs in sorted(polarity.items()):
        if len(signs) == 1:
            return var if True in signs else -var
    return None


def brute_force_solve(formula: CNFFormula) -> Optional[Assignment]:
    """Exhaustive 2^n reference solver (tests cross-check DPLL against it)."""
    variables = sorted(formula.variables())
    n = len(variables)
    for mask in range(1 << n):
        assignment = {
            var: bool(mask >> i & 1) for i, var in enumerate(variables)
        }
        if formula.evaluate(assignment):
            return assignment
    return None


def random_3cnf(
    num_variables: int, num_clauses: int, seed: int
) -> CNFFormula:
    """Seeded uniform random 3-CNF (distinct variables within a clause)."""
    if num_variables < 3:
        raise ValueError("need at least three variables for 3-CNF")
    rng = random.Random(seed)
    clauses: List[ClauseT] = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_variables + 1), 3)
        clause = tuple(
            var if rng.random() < 0.5 else -var for var in variables
        )
        clauses.append(clause)
    return CNFFormula(tuple(clauses))
