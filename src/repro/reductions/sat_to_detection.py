"""The paper's Figure 3: non-monotone 3-SAT → singular 2-CNF detection.

This is the construction behind Theorem 1 (NP-completeness of singular
k-CNF detection), implemented as an executable reduction:

* every clause gets (up to) two fresh processes ``a_i`` and ``b_i`` hosting
  boolean variables ``x`` — the detection predicate is the singular CNF
  ``AND_i (x@a_i v x@b_i)``;
* every *literal occurrence* of the clause gets one *true event*:

  - two-literal clause ``(l1 v l2)``: ``a_i`` runs ``true(l1), false``;
    ``b_i`` runs ``true(l2), false``;
  - three-literal clause (non-monotone, so it has a positive literal ``lp``
    and a negative literal ``ln``): ``a_i`` runs ``true(lp), false,
    true(ln)``; ``b_i`` runs ``true(l3), false`` for the remaining literal;
  - one-literal clauses (allowed here, though the paper assumes them away)
    use only ``a_i`` with ``true(l), false`` and the predicate clause
    ``(x@a_i)``;

* for every pair of *conflicting* occurrences — ``v`` positive in one
  clause, ``v`` negative in another — a message is sent from the successor
  of the positive occurrence's true event (a false event) to the negative
  occurrence's true event, making the two true events inconsistent.

Tautological clauses are dropped up front (they are always satisfied and
would otherwise put conflicting occurrences on one clause's processes).
The resulting computation is acyclic — on every process all sends precede
all receives — and two true events are inconsistent iff their literals
conflict, so the formula is satisfiable iff ``possibly(B)`` holds.
:func:`assignment_from_witness` and :func:`witness_from_assignment`
translate certificates in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.computation import (
    Computation,
    ComputationBuilder,
    Cut,
    least_consistent_cut,
)
from repro.events import EventId
from repro.predicates.boolean import CNFPredicate, Clause, singular_cnf
from repro.predicates.local import Literal as PredicateLiteral
from repro.reductions.sat import Assignment, CNFFormula
from repro.reductions.sat import Literal as SatLiteral

__all__ = [
    "DetectionInstance",
    "satisfiability_to_detection",
    "assignment_from_witness",
    "witness_from_assignment",
]

#: Name of the boolean variable hosted by every gadget process.
GADGET_VARIABLE = "x"


@dataclass(frozen=True)
class DetectionInstance:
    """Output of the Figure-3 reduction.

    Attributes:
        computation: The gadget computation.
        predicate: The singular CNF detection predicate.
        literal_of: Maps each true event to the SAT literal it represents.
        events_of_literal: Maps each SAT literal to its true events (one per
            occurrence of the literal in the formula).
        formula: The source formula (after dropping tautological clauses).
    """

    computation: Computation
    predicate: CNFPredicate
    literal_of: Mapping[EventId, SatLiteral]
    events_of_literal: Mapping[SatLiteral, Tuple[EventId, ...]]
    #: Per clause, the true event of each of its literal occurrences.
    clause_occurrences: Tuple[Mapping[SatLiteral, EventId], ...]
    formula: CNFFormula


def satisfiability_to_detection(formula: CNFFormula) -> DetectionInstance:
    """Build the Figure-3 gadget for a non-monotone 3-CNF formula.

    Raises:
        ValueError: If the formula is not in non-monotone 3-CNF (convert
            with :func:`repro.reductions.nonmonotone.to_nonmonotone_3cnf`).
    """
    formula = formula.without_tautologies()
    # Deduplicate repeated literals within a clause; the gadget hosts one
    # true event per occurrence and repeated occurrences add nothing.
    formula = CNFFormula(
        tuple(tuple(dict.fromkeys(cl)) for cl in formula.clauses)
    )
    if not formula.is_nonmonotone_3cnf():
        raise ValueError("formula must be in non-monotone 3-CNF")

    # ------------------------------------------------------------------
    # Pass 1: lay out processes and the positions of true events.
    # Each entry of ``layout`` is (process, [literals in local order]).
    # ------------------------------------------------------------------
    layout: List[Tuple[int, List[SatLiteral]]] = []
    clause_processes: List[List[int]] = []  # processes of each clause gadget
    predicate_clauses: List[Clause] = []
    process = 0
    for cl in formula.clauses:
        if len(cl) == 1:
            layout.append((process, [cl[0]]))
            clause_processes.append([process])
            predicate_clauses.append(
                Clause([PredicateLiteral(process, GADGET_VARIABLE)])
            )
            process += 1
            continue
        if len(cl) == 2:
            process_a_literals = [cl[0]]
            process_b_literal = cl[1]
        else:
            positive = next(lit for lit in cl if lit > 0)
            negative = next(lit for lit in cl if lit < 0)
            third = next(lit for lit in cl if lit not in (positive, negative))
            process_a_literals = [positive, negative]
            process_b_literal = third
        layout.append((process, process_a_literals))
        layout.append((process + 1, [process_b_literal]))
        clause_processes.append([process, process + 1])
        predicate_clauses.append(
            Clause(
                [
                    PredicateLiteral(process, GADGET_VARIABLE),
                    PredicateLiteral(process + 1, GADGET_VARIABLE),
                ]
            )
        )
        process += 2

    # ------------------------------------------------------------------
    # Pass 2: compute event positions.  A process with literals [l] runs
    # [true(l), false]; with [lp, ln] it runs [true(lp), false, true(ln)].
    # ------------------------------------------------------------------
    true_event_of: Dict[Tuple[int, int], EventId] = {}  # (process, slot) -> id
    literal_at: Dict[EventId, SatLiteral] = {}
    for proc, literals in layout:
        if len(literals) == 1:
            positions = [(proc, 1)]
        else:
            positions = [(proc, 1), (proc, 3)]
        for slot, (p, idx) in enumerate(positions):
            true_event_of[(proc, slot)] = (p, idx)
            literal_at[(p, idx)] = literals[slot]

    # Conflicting occurrence pairs: (positive true event, negative true event).
    arrows: List[Tuple[EventId, EventId]] = []
    positives: Dict[int, List[EventId]] = {}
    negatives: Dict[int, List[EventId]] = {}
    for eid, lit in literal_at.items():
        bucket = positives if lit > 0 else negatives
        bucket.setdefault(abs(lit), []).append(eid)
    for var, pos_events in sorted(positives.items()):
        for t_pos in sorted(pos_events):
            for t_neg in sorted(negatives.get(var, [])):
                successor = (t_pos[0], t_pos[1] + 1)  # the false event
                arrows.append((successor, t_neg))

    senders = {send for send, _ in arrows}
    receivers = {recv for _, recv in arrows}

    # ------------------------------------------------------------------
    # Pass 3: build the computation with correct event kinds.
    # ------------------------------------------------------------------
    builder = ComputationBuilder(process)
    for proc, literals in layout:
        builder.init_values(proc, **{GADGET_VARIABLE: False})
        length = 2 if len(literals) == 1 else 3
        for idx in range(1, length + 1):
            eid = (proc, idx)
            is_true_event = eid in literal_at
            value = {GADGET_VARIABLE: is_true_event}
            if eid in senders and eid in receivers:
                raise AssertionError(
                    "gadget event cannot be both send and receive"
                )
            if eid in senders:
                created = builder.send(proc, **value)
            elif eid in receivers:
                created = builder.receive(proc, **value)
            else:
                created = builder.internal(proc, **value)
            assert created == eid
    for send, recv in arrows:
        builder.message(send, recv)
    computation = builder.build()

    events_of_literal: Dict[SatLiteral, List[EventId]] = {}
    for eid, lit in literal_at.items():
        events_of_literal.setdefault(lit, []).append(eid)

    literals_of_process = {proc: lits for proc, lits in layout}
    clause_occurrences: List[Dict[SatLiteral, EventId]] = []
    for procs in clause_processes:
        occurrences: Dict[SatLiteral, EventId] = {}
        for proc in procs:
            for slot, lit in enumerate(literals_of_process[proc]):
                occurrences[lit] = true_event_of[(proc, slot)]
        clause_occurrences.append(occurrences)

    return DetectionInstance(
        computation=computation,
        predicate=singular_cnf(*predicate_clauses),
        literal_of=dict(literal_at),
        events_of_literal={
            lit: tuple(sorted(ids)) for lit, ids in events_of_literal.items()
        },
        clause_occurrences=tuple(clause_occurrences),
        formula=formula,
    )


def assignment_from_witness(
    instance: DetectionInstance, witness: Cut
) -> Assignment:
    """Read a satisfying assignment off a witness cut (paper, Section 3.1).

    A literal is made true when the cut passes through one of its true
    events; remaining variables default to False.  Raises AssertionError if
    the cut encodes conflicting literals (impossible for consistent cuts of
    a correctly built gadget) or does not satisfy the formula.
    """
    assignment: Assignment = {}
    for eid, lit in instance.literal_of.items():
        if witness.passes_through(eid):
            var, value = abs(lit), lit > 0
            assert assignment.get(var, value) == value, (
                f"witness assigns variable {var} both polarities"
            )
            assignment[var] = value
    for var in instance.formula.variables():
        assignment.setdefault(var, False)
    assert instance.formula.evaluate(assignment), (
        "witness cut does not induce a satisfying assignment"
    )
    return assignment


def witness_from_assignment(
    instance: DetectionInstance, assignment: Assignment
) -> Cut:
    """Build a witness cut from a satisfying assignment.

    Picks, per clause, one literal that the assignment satisfies, and takes
    the least consistent cut through the corresponding true events.  Raises
    ValueError when the assignment does not satisfy the formula.
    """
    selection: List[EventId] = []
    for index, cl in enumerate(instance.formula.clauses):
        satisfied = [
            lit
            for lit in cl
            if (lit > 0) == assignment.get(abs(lit), False)
        ]
        if not satisfied:
            raise ValueError("assignment does not satisfy the formula")
        chosen = satisfied[0]
        selection.append(instance.clause_occurrences[index][chosen])
    witness = least_consistent_cut(instance.computation, selection)
    assert witness is not None, (
        "true events of jointly-satisfiable literals must be consistent"
    )
    assert instance.predicate.evaluate(witness)
    return witness
