"""SUBSET-SUM and its reduction to sum-predicate detection (paper, §4.1).

Theorem 2 proves ``possibly(x_1 + ... + x_n = k)`` NP-complete when
variables may change by arbitrary amounts, by reduction from SUBSET-SUM
(Garey & Johnson, problem SP13): element ``a_j`` becomes a process whose
single event sets its variable from 0 to ``a_j``; a consistent cut chooses
a subset of the events (they are pairwise concurrent), so a cut with sum
exactly ``k`` exists iff a subset of the sizes sums to ``k``.

The module provides the instance type, an exact dynamic-programming solver
(pseudo-polynomial — exactly the complexity-theoretic status the paper
relies on), the reduction, and certificate translation in both directions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.computation import Computation, ComputationBuilder, Cut
from repro.predicates.relational import RelationalSumPredicate, Relop

__all__ = [
    "SubsetSumInstance",
    "solve_subset_sum",
    "subset_sum_to_detection",
    "subset_from_witness",
    "witness_from_subset",
    "random_instance",
]

#: Name of the integer variable hosted by every reduction process.
SUM_VARIABLE = "x"


@dataclass(frozen=True)
class SubsetSumInstance:
    """A SUBSET-SUM instance: positive sizes and a positive target."""

    sizes: Tuple[int, ...]
    target: int

    def __post_init__(self) -> None:
        if any(size <= 0 for size in self.sizes):
            raise ValueError("sizes must be positive integers")
        if self.target <= 0:
            raise ValueError("target must be a positive integer")


def solve_subset_sum(instance: SubsetSumInstance) -> Optional[List[int]]:
    """Exact solver; returns indices of a subset summing to the target.

    Classic reachable-sums dynamic program with parent pointers:
    O(n * number of reachable sums <= n * target) time — pseudo-polynomial,
    i.e. exponential in the bit-size of the sizes.
    """
    parent: Dict[int, Tuple[int, int]] = {}  # sum -> (previous sum, index)
    reachable = {0}
    for index, size in enumerate(instance.sizes):
        additions = []
        for total in reachable:
            candidate = total + size
            if candidate <= instance.target and candidate not in reachable:
                if candidate not in parent:
                    parent[candidate] = (total, index)
                additions.append(candidate)
        reachable.update(additions)
        if instance.target in reachable:
            break
    if instance.target not in reachable:
        return None
    subset: List[int] = []
    total = instance.target
    while total != 0:
        total, index = parent[total]
        subset.append(index)
    subset.reverse()
    return subset


def subset_sum_to_detection(
    instance: SubsetSumInstance,
) -> Tuple[Computation, RelationalSumPredicate]:
    """The paper's Theorem 2 reduction: one process per element.

    Process j starts with ``x = 0`` and has a single internal event setting
    ``x = sizes[j]``; the target becomes the predicate constant.
    """
    builder = ComputationBuilder(len(instance.sizes))
    for j, size in enumerate(instance.sizes):
        builder.init_values(j, **{SUM_VARIABLE: 0})
        builder.internal(j, **{SUM_VARIABLE: size})
    predicate = RelationalSumPredicate(SUM_VARIABLE, Relop.EQ, instance.target)
    return builder.build(), predicate


def subset_from_witness(instance: SubsetSumInstance, witness: Cut) -> List[int]:
    """Indices whose events the witness cut executed; sums to the target."""
    subset = [
        j for j in range(len(instance.sizes)) if witness.frontier[j] == 2
    ]
    assert sum(instance.sizes[j] for j in subset) == instance.target
    return subset


def witness_from_subset(
    computation: Computation, subset: List[int]
) -> Cut:
    """The consistent cut executing exactly the subset's events."""
    frontier = [1] * computation.num_processes
    for j in subset:
        frontier[j] = 2
    cut = Cut(computation, frontier)
    assert cut.is_consistent()
    return cut


def random_instance(
    num_elements: int,
    max_size: int,
    seed: int,
    solvable: Optional[bool] = None,
) -> SubsetSumInstance:
    """Seeded random instance.

    ``solvable=True`` picks the target as the sum of a random non-empty
    subset; ``solvable=False`` retries targets until the DP refutes them
    (falling back to an impossible odd target over even sizes when
    possible); ``None`` draws the target uniformly.
    """
    if num_elements <= 0:
        raise ValueError("need at least one element")
    rng = random.Random(seed)
    sizes = tuple(rng.randint(1, max_size) for _ in range(num_elements))
    total = sum(sizes)
    if solvable is True:
        count = rng.randint(1, num_elements)
        subset = rng.sample(range(num_elements), count)
        target = sum(sizes[j] for j in subset)
        return SubsetSumInstance(sizes, target)
    if solvable is False:
        for _ in range(64):
            target = rng.randint(1, total)
            candidate = SubsetSumInstance(sizes, target)
            if solve_subset_sum(candidate) is None:
                return candidate
        # Dense instances may reach every value up to the total; exceed it.
        return SubsetSumInstance(sizes, total + 1)
    return SubsetSumInstance(sizes, rng.randint(1, total))
