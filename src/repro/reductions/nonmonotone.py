"""3-CNF → non-monotone 3-CNF (paper, Section 3.1).

The paper's NP-hardness proof starts from the *non-monotone 3-SAT* problem:
CNF formulas whose clauses have at most three literals and whose 3-literal
clauses each contain at least one positive and one negative literal.  It is
NP-complete because any 3-CNF formula converts in polynomial time:

* an all-positive clause ``(a v b v c)`` becomes ``(a v b v ~z)`` together
  with ``(z v c)`` and ``(~z v ~c)``, which force ``z = ~c`` in every
  satisfying assignment;
* an all-negative clause is handled symmetrically with ``z = ~c`` for one
  of its variables, producing ``(~a v ~b v z)``.

The transformation preserves satisfiability exactly, and any satisfying
assignment of the output restricts to one of the input (and vice versa,
extending by ``z = ~c``); tests verify both directions with the DPLL
solver.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.reductions.sat import Assignment, CNFFormula, ClauseT

__all__ = ["to_nonmonotone_3cnf", "restrict_assignment"]


def to_nonmonotone_3cnf(formula: CNFFormula) -> Tuple[CNFFormula, Dict[int, int]]:
    """Convert a 3-CNF formula into an equisatisfiable non-monotone one.

    Returns the new formula and the map ``auxiliary variable -> original
    variable`` recording that the auxiliary is the negation of the original
    in every satisfying assignment.

    Raises:
        ValueError: If some clause has more than three literals.
    """
    if any(len(cl) > 3 for cl in formula.clauses):
        raise ValueError("input must be in 3-CNF (clauses of at most three literals)")
    next_var = max(formula.variables(), default=0) + 1
    aux_of: Dict[int, int] = {}
    clauses: List[ClauseT] = []
    for cl in formula.clauses:
        if len(cl) < 3:
            clauses.append(cl)
            continue
        positives = [lit for lit in cl if lit > 0]
        negatives = [lit for lit in cl if lit < 0]
        if positives and negatives:
            clauses.append(cl)
            continue
        # Monotone 3-literal clause: swap the polarity of its last literal
        # through a fresh variable z constrained to z = ~|literal|.
        *rest, last = cl
        var = abs(last)
        z = next_var
        next_var += 1
        aux_of[z] = var
        if last > 0:  # all-positive clause: replace c by ~z
            clauses.append((*rest, -z))
        else:  # all-negative clause: replace ~c by z
            clauses.append((*rest, z))
        clauses.append((z, var))
        clauses.append((-z, -var))
    result = CNFFormula(tuple(clauses))
    assert result.is_nonmonotone_3cnf()
    return result, aux_of


def restrict_assignment(
    assignment: Assignment, aux_of: Dict[int, int]
) -> Assignment:
    """Project a satisfying assignment of the output back to the input."""
    return {var: val for var, val in assignment.items() if var not in aux_of}
