"""DIMACS CNF interchange for the SAT layer.

The standard textual format SAT solvers speak::

    c a comment
    p cnf 3 2
    1 -2 3 0
    -1 2 0

Lets real benchmark formulas flow into the Theorem 1 pipeline::

    formula = parse_dimacs(path.read_text())
    nonmono, _ = to_nonmonotone_3cnf(formula)       # if 3-CNF
    instance = satisfiability_to_detection(nonmono)

and lets this library's formulas (including the SAT encodings of
detection queries) be exported to external solvers for yet another
cross-check.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.reductions.sat import CNFFormula

__all__ = ["parse_dimacs", "to_dimacs", "DimacsError"]


class DimacsError(ValueError):
    """Malformed DIMACS input."""


def parse_dimacs(text: str) -> CNFFormula:
    """Parse DIMACS CNF text into a :class:`CNFFormula`.

    Tolerates comments anywhere, clauses spanning lines, and a missing
    final ``0``; validates the header's variable/clause counts when
    present.
    """
    declared_vars: int | None = None
    declared_clauses: int | None = None
    clauses: List[Tuple[int, ...]] = []
    current: List[int] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(
                    f"line {line_number}: bad problem line {line!r}"
                )
            try:
                declared_vars = int(parts[2])
                declared_clauses = int(parts[3])
            except ValueError:
                raise DimacsError(
                    f"line {line_number}: non-integer counts in {line!r}"
                )
            continue
        if line.startswith("%"):  # some benchmark files end with % / 0
            break
        for token in line.split():
            try:
                literal = int(token)
            except ValueError:
                raise DimacsError(
                    f"line {line_number}: unexpected token {token!r}"
                )
            if literal == 0:
                if current:
                    clauses.append(tuple(current))
                    current = []
            else:
                current.append(literal)
    if current:
        clauses.append(tuple(current))

    if declared_clauses is not None and len(clauses) != declared_clauses:
        raise DimacsError(
            f"header declares {declared_clauses} clauses, found {len(clauses)}"
        )
    formula = CNFFormula(tuple(clauses))
    if declared_vars is not None:
        widest = max(formula.variables(), default=0)
        if widest > declared_vars:
            raise DimacsError(
                f"header declares {declared_vars} variables, literal "
                f"{widest} exceeds it"
            )
    return formula


def to_dimacs(formula: CNFFormula, comment: str = "") -> str:
    """Render a :class:`CNFFormula` as DIMACS CNF text."""
    lines: List[str] = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"c {row}")
    num_vars = max(formula.variables(), default=0)
    lines.append(f"p cnf {num_vars} {formula.num_clauses}")
    for cl in formula.clauses:
        lines.append(" ".join(str(lit) for lit in cl) + " 0")
    return "\n".join(lines) + "\n"
