"""CNF-predicate detection → SAT (the easy NP-membership direction).

``possibly(B)`` for a CNF predicate B is in NP: a consistent cut is a
polynomial certificate.  This module makes that membership executable by
encoding "some consistent cut satisfies B" as a propositional formula and
solving it with the library's DPLL solver.  The encoder works for *any*
CNF predicate (singular or not), which makes it a valuable independent
oracle: the tests cross-check every structured detection algorithm against
it.

Encoding, for a computation with events ``(p, i)``:

* ``s[p,i]`` (i >= 1): event i of process p is inside the cut;
  prefix-closure clauses ``s[p,i] <- s[p,i+1]`` and message clauses
  ``s[send] <- s[recv]`` make assignments correspond exactly to consistent
  cuts;
* ``f[p,i]`` (i >= 0): the cut's frontier on p is event i, i.e.
  ``s[p,i] and not s[p,i+1]`` (with the boundary conventions for the
  initial and final events);
* each predicate clause becomes the disjunction of ``f[t]`` over the true
  events t of its literals.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.computation import Computation, Cut
from repro.events import EventId
from repro.predicates.boolean import CNFPredicate
from repro.predicates.local import true_events
from repro.reductions.sat import Assignment, CNFFormula, dpll_solve

__all__ = ["DetectionEncoding", "encode_possibly", "possibly_via_sat"]


class DetectionEncoding:
    """The SAT encoding of one ``possibly(B)`` query.

    Attributes:
        formula: The encoded CNF formula.
        computation: The encoded computation.
    """

    def __init__(self, computation: Computation, predicate: CNFPredicate):
        self.computation = computation
        self.predicate = predicate
        self._next_var = 1
        self._included: Dict[EventId, int] = {}
        self._frontier: Dict[EventId, int] = {}
        clauses: List[Tuple[int, ...]] = []

        # Inclusion variables and prefix-closure.
        for p in range(computation.num_processes):
            events = computation.events_of(p)
            for ev in events[1:]:
                self._included[ev.event_id] = self._fresh()
            for i in range(2, len(events)):
                clauses.append(
                    (self._included[(p, i - 1)], -self._included[(p, i)])
                )

        # Message closure: receive included -> send included.
        for send, recv in computation.messages:
            clauses.append((self._included[send], -self._included[recv]))

        # Frontier variables f[p,i] <-> s[p,i] & ~s[p,i+1].
        for p in range(computation.num_processes):
            events = computation.events_of(p)
            for ev in events:
                eid = ev.event_id
                f = self._fresh()
                self._frontier[eid] = f
                here = self._included.get(eid)  # None for the initial event
                nxt_id = computation.successor(eid)
                nxt = self._included[nxt_id] if nxt_id is not None else None
                # f -> s[p,i]
                if here is not None:
                    clauses.append((-f, here))
                # f -> ~s[p,i+1]
                if nxt is not None:
                    clauses.append((-f, -nxt))
                # (s[p,i] & ~s[p,i+1]) -> f
                reverse: List[int] = [f]
                if here is not None:
                    reverse.append(-here)
                if nxt is not None:
                    reverse.append(nxt)
                clauses.append(tuple(reverse))

        # Predicate clauses.
        for cl in predicate.clauses:
            options: List[int] = []
            for lit in cl.literals:
                for t in true_events(computation, lit):
                    options.append(self._frontier[t])
            if not options:
                # The clause can never be satisfied: encode falsity via a
                # fresh variable forced both ways.
                v = self._fresh()
                clauses.append((v,))
                clauses.append((-v,))
                continue
            clauses.append(tuple(dict.fromkeys(options)))

        self.formula = CNFFormula(tuple(clauses))

    def _fresh(self) -> int:
        var = self._next_var
        self._next_var += 1
        return var

    def cut_from_assignment(self, assignment: Assignment) -> Cut:
        """Decode a satisfying assignment into the witness cut."""
        frontier = [1] * self.computation.num_processes
        for (p, i), var in self._included.items():
            if assignment.get(var, False):
                frontier[p] = max(frontier[p], i + 1)
        cut = Cut(self.computation, frontier)
        assert cut.is_consistent(), "encoding admitted an inconsistent cut"
        return cut


def encode_possibly(
    computation: Computation, predicate: CNFPredicate
) -> DetectionEncoding:
    """Build the SAT encoding of ``possibly(predicate)``."""
    return DetectionEncoding(computation, predicate)


def possibly_via_sat(
    computation: Computation, predicate: CNFPredicate
) -> Optional[Cut]:
    """Decide ``possibly`` through the SAT encoding; witness cut or None."""
    encoding = encode_possibly(computation, predicate)
    assignment = dpll_solve(encoding.formula)
    if assignment is None:
        return None
    witness = encoding.cut_from_assignment(assignment)
    assert predicate.evaluate(witness)
    return witness
