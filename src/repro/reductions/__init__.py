"""NP-completeness machinery (substrate S8): SAT, the paper's reductions,
and SAT-based cross-check oracles."""

from repro.reductions.detection_to_sat import (
    DetectionEncoding,
    encode_possibly,
    possibly_via_sat,
)
from repro.reductions.dimacs import DimacsError, parse_dimacs, to_dimacs
from repro.reductions.inequity import (
    INEQUITY_VARIABLE,
    singular_2cnf_to_inequity,
)
from repro.reductions.nonmonotone import (
    restrict_assignment,
    to_nonmonotone_3cnf,
)
from repro.reductions.sat import (
    CNFFormula,
    brute_force_solve,
    dpll_solve,
    random_3cnf,
)
from repro.reductions.sat_to_detection import (
    DetectionInstance,
    assignment_from_witness,
    satisfiability_to_detection,
    witness_from_assignment,
)
from repro.reductions.subset_sum import (
    SubsetSumInstance,
    random_instance,
    solve_subset_sum,
    subset_from_witness,
    subset_sum_to_detection,
    witness_from_subset,
)

__all__ = [
    "CNFFormula",
    "DimacsError",
    "INEQUITY_VARIABLE",
    "singular_2cnf_to_inequity",
    "DetectionEncoding",
    "DetectionInstance",
    "SubsetSumInstance",
    "assignment_from_witness",
    "brute_force_solve",
    "dpll_solve",
    "encode_possibly",
    "parse_dimacs",
    "possibly_via_sat",
    "random_3cnf",
    "random_instance",
    "restrict_assignment",
    "satisfiability_to_detection",
    "solve_subset_sum",
    "subset_from_witness",
    "subset_sum_to_detection",
    "to_dimacs",
    "to_nonmonotone_3cnf",
    "witness_from_assignment",
    "witness_from_subset",
]
