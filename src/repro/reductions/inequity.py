"""Corollary 2: singular 2-CNF detection reduces to inequity detection.

The paper derives from Theorem 1 that detecting ``AND_i (u_i != v_i)``
over process-disjoint clause pairs is NP-complete, via a value encoding of
each boolean clause ``a OR b``:

* ``u`` (on ``a``'s process) is 1 while ``a`` is false and 2 while true;
* ``v`` (on ``b``'s process) is 1 while ``b`` is false and 0 while true;

so ``u == v`` exactly when both literals are false, i.e.
``a OR b  <=>  u != v``.

:func:`singular_2cnf_to_inequity` rewrites a detection instance — the
computation gains the derived integer variable on every participating
process; the events and message structure are untouched, so the consistent
cuts (and hence the answer) correspond one to one.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.computation import Computation
from repro.events import Event, EventId
from repro.predicates.boolean import CNFPredicate
from repro.predicates.inequity import InequityClause, InequityPredicate
from repro.predicates.local import Literal

__all__ = ["INEQUITY_VARIABLE", "singular_2cnf_to_inequity"]

#: Name of the derived integer variable added to every clause process.
INEQUITY_VARIABLE = "u"


def singular_2cnf_to_inequity(
    computation: Computation, predicate: CNFPredicate
) -> Tuple[Computation, InequityPredicate]:
    """Rewrite a singular 2-CNF instance as an inequity instance.

    Every clause must have exactly two literals on two distinct processes.
    Returns a computation identical up to the added derived variable, and
    the equivalent :class:`InequityPredicate` — a consistent cut satisfies
    the one iff (the corresponding cut of the other computation satisfies)
    the other.

    Raises:
        ValueError: If some clause is not a two-process two-literal clause.
    """
    predicate.require_singular()
    encoders: Dict[int, Tuple[Literal, int, int]] = {}
    clauses: List[InequityClause] = []
    for cl in predicate.clauses:
        if len(cl.literals) != 2:
            raise ValueError("Corollary 2 applies to 2-literal clauses")
        first, second = cl.literals
        if first.process == second.process:
            raise ValueError("clause literals must be on distinct processes")
        # u: 1 when the literal is false, 2 when true (left side);
        # v: 1 when false, 0 when true (right side).
        encoders[first.process] = (first, 1, 2)
        encoders[second.process] = (second, 1, 0)
        clauses.append(
            InequityClause(first.process, second.process, INEQUITY_VARIABLE)
        )

    process_events: List[List[Event]] = []
    for p in range(computation.num_processes):
        events: List[Event] = []
        for ev in computation.events_of(p):
            values = dict(ev.values)
            if p in encoders:
                literal, when_false, when_true = encoders[p]
                values[INEQUITY_VARIABLE] = (
                    when_true if literal.holds_after(ev) else when_false
                )
            events.append(
                Event(
                    process=ev.process,
                    index=ev.index,
                    kind=ev.kind,
                    values=values,
                    label=ev.label,
                )
            )
        process_events.append(events)
    derived = Computation(process_events, computation.messages)
    return derived, InequityPredicate(clauses)
