"""Graphviz DOT export for computations and cut lattices.

Space-time diagrams (one row per process, message arrows across) are how
the paper draws its figures; the cut lattice is how its algorithms think.
Both render to DOT text with no external dependency — feed the output to
``dot -Tsvg`` or any Graphviz viewer.

* :func:`computation_to_dot` — the space-time diagram, optionally
  highlighting a cut's frontier and a chosen variable's truth;
* :func:`lattice_to_dot` — the Hasse diagram of consistent cuts,
  optionally coloring the cuts satisfying a predicate (refuses to render
  lattices beyond ``max_cuts`` — they grow exponentially).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.computation import Computation, Cut, iter_consistent_cuts
from repro.predicates.base import GlobalPredicate

__all__ = ["computation_to_dot", "lattice_to_dot", "LatticeTooLargeError"]


class LatticeTooLargeError(ValueError):
    """The lattice exceeds the rendering budget."""


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def _event_node(process: int, index: int) -> str:
    return f"e_{process}_{index}"


def computation_to_dot(
    computation: Computation,
    highlight: Optional[Cut] = None,
    variable: Optional[str] = None,
) -> str:
    """Render the computation as a DOT space-time diagram.

    Args:
        computation: The trace.
        highlight: Optional cut whose frontier events are drawn bold.
        variable: Optional boolean variable; events where it holds are
            drawn as double circles (the paper's "encircled true events").
    """
    lines: List[str] = [
        "digraph computation {",
        "  rankdir=LR;",
        '  node [shape=circle, fontsize=10, margin=0.02];',
    ]
    for p in range(computation.num_processes):
        lines.append(f"  subgraph cluster_p{p} {{")
        lines.append(f'    label="process {p}"; color=gray;')
        for ev in computation.events_of(p):
            node = _event_node(p, ev.index)
            label = ev.label if ev.label is not None else (
                "⊥" if ev.is_initial else f"{ev.index}"
            )
            attrs = [f"label={_quote(label)}"]
            if variable is not None and bool(ev.value(variable, False)):
                attrs.append("shape=doublecircle")
            if ev.is_initial:
                attrs.append("style=dashed")
            if highlight is not None and highlight.passes_through(ev.event_id):
                attrs.append("penwidth=3")
                attrs.append("color=red")
            lines.append(f"    {node} [{', '.join(attrs)}];")
        lines.append("  }")
    # Local order edges.
    for p in range(computation.num_processes):
        events = computation.events_of(p)
        for a, b in zip(events, events[1:]):
            lines.append(
                f"  {_event_node(p, a.index)} -> {_event_node(p, b.index)};"
            )
    # Message edges.
    for send, recv in computation.messages:
        lines.append(
            f"  {_event_node(*send)} -> {_event_node(*recv)} "
            "[style=dashed, color=blue, constraint=false];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _cut_node(cut: Cut) -> str:
    return "c_" + "_".join(str(c) for c in cut.frontier)


def lattice_to_dot(
    computation: Computation,
    predicate: Optional[GlobalPredicate] = None,
    max_cuts: int = 500,
) -> str:
    """Render the Hasse diagram of the consistent-cut lattice.

    Cuts satisfying ``predicate`` (if given) are filled green.  Raises
    :class:`LatticeTooLargeError` beyond ``max_cuts`` cuts.
    """
    cuts: List[Cut] = []
    for cut in iter_consistent_cuts(computation):
        cuts.append(cut)
        if len(cuts) > max_cuts:
            raise LatticeTooLargeError(
                f"lattice exceeds {max_cuts} cuts; raise max_cuts to force"
            )
    lines: List[str] = [
        "digraph lattice {",
        "  rankdir=BT;",
        '  node [shape=box, fontsize=9, margin=0.04];',
    ]
    for cut in cuts:
        label = "(" + ",".join(str(c - 1) for c in cut.frontier) + ")"
        attrs = [f"label={_quote(label)}"]
        if predicate is not None and predicate.evaluate(cut):
            attrs.append("style=filled")
            attrs.append("fillcolor=palegreen")
        lines.append(f"  {_cut_node(cut)} [{', '.join(attrs)}];")
    for cut in cuts:
        for nxt in cut.successors():
            lines.append(f"  {_cut_node(cut)} -> {_cut_node(nxt)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
