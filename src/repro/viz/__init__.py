"""Graphviz DOT rendering of computations and cut lattices."""

from repro.viz.dot import (
    LatticeTooLargeError,
    computation_to_dot,
    lattice_to_dot,
)

__all__ = ["LatticeTooLargeError", "computation_to_dot", "lattice_to_dot"]
